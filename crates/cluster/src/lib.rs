//! # fed-cluster
//!
//! A sharded, multi-threaded runtime executing the exact computation of
//! [`fed_sim::Simulation`] across worker threads.
//!
//! ## Model
//!
//! [`ShardedSimulation`] partitions the `n` node ids across `s` shards
//! through a [`ShardMap`] — round-robin by default, with block and
//! load-balanced (weight-profile-guided) placements available. Each shard
//! is a worker thread owning a [`fed_sim::exec::Kernel`] for its nodes
//! and a private [`fed_sim::exec::EventQueue`] (a calendar queue; see
//! `fed_sim::exec`); node-local events (timers, commands, same-shard
//! messages) never leave the shard.
//!
//! Cross-shard messages flow through **double-buffered per-destination
//! mailboxes**: during a window each shard batches the events it
//! produces for every other shard, and at the end of the window the
//! batches are sent **directly shard-to-shard** over dedicated channels
//! (drained batch vectors return over a paired channel, so steady-state
//! windows allocate nothing). Nothing central touches event payloads —
//! or anything else: the scheduling state is one compact summary per
//! shard per window (events processed, local queue head, per-destination
//! outbound minimum times, all tracked incrementally), min-folded into a
//! **shared O(shards) reduction**. Whichever worker folds *last*
//! computes the next window and publishes it before releasing the lock,
//! so the decision is ready the moment the slowest shard finishes — the
//! coordinator round-trip of the pre-pipelined design is gone, and no
//! scan of pending events happens anywhere.
//!
//! ## Windows
//!
//! Windows are **conservative**: the lookahead `L` is the network model's
//! minimum latency ([`NetworkModel::min_latency`]), so a message produced
//! at time `t` is never due before `t + L`. From the per-shard head times
//! `next_s` the reduction derives, for every shard `d`, the bound
//!
//! ```text
//! end_d  ≤  min over s ≠ d of (next_s + L)
//! ```
//!
//! — no other shard's *pending* work can emit an event due earlier. One
//! more hazard remains inside a wide window: shard `d`'s own cross-shard
//! sends can bounce off a peer and come back due as early as `α + L`,
//! where `α` is the send's due time. The worker therefore tightens a
//! **dynamic end** to `α + L` the moment it emits a cross-shard delivery
//! (see `ShardSink`), which is deterministic — it depends only on the
//! shard's own event stream — and never invalidates an event already
//! processed (`α ≥ t + L` for an event processed at `t`).
//!
//! The exchange is **pipelined**: a worker that finishes its window
//! sends one batch per peer, folds its summary, and then immediately
//! absorbs its peers' batches for the *next* window — exactly one per
//! peer — while the slower shards are still executing. Inbound events
//! are conservatively due at or after their sender's `next + L`, i.e.
//! inside a later window, so pushing them while the local window is
//! closed cannot perturb the dispatch order and bit-identity is
//! preserved by construction. Because every send precedes every fold,
//! all batches a window needs are in flight before its decision is even
//! computable: absorption overlaps straggler execution (*pipeline
//! fill*), and the only wait left at the decision channel is the genuine
//! straggler stall. See docs/ARCHITECTURE.md for the full protocol.
//!
//! With the default **adaptive window policy** the target window width
//! grows when windows run near-empty and shrinks when they are dense
//! (always floored at `L`), letting sparse phases and shards with mostly
//! node-local traffic batch far more virtual time per barrier; the two
//! bounds above clamp every window, so adaptivity is a pure performance
//! knob. The fixed policy ([`WindowPolicy::fixed`]) pins the width to
//! `L`, reproducing the uniform `[W, W + L)` windows of the seed-era
//! scheduler.
//!
//! ## Determinism
//!
//! Results are **bit-for-bit identical** to the sequential engine for the
//! same seed, workload and population, regardless of shard count,
//! placement policy or window policy:
//!
//! * events carry canonical `(time, source, per-source seq)` keys
//!   ([`fed_sim::exec::EventKey`]) assigned at production time, and every
//!   queue pops in key order — merging event streams at barriers cannot
//!   reorder them;
//! * per-node random streams ([`fed_sim::exec::seed_streams`]) are forked
//!   from the master seed by node id, never shared across nodes, so
//!   thread interleaving cannot perturb them;
//! * window ends are computed from deterministic summaries, and the
//!   conservative bound guarantees every event is processed after
//!   everything that could causally precede it.
//!
//! The equivalence is asserted by this crate's tests and by the
//! `cross_engine` integration suite in `fed-experiments` (all five
//! architectures, shard counts {1, 2, 4, 7}, every placement policy,
//! both window policies, with and without churn).
//!
//! ## Example
//!
//! ```
//! use fed_cluster::ShardedSimulation;
//! use fed_sim::network::NetworkModel;
//! use fed_sim::{Context, NodeId, Protocol, SimTime};
//!
//! struct Ping { got: bool }
//! impl Protocol for Ping {
//!     type Msg = ();
//!     type Cmd = ();
//!     fn on_init(&mut self, ctx: &mut Context<'_, ()>) {
//!         if ctx.id() == NodeId::new(0) {
//!             for i in 0..ctx.system_size() as u32 {
//!                 ctx.send(NodeId::new(i), ());
//!             }
//!         }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _msg: ()) {
//!         self.got = true;
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _token: u64) {}
//! }
//!
//! let mut sim = ShardedSimulation::new(64, NetworkModel::default(), 1, 4, |_, _| {
//!     Ping { got: false }
//! });
//! sim.run_until(SimTime::from_secs(1));
//! assert!(sim.nodes().all(|(_, p)| p.got));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod shard_map;

pub use shard_map::ShardMap;

use fed_sim::exec::{
    seed_streams, EffectSink, EventKey, EventKind, EventQueue, Kernel, NullProbe, NullProfiler,
    NullTracer, Probe, Profiler, QueueStats, Tracer, TransportStats, WindowWork, EXTERNAL_SRC,
};
use fed_sim::network::NetworkModel;
use fed_sim::protocol::{NodeId, Protocol};
use fed_sim::time::{SimDuration, SimTime};
use fed_util::rng::Xoshiro256StarStar;
use std::ffi::OsStr;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The shared, thread-safe node-state factory of a cluster.
type SharedFactory<P> = Arc<dyn Fn(NodeId, &mut Xoshiro256StarStar) -> P + Send + Sync>;

/// A batch of events exchanged shard-to-shard at a window barrier.
type Batch<P> = Vec<(EventKey, EventKind<P>)>;

/// How the coordinator sizes barrier windows; see the crate docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowPolicy {
    /// Grow the target window width when windows run near-empty and
    /// shrink it when they are dense. The conservative bound clamps
    /// every window either way, so this cannot affect results.
    pub adaptive: bool,
    /// Cap on the target width as a multiple of the lookahead.
    pub max_factor: u32,
}

impl WindowPolicy {
    /// Fixed lookahead-wide windows — the seed-era scheduler's behavior.
    pub fn fixed() -> Self {
        WindowPolicy {
            adaptive: false,
            max_factor: 1,
        }
    }

    /// Adaptive window sizing (the default): target width doubles on
    /// near-empty windows and halves on dense ones, within
    /// `[lookahead, lookahead × 4096]`.
    pub fn adaptive() -> Self {
        WindowPolicy {
            adaptive: true,
            max_factor: 4096,
        }
    }
}

impl Default for WindowPolicy {
    fn default() -> Self {
        WindowPolicy::adaptive()
    }
}

/// Result of a [`ShardedSimulation::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterReport {
    /// Events processed during this call, summed over all shards.
    pub events: u64,
    /// Time windows executed (each window is one cross-shard barrier).
    pub windows: u64,
    /// `false` when the event budget was exhausted before the target time.
    pub completed: bool,
}

/// One conservative window as the coordinator decided it.
///
/// `index`, `start`, `width`, `straggler`, `ends` and `events` are
/// deterministic (they follow from the summaries, which follow from the
/// event streams); `wall_ns` is a host measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRecord {
    /// 1-based window number within the `run_until_profiled` call.
    pub index: u64,
    /// Global minimum pending time when the window was issued.
    pub start: SimTime,
    /// Target width in effect when the window was issued.
    pub width: SimDuration,
    /// The shard holding the global minimum — the shard whose pending
    /// work bounded every *other* shard's window end. When its head time
    /// trails the rest of the cluster, it is the straggler the
    /// conservative scheduler is waiting on.
    pub straggler: usize,
    /// Conservative end issued to each shard (exclusive).
    pub ends: Vec<SimTime>,
    /// Events each shard executed inside the window.
    pub events: Vec<u64>,
    /// Wall clock from publishing the window decision to the last shard
    /// folding its summary into the reduction.
    pub wall_ns: u64,
}

/// Schedule trace: every window's sizing decision plus per-shard
/// straggler attribution, filled in by
/// [`ShardedSimulation::run_until_profiled`].
///
/// Successive runs append; `straggler_windows[s]` counts the windows
/// shard `s` bounded (held the global minimum head time for).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Per-window records, in execution order.
    pub windows: Vec<WindowRecord>,
    /// Windows each shard was the straggler for, indexed by shard.
    pub straggler_windows: Vec<u64>,
}

impl ScheduleTrace {
    fn record(&mut self, rec: WindowRecord, num_shards: usize) {
        if self.straggler_windows.len() < num_shards {
            self.straggler_windows.resize(num_shards, 0);
        }
        self.straggler_windows[rec.straggler] += 1;
        self.windows.push(rec);
    }
}

/// Whether a `FED_TRACE`-family variable value turns logging on: set and
/// neither empty nor `0`. (`FED_TRACE=0` must mean *off* — shell
/// idiom — and so must `FED_TRACE=`.)
fn trace_flag_on(v: Option<&OsStr>) -> bool {
    match v {
        Some(s) => !s.is_empty() && s != OsStr::new("0"),
        None => false,
    }
}

/// Whether FED_TRACE window logging is enabled, reading `FED_TRACE` (and
/// the legacy alias `FED_TRACE_WINDOWS`) **once per process** — not per
/// `run_until` call; see docs/OBSERVABILITY.md for the convention.
fn trace_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        trace_flag_on(std::env::var_os("FED_TRACE").as_deref())
            || trace_flag_on(std::env::var_os("FED_TRACE_WINDOWS").as_deref())
    })
}

/// One shard: a kernel for the nodes it owns plus its private queue.
struct Shard<P: Protocol> {
    index: usize,
    kernel: Kernel<P>,
    queue: EventQueue<P>,
}

/// Sink used while a shard dispatches mid-window: local events go straight
/// onto the shard's queue, cross-shard deliveries into the
/// per-destination outbound mailbox, with the per-destination minimum
/// time tracked incrementally (no scan at the barrier).
///
/// Emitting a cross-shard delivery due at `α` also tightens the window's
/// **dynamic end** to `α + L`: a peer could process that delivery next
/// window and answer with something due as early as `α + L`, so this
/// shard must not run past that point. The clamp is what makes windows
/// wider than one lookahead safe — it binds exactly when cross-shard
/// feedback is possible, and (because any `α ≥ t + L` for an event
/// processed at `t`) never retroactively invalidates an event already
/// processed.
struct ShardSink<'a, P: Protocol> {
    map: &'a ShardMap,
    local_shard: usize,
    lookahead: SimDuration,
    dyn_end: &'a mut SimTime,
    queue: &'a mut EventQueue<P>,
    out: &'a mut Vec<Batch<P>>,
    out_min: &'a mut Vec<Option<SimTime>>,
}

impl<P: Protocol> EffectSink<P> for ShardSink<'_, P> {
    fn emit(&mut self, key: EventKey, kind: EventKind<P>) {
        let dest = self.map.shard_of(kind.dest());
        if dest == self.local_shard {
            self.queue.push(key, kind);
        } else {
            let t = key.time;
            *self.dyn_end = (*self.dyn_end).min(t.saturating_add(self.lookahead));
            self.out_min[dest] = Some(match self.out_min[dest] {
                Some(m) => m.min(t),
                None => t,
            });
            self.out[dest].push((key, kind));
        }
    }
}

/// Sink used during construction, before worker threads exist: local
/// events onto the shard's queue, cross-shard init effects into a staging
/// vector delivered straight into the destination queues once every
/// shard is built.
struct InitSink<'a, P: Protocol> {
    map: &'a ShardMap,
    local_shard: usize,
    queue: &'a mut EventQueue<P>,
    outbound: &'a mut Vec<(usize, EventKey, EventKind<P>)>,
}

impl<P: Protocol> EffectSink<P> for InitSink<'_, P> {
    fn emit(&mut self, key: EventKey, kind: EventKind<P>) {
        let dest = self.map.shard_of(kind.dest());
        if dest == self.local_shard {
            self.queue.push(key, kind);
        } else {
            self.outbound.push((dest, key, kind));
        }
    }
}

/// Per-worker window instruction, published by whichever shard completes
/// the epoch's reduction (or by the calling thread for the first
/// window). Event payloads never travel this channel; they go
/// shard-to-shard through the mailbox channels.
enum Decision {
    /// Execute one conservative window.
    Window {
        /// Exclusive virtual-time end of the window for this shard.
        end: SimTime,
        /// Inclusive saturated window (see [`Scheduler::decide`]): pop
        /// every remaining event instead of stopping strictly below
        /// `end`, which events due exactly at [`SimTime::MAX`] could
        /// never satisfy.
        rim: bool,
    },
    /// Exit the worker loop. Every in-flight batch was already absorbed
    /// at the end of the final window, so there is nothing to drain.
    Stop,
}

/// A window record being assembled: opened when the decision is
/// published, completed when the last shard folds its summary.
struct PendingWindow {
    start: SimTime,
    width: SimDuration,
    straggler: usize,
    ends: Vec<SimTime>,
    events: Vec<u64>,
    issued: Instant,
}

/// The shared reduction that replaced the coordinator thread: at the end
/// of a window every worker min-folds its O(shards) summary (local queue
/// head + per-destination outbound minima) into this state, and the
/// **last arriver** computes and publishes the next window's decision
/// in-place — so the decision is ready the moment the slowest shard
/// finishes, never one coordinator round-trip later. Folding uses only
/// `min` (associative and commutative), so the merged state — and hence
/// the decision — is independent of worker arrival order.
struct Reduction {
    /// Workers that have folded the current epoch so far.
    arrived: usize,
    /// Per-shard local queue head after the epoch's window.
    local_next: Vec<Option<SimTime>>,
    /// Minimum event time in flight to each shard, folded from the
    /// senders' outbound minima — batches the destination has not
    /// absorbed into its local queue yet, so its `local_next` alone
    /// would miss them.
    inbound_min: Vec<Option<SimTime>>,
    /// Events executed in the current epoch's window, all shards.
    epoch_events: u64,
    /// Adaptive target width in effect.
    width: SimDuration,
    /// Events processed this `run_until` call.
    events: u64,
    /// Windows completed this `run_until` call.
    windows: u64,
    /// Cleared when the event budget stops the run early.
    completed: bool,
    /// Window record in flight (tracing only).
    pending: Option<PendingWindow>,
    /// Completed window records, drained by the caller after the join.
    trace: Vec<WindowRecord>,
    /// One decision sender per worker, used by the last arriver.
    decision_txs: Vec<Sender<Decision>>,
}

/// The window-decision parameters, fixed for one `run_until` call. The
/// decision math is exactly the pre-pipelined coordinator's; only *who*
/// runs it moved (into whichever worker folds last).
struct Scheduler {
    num_shards: usize,
    lookahead: SimDuration,
    target: SimTime,
    /// Exclusive bound enforcing the inclusive `target` (`target + 1µs`);
    /// saturates at [`SimTime::MAX`], where rim windows take over.
    hard_end: SimTime,
    max_events: u64,
    /// Events processed by earlier `run_until` calls.
    already: u64,
    adaptive: bool,
    /// Adaptive width cap (`lookahead × max_factor`).
    cap: SimDuration,
    log_windows: bool,
    timing: bool,
}

/// What [`Scheduler::decide`] concluded from the folded head times.
enum Verdict {
    /// No runnable window: out of events, past the target, or (when
    /// `completed` is false) out of event budget.
    Stop { completed: bool },
    /// Issue a window starting at the global minimum `start`, held by
    /// shard `holder` whose own end is bounded by the runner-up `m2`.
    Window {
        start: SimTime,
        holder: usize,
        m2: Option<SimTime>,
        rim: bool,
    },
}

impl Scheduler {
    /// Computes the next window from per-shard head times, in O(shards).
    fn decide(&self, next: impl Fn(usize) -> Option<SimTime>, events_so_far: u64) -> Verdict {
        if self.already + events_so_far >= self.max_events {
            return Verdict::Stop { completed: false };
        }
        // Global minimum pending time (the window start), its holder,
        // and the runner-up — never from scanning events.
        let mut m1: Option<(SimTime, usize)> = None;
        let mut m2: Option<SimTime> = None;
        for s in 0..self.num_shards {
            let Some(t) = next(s) else { continue };
            match m1 {
                None => m1 = Some((t, s)),
                Some((best, _)) if t < best => {
                    m2 = Some(best);
                    m1 = Some((t, s));
                }
                Some(_) => {
                    m2 = Some(match m2 {
                        Some(m) => m.min(t),
                        None => t,
                    });
                }
            }
        }
        let Some((start, holder)) = m1 else {
            return Verdict::Stop { completed: true };
        };
        if start > self.target {
            return Verdict::Stop { completed: true };
        }
        // `start ≥ hard_end` is only reachable when the exclusive bound
        // saturated (`target == SimTime::MAX`): an ordinary exclusive
        // window could never include the event, so issue an inclusive
        // **rim** window rather than silently excluding it (or spinning
        // on empty windows forever).
        let rim = start >= self.hard_end;
        Verdict::Window {
            start,
            holder,
            m2,
            rim,
        }
    }

    /// Conservative per-shard end: shard `s` cannot emit anything due
    /// before `next_s + L`, so `d` may run to the minimum of that over
    /// all other shards — the runner-up head for the holder of the
    /// global minimum, the global minimum itself for everyone else.
    fn end_for(
        &self,
        d: usize,
        start: SimTime,
        holder: usize,
        m2: Option<SimTime>,
        width: SimDuration,
    ) -> SimTime {
        let allowance = if d == holder { m2 } else { Some(start) };
        let mut end = start.saturating_add(width);
        if let Some(a) = allowance {
            end = end.min(a.saturating_add(self.lookahead));
        }
        end.min(self.hard_end)
    }

    /// Deterministic grow/shrink of the target width from the observed
    /// events per window, floored at the lookahead.
    fn adapt(&self, width: SimDuration, window_events: u64) -> SimDuration {
        if !self.adaptive {
            return width;
        }
        let sparse = 8 * self.num_shards as u64;
        let dense = 128 * self.num_shards as u64;
        if window_events < sparse {
            width.saturating_mul(2).min(self.cap)
        } else if window_events > dense {
            SimDuration::from_micros((width.as_micros() / 2).max(self.lookahead.as_micros()))
        } else {
            width
        }
    }
}

/// Publishes `verdict` to every worker: per-shard window ends, or the
/// stop signal. Opens the window's pending trace record and resets the
/// epoch accumulator.
fn publish(sched: &Scheduler, r: &mut Reduction, verdict: Verdict) {
    match verdict {
        Verdict::Stop { completed } => {
            if !completed {
                r.completed = false;
            }
            for tx in &r.decision_txs {
                let _ = tx.send(Decision::Stop);
            }
        }
        Verdict::Window {
            start,
            holder,
            m2,
            rim,
        } => {
            let mut ends = sched.timing.then(|| Vec::with_capacity(sched.num_shards));
            for (d, tx) in r.decision_txs.iter().enumerate() {
                let end = sched.end_for(d, start, holder, m2, r.width);
                if let Some(ends) = ends.as_mut() {
                    ends.push(end);
                }
                let _ = tx.send(Decision::Window { end, rim });
            }
            if let Some(ends) = ends {
                r.pending = Some(PendingWindow {
                    start,
                    width: r.width,
                    straggler: holder,
                    ends,
                    events: vec![0; sched.num_shards],
                    issued: Instant::now(),
                });
            }
            // The decision has consumed the in-flight minima; reset the
            // accumulator for the next epoch's folds.
            for m in r.inbound_min.iter_mut() {
                *m = None;
            }
        }
    }
}

/// Completes an epoch after the last worker folded: finishes the pending
/// window record, adapts the width, and decides + publishes the next
/// window — all under the reduction lock, so the decision is
/// deterministic and workers always observe a fully-published epoch.
fn complete_epoch(sched: &Scheduler, r: &mut Reduction) {
    r.arrived = 0;
    let window_events = std::mem::take(&mut r.epoch_events);
    r.events += window_events;
    r.windows += 1;
    if let Some(p) = r.pending.take() {
        let wall_ns = p.issued.elapsed().as_nanos() as u64;
        if sched.log_windows {
            eprintln!(
                "FED_TRACE window={} start={} width={} straggler={} events={window_events} \
                 wall_us={}",
                r.windows,
                p.start,
                p.width,
                p.straggler,
                wall_ns / 1_000
            );
        }
        r.trace.push(WindowRecord {
            index: r.windows,
            start: p.start,
            width: p.width,
            straggler: p.straggler,
            ends: p.ends,
            events: p.events,
            wall_ns,
        });
    }
    r.width = sched.adapt(r.width, window_events);
    let verdict = sched.decide(
        |s| match (r.local_next[s], r.inbound_min[s]) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
        r.events,
    );
    publish(sched, r, verdict);
}

/// Folds one worker's end-of-window summary into the shared reduction;
/// the last arriver completes the epoch (which publishes the next
/// decision before the lock is released).
fn fold_summary(
    sched: &Scheduler,
    red: &Mutex<Reduction>,
    shard: usize,
    events: u64,
    local_next: Option<SimTime>,
    out_min: &mut [Option<SimTime>],
) {
    let mut guard = red.lock().expect("reduction lock");
    let r = &mut *guard;
    r.local_next[shard] = local_next;
    for (d, m) in out_min.iter_mut().enumerate() {
        if let Some(t) = m.take() {
            r.inbound_min[d] = Some(match r.inbound_min[d] {
                Some(x) => x.min(t),
                None => t,
            });
        }
    }
    r.epoch_events += events;
    if let Some(p) = r.pending.as_mut() {
        p.events[shard] = events;
    }
    r.arrived += 1;
    if r.arrived == sched.num_shards {
        complete_epoch(sched, r);
    }
}

/// One worker's channel endpoints, all indexed by peer shard (`None` on
/// the diagonal). Data batches travel `mail`; the drained vectors come
/// back over `ret` so steady-state windows allocate nothing.
struct Links<P: Protocol> {
    /// Outbound data batches, by destination.
    mail_txs: Vec<Option<Sender<Batch<P>>>>,
    /// Inbound data batches, by source.
    mail_rxs: Vec<Option<Receiver<Batch<P>>>>,
    /// Returns a drained batch vector to its sender, by source.
    ret_txs: Vec<Option<Sender<Batch<P>>>>,
    /// Reclaims our own vectors from the destination that drained them.
    ret_rxs: Vec<Option<Receiver<Batch<P>>>>,
}

/// Dispatches one event through the kernel with a [`ShardSink`] wired to
/// this worker's queue and outbound mailboxes.
#[allow(clippy::too_many_arguments)]
fn dispatch_one<P, C, R, T>(
    key: EventKey,
    kind: EventKind<P>,
    kernel: &mut Kernel<P>,
    queue: &mut EventQueue<P>,
    map: &ShardMap,
    local_shard: usize,
    lookahead: SimDuration,
    dyn_end: &mut SimTime,
    out: &mut Vec<Batch<P>>,
    out_min: &mut Vec<Option<SimTime>>,
    factory: &mut dyn FnMut(NodeId, &mut Xoshiro256StarStar) -> P,
    probe: &mut Option<&mut C>,
    profiler: &mut Option<&mut R>,
    tracer: &mut Option<&mut T>,
) where
    P: Protocol,
    C: Probe,
    R: Profiler,
    T: Tracer,
{
    let mut sink = ShardSink {
        map,
        local_shard,
        lookahead,
        dyn_end,
        queue,
        out,
        out_min,
    };
    kernel.dispatch(
        key,
        kind,
        factory,
        &mut sink,
        probe.as_deref_mut().map(|p| p as &mut dyn Probe),
        profiler.as_deref_mut().map(|p| p as &mut dyn Profiler),
        tracer.as_deref_mut().map(|t| t as &mut dyn Tracer),
    );
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<P, C, R, T>(
    shard: &mut Shard<P>,
    mut probe: Option<&mut C>,
    mut profiler: Option<&mut R>,
    mut tracer: Option<&mut T>,
    factory: &(dyn Fn(NodeId, &mut Xoshiro256StarStar) -> P + Send + Sync),
    map: &ShardMap,
    sched: &Scheduler,
    red: &Mutex<Reduction>,
    decision_rx: Receiver<Decision>,
    links: Links<P>,
) where
    P: Protocol,
    C: Probe,
    R: Profiler,
    T: Tracer,
{
    let num_shards = map.num_shards();
    let mut factory = |id: NodeId, rng: &mut Xoshiro256StarStar| factory(id, rng);
    let Shard {
        index,
        kernel,
        queue,
    } = shard;
    let me = *index;
    let lookahead = kernel.net().min_latency();
    let mut out: Vec<Batch<P>> = (0..num_shards).map(|_| Vec::new()).collect();
    let mut out_min: Vec<Option<SimTime>> = vec![None; num_shards];
    // Wall clocks are taken only when a profiler is attached, so the
    // unprofiled hot path pays nothing beyond a `None` branch.
    let timing = profiler.is_some();
    loop {
        // The decision is computed in-place by whichever worker folds the
        // epoch last, so by the time it arrives every peer has already
        // sent its batch (sends precede folds) and this window's inbound
        // events are already in our queue (absorbed below, before the
        // recv). Blocking here is therefore the *pure* straggler stall:
        // everything local is done and the slowest shard has not folded.
        let wait_t0 = timing.then(Instant::now);
        let Ok(msg) = decision_rx.recv() else { break };
        let wait_ns = wait_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let Decision::Window { end, rim } = msg else {
            // Stop: the final window's batches were absorbed at its end,
            // so the queue already holds every in-flight event for the
            // next `run_until` call.
            break;
        };
        // Reclaim batch vectors our peers drained and returned.
        for (dest, ret) in links.ret_rxs.iter().enumerate() {
            if let Some(ret) = ret {
                if out[dest].capacity() == 0 {
                    if let Ok(v) = ret.try_recv() {
                        out[dest] = v;
                    }
                }
            }
        }
        let mut dyn_end = end;
        let mut events = 0u64;
        let mut exchange_ns = 0u64;
        let mut fill_ns = 0u64;
        // Run the local queue — which already holds this window's
        // absorbed inbound events — to the (dynamic) window end.
        // `dyn_end` starts at the published conservative end and tightens
        // as cross-shard sends occur (see [`ShardSink`]); unprocessed
        // events simply wait for the next window. Rim windows instead
        // pop everything left — every remaining event sits exactly at
        // the saturated target (see [`Scheduler::decide`]) — bounded by
        // the event budget as a stopgap against saturated same-time
        // cycles.
        let exec_t0 = timing.then(Instant::now);
        loop {
            let popped = if rim {
                if events >= sched.max_events {
                    None
                } else {
                    queue.pop()
                }
            } else {
                queue.pop_before(dyn_end)
            };
            let Some((key, kind)) = popped else { break };
            events += 1;
            dispatch_one(
                key,
                kind,
                kernel,
                queue,
                map,
                me,
                lookahead,
                &mut dyn_end,
                &mut out,
                &mut out_min,
                &mut factory,
                &mut probe,
                &mut profiler,
                &mut tracer,
            );
        }
        let execute_ns = exec_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        if let Some(p) = profiler.as_deref_mut() {
            let (mut msgs, mut bytes) = (0u64, 0u64);
            for batch in &out {
                msgs += batch.len() as u64;
                for (_, kind) in batch {
                    if let EventKind::Deliver { msg, .. } = kind {
                        bytes += P::message_size(msg) as u64;
                    }
                }
            }
            if msgs > 0 {
                p.on_mailbox(msgs, bytes);
            }
        }
        // Send one batch (possibly empty) to every peer *before* folding:
        // the decision that follows the fold may race ahead of us
        // otherwise, and a stopping peer must find its final batch.
        let send_t0 = timing.then(Instant::now);
        for (dest, tx) in links.mail_txs.iter().enumerate() {
            if let Some(tx) = tx {
                if tx.send(std::mem::take(&mut out[dest])).is_err() {
                    return; // peer gone, run shutting down
                }
            }
        }
        exchange_ns += send_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        // Fold immediately after sending so the reduction — and hence the
        // next decision — never waits on this shard's absorption below.
        // `queue.next_time()` is taken before absorbing, which is why the
        // reduction folds the senders' outbound minima (`inbound_min`)
        // alongside it: together they cover every event this shard will
        // hold next window.
        fold_summary(sched, red, me, events, queue.next_time(), &mut out_min);
        // Absorption — exactly one batch per peer per window, pulled
        // *eagerly* between the fold and the next decision, while the
        // slower shards are still executing. Inbound events are due at or
        // after `next + lookahead` of their sender, i.e. inside a later
        // window, so pushing them while this window is closed is safe.
        // Blocking here is pipeline fill (the peer has not reached its
        // send yet), not a straggler stall.
        for (rx, ret) in links.mail_rxs.iter().zip(&links.ret_txs) {
            let (Some(rx), Some(ret)) = (rx, ret) else {
                continue;
            };
            let fill_t0 = timing.then(Instant::now);
            let Ok(mut batch) = rx.recv() else {
                return; // peer gone, run shutting down
            };
            fill_ns += fill_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            let push_t0 = timing.then(Instant::now);
            for (key, kind) in batch.drain(..) {
                queue.push(key, kind);
            }
            let _ = ret.send(batch);
            exchange_ns += push_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        }
        if let Some(p) = profiler.as_deref_mut() {
            p.on_window(WindowWork {
                end: dyn_end,
                events,
                execute_ns,
                exchange_ns,
                fill_ns,
                wait_ns,
            });
        }
    }
}

/// The sharded simulation runtime; see the crate docs for the model.
pub struct ShardedSimulation<P: Protocol> {
    shards: Vec<Shard<P>>,
    map: Arc<ShardMap>,
    n: usize,
    now: SimTime,
    external_seq: u64,
    lookahead: SimDuration,
    window: WindowPolicy,
    /// Current adaptive target width; persists across `run_until` calls.
    window_width: SimDuration,
    factory: SharedFactory<P>,
    events_processed: u64,
    max_events: u64,
    windows: u64,
}

impl<P: Protocol> ShardedSimulation<P> {
    /// Creates a simulation of `n` nodes split round-robin across
    /// `shards` shards with the default (adaptive) window policy, and
    /// runs every node's `on_init` at time zero.
    ///
    /// Unlike [`fed_sim::Simulation::new`], the factory must be `Fn` (not
    /// `FnMut`) and thread-safe, because crashed nodes can be rebuilt
    /// concurrently on any shard. Stateless factories — the common case —
    /// satisfy this as-is and make a sharded run bit-identical to a
    /// sequential one.
    ///
    /// `shards` is clamped to `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u32::MAX as usize`.
    pub fn new<F>(n: usize, net: NetworkModel, seed: u64, shards: usize, factory: F) -> Self
    where
        F: Fn(NodeId, &mut Xoshiro256StarStar) -> P + Send + Sync + 'static,
    {
        Self::with_scheduler(
            n,
            net,
            seed,
            ShardMap::round_robin(n, shards),
            WindowPolicy::default(),
            factory,
        )
    }

    /// Creates a simulation with an explicit placement ([`ShardMap`]) and
    /// [`WindowPolicy`] — the fully-specified scheduler constructor.
    ///
    /// # Panics
    ///
    /// Panics if `map` does not cover exactly `n` nodes.
    pub fn with_scheduler<F>(
        n: usize,
        net: NetworkModel,
        seed: u64,
        map: ShardMap,
        window: WindowPolicy,
        factory: F,
    ) -> Self
    where
        F: Fn(NodeId, &mut Xoshiro256StarStar) -> P + Send + Sync + 'static,
    {
        assert!(n > 0, "simulation requires at least one node");
        assert_eq!(map.len(), n, "shard map must cover the population");
        let map = Arc::new(map);
        let num_shards = map.num_shards();
        let lookahead = net.min_latency();
        let factory: SharedFactory<P> = Arc::new(factory);
        let mut streams: Vec<Option<_>> = seed_streams(seed, n).into_iter().map(Some).collect();
        let mut shard_list = Vec::with_capacity(num_shards);
        let mut staged: Vec<(usize, EventKey, EventKind<P>)> = Vec::new();
        for s in 0..num_shards {
            let owned: Vec<u32> = map.owned(s).to_vec();
            let shard_streams = owned
                .iter()
                .map(|&id| streams[id as usize].take().expect("each node on one shard"))
                .collect();
            let mut queue = EventQueue::new();
            let shared = &*factory;
            let mut factory = |id: NodeId, rng: &mut Xoshiro256StarStar| shared(id, rng);
            let kernel = {
                let mut sink = InitSink {
                    map: &map,
                    local_shard: s,
                    queue: &mut queue,
                    outbound: &mut staged,
                };
                Kernel::new(
                    n,
                    owned,
                    shard_streams,
                    net.clone(),
                    &mut factory,
                    &mut sink,
                )
            };
            shard_list.push(Shard {
                index: s,
                kernel,
                queue,
            });
        }
        // Deliver cross-shard init effects now that every queue exists;
        // canonical keys make the insertion order irrelevant.
        for (dest, key, kind) in staged {
            shard_list[dest].queue.push(key, kind);
        }
        ShardedSimulation {
            shards: shard_list,
            map,
            n,
            now: SimTime::ZERO,
            external_seq: 0,
            lookahead,
            window,
            window_width: lookahead,
            factory,
            events_processed: 0,
            max_events: 500_000_000,
            windows: 0,
        }
    }

    /// Caps the total number of events this cluster will process, as a
    /// safety net against protocol bugs that generate unbounded message
    /// storms (the sequential engine's [`fed_sim::Simulation::set_max_events`]
    /// twin).
    ///
    /// The budget is checked at window barriers, so a run may overshoot
    /// the cap by up to one window before stopping; a capped run reports
    /// `completed == false` and is *not* bit-comparable to a sequential
    /// run stopped by its (event-granular) cap.
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Replaces the window policy; takes effect at the next `run_until`
    /// call (the adaptive target width resets to the lookahead).
    ///
    /// Window sizing cannot affect results — only barrier counts and
    /// wall-clock time.
    pub fn set_window_policy(&mut self, window: WindowPolicy) {
        self.window = window;
        self.window_width = self.lookahead;
    }

    /// The active window policy.
    pub fn window_policy(&self) -> WindowPolicy {
        self.window
    }

    /// The node→shard placement in use.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: constructing with zero nodes is rejected.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of shards actually in use.
    pub fn num_shards(&self) -> usize {
        self.map.num_shards()
    }

    /// The conservative lookahead (minimum window width) of this cluster.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far, summed over all shards.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total barrier windows executed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Push/pop/overflow counters summed over every shard's queue.
    ///
    /// `pushes` and `pops` are partition-invariant and match the
    /// sequential engine's [`fed_sim::Simulation::queue_stats`] for the
    /// same run; `overflow_hits` depends on per-shard queue geometry and
    /// does not (see [`QueueStats`]).
    pub fn queue_stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for s in &self.shards {
            total.merge(&s.queue.stats());
        }
        total
    }

    fn shard_of(&self, id: NodeId) -> usize {
        self.map.shard_of(id)
    }

    /// Shared access to a node's protocol state (alive or crashed).
    pub fn node(&self, id: NodeId) -> Option<&P> {
        if id.index() >= self.n {
            return None;
        }
        self.shards[self.shard_of(id)].kernel.node(id)
    }

    /// Iterates over `(id, state)` of every node that has state, in id
    /// order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        (0..self.n as u32).filter_map(move |i| {
            let id = NodeId::new(i);
            self.node(id).map(|p| (id, p))
        })
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        id.index() < self.n && self.shards[self.shard_of(id)].kernel.is_alive(id)
    }

    /// Transport statistics of one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn transport_stats(&self, id: NodeId) -> TransportStats {
        assert!(id.index() < self.n, "node id out of range");
        self.shards[self.shard_of(id)]
            .kernel
            .stats_of(id)
            .expect("owner shard has stats")
    }

    /// Transport statistics of every node, indexed by node.
    ///
    /// Assembled from the shards; unlike the sequential engine this
    /// returns an owned vector.
    pub fn transport_stats_all(&self) -> Vec<TransportStats> {
        (0..self.n as u32)
            .map(|i| self.transport_stats(NodeId::new(i)))
            .collect()
    }

    /// Schedules an application command for `node` at absolute time `at`.
    ///
    /// Scheduling calls must be issued in the same order as on a
    /// sequential [`fed_sim::Simulation`] for runs to be comparable: the
    /// external sequence number is part of the canonical event order.
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: P::Cmd) {
        let at = at.max(self.now);
        self.push_external(at, EventKind::Command { node, cmd });
    }

    /// Schedules a crash of `node` at absolute time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        let at = at.max(self.now);
        self.push_external(at, EventKind::Crash(node));
    }

    /// Schedules a (re)join of `node` at absolute time `at`.
    pub fn schedule_join(&mut self, at: SimTime, node: NodeId) {
        let at = at.max(self.now);
        self.push_external(at, EventKind::Join(node));
    }

    fn push_external(&mut self, time: SimTime, kind: EventKind<P>) {
        let seq = self.external_seq;
        self.external_seq += 1;
        let key = EventKey {
            time,
            src: EXTERNAL_SRC,
            seq,
        };
        let dest = self.map.shard_of(kind.dest());
        self.shards[dest].queue.push(key, kind);
    }
}

impl<P> ShardedSimulation<P>
where
    P: Protocol + Send,
    P::Msg: Send,
    P::Cmd: Send,
{
    /// Runs until virtual time reaches `target` (inclusive) or no events
    /// remain anywhere in the cluster.
    ///
    /// Spawns one worker thread per shard for the duration of the call and
    /// coordinates them through conservative windows (see the crate docs).
    pub fn run_until(&mut self, target: SimTime) -> ClusterReport {
        self.run_until_probed::<NullProbe>(target, &mut [])
    }

    /// [`ShardedSimulation::run_until`] with one telemetry [`Probe`] per
    /// shard: worker `s` threads `probes[s]` through every event it
    /// dispatches, so each probe observes exactly the nodes its shard
    /// owns. Pass an empty slice to run unprobed (the plain
    /// [`ShardedSimulation::run_until`] does exactly that).
    ///
    /// Probes are passive — the probed run is bit-identical to an
    /// unprobed one. A caller wanting global aggregates merges the
    /// per-shard probes afterwards; the `fed-telemetry` crate's
    /// collectors are built for exactly that (their merge is exact, so
    /// the merged result equals a sequential engine's single probe).
    ///
    /// # Panics
    ///
    /// Panics if `probes` is non-empty with length ≠ the shard count.
    pub fn run_until_probed<C>(&mut self, target: SimTime, probes: &mut [C]) -> ClusterReport
    where
        C: Probe + Send,
    {
        self.run_until_profiled::<C, NullProfiler>(target, probes, &mut [], None)
    }

    /// [`ShardedSimulation::run_until_probed`] with one [`Profiler`] per
    /// shard and an optional [`ScheduleTrace`].
    ///
    /// Worker `s` threads `profilers[s]` through its dispatch loop
    /// (deterministic [`Profiler::on_event`] per event) and reports its
    /// per-window phase wall clocks — execute, exchange, pipeline fill,
    /// and the straggler wait at the reduction — and mailbox traffic to
    /// it; every window's sizing decision and straggler attribution is
    /// appended to `schedule` when one is given. Pass empty slices /
    /// `None` to turn each instrument off individually; with everything
    /// off this is exactly [`ShardedSimulation::run_until_probed`] —
    /// profilers are passive and no wall clock is read.
    ///
    /// Setting `FED_TRACE=1` (or the legacy alias `FED_TRACE_WINDOWS=1`)
    /// additionally logs one structured
    /// `FED_TRACE window=… start=… width=… straggler=… events=… wall_us=…`
    /// line per window to stderr, with or without a trace attached. The
    /// variables are read once per process; unset, empty or `0` all mean
    /// *off* (see docs/OBSERVABILITY.md).
    ///
    /// # Panics
    ///
    /// Panics if `probes` or `profilers` is non-empty with length ≠ the
    /// shard count.
    pub fn run_until_profiled<C, R>(
        &mut self,
        target: SimTime,
        probes: &mut [C],
        profilers: &mut [R],
        schedule: Option<&mut ScheduleTrace>,
    ) -> ClusterReport
    where
        C: Probe + Send,
        R: Profiler + Send,
    {
        self.run_until_instrumented::<C, R, NullTracer>(
            target,
            probes,
            profilers,
            &mut [],
            schedule,
        )
    }

    /// [`ShardedSimulation::run_until_profiled`] with one [`Tracer`] per
    /// shard as well.
    ///
    /// Worker `s` threads `tracers[s]` through its dispatch loop: the
    /// tracer receives one [`fed_sim::HopRecord`] per application event
    /// per network send of the nodes shard `s` owns. Hops are recorded on
    /// the *sender's* shard, so each hop is observed exactly once across
    /// the cluster; a caller wanting the global trace merges the
    /// shard-local buffers afterwards (the `fed-trace` crate's merge is
    /// canonical and byte-identical to a sequential engine's single
    /// buffer). Pass an empty slice to run untraced.
    ///
    /// # Panics
    ///
    /// Panics if `probes`, `profilers` or `tracers` is non-empty with
    /// length ≠ the shard count.
    pub fn run_until_instrumented<C, R, T>(
        &mut self,
        target: SimTime,
        probes: &mut [C],
        profilers: &mut [R],
        tracers: &mut [T],
        schedule: Option<&mut ScheduleTrace>,
    ) -> ClusterReport
    where
        C: Probe + Send,
        R: Profiler + Send,
        T: Tracer + Send,
    {
        let num_shards = self.map.num_shards();
        assert!(
            probes.is_empty() || probes.len() == num_shards,
            "need one probe per shard ({} != {num_shards})",
            probes.len()
        );
        assert!(
            profilers.is_empty() || profilers.len() == num_shards,
            "need one profiler per shard ({} != {num_shards})",
            profilers.len()
        );
        assert!(
            tracers.is_empty() || tracers.len() == num_shards,
            "need one tracer per shard ({} != {num_shards})",
            tracers.len()
        );
        let lookahead = self.lookahead;
        let policy = self.window;
        let factory = Arc::clone(&self.factory);
        let map = Arc::clone(&self.map);
        let next: Vec<Option<SimTime>> = self.shards.iter().map(|s| s.queue.next_time()).collect();
        let log_windows = trace_enabled();
        // Record windows (and read wall clocks for them) only when
        // someone is listening.
        let timing = log_windows || schedule.is_some();
        let sched = Scheduler {
            num_shards,
            lookahead,
            target,
            // `target` is inclusive like the sequential engine; windows
            // have exclusive ends, so the last window may end just past
            // it. At the saturation boundary (`target == SimTime::MAX`)
            // no exclusive bound past the target exists — `decide`
            // issues inclusive rim windows for events due exactly there
            // instead of silently excluding them.
            hard_end: target.saturating_add(SimDuration::from_micros(1)),
            max_events: self.max_events,
            already: self.events_processed,
            adaptive: policy.adaptive,
            cap: lookahead.saturating_mul(policy.max_factor.max(1) as u64),
            log_windows,
            timing,
        };
        let mut decision_txs = Vec::with_capacity(num_shards);
        let mut decision_rxs = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            let (tx, rx) = channel::<Decision>();
            decision_txs.push(tx);
            decision_rxs.push(rx);
        }
        let mut red = Reduction {
            arrived: 0,
            local_next: vec![None; num_shards],
            inbound_min: vec![None; num_shards],
            epoch_events: 0,
            width: self.window_width.max(lookahead),
            events: 0,
            windows: 0,
            completed: true,
            pending: None,
            trace: Vec::new(),
            decision_txs,
        };
        // The first decision is made here on the calling thread (from
        // the initial queue heads); every later one is made by whichever
        // worker folds its epoch last. No windows → nothing to spawn.
        let first = sched.decide(|s| next[s], 0);
        let spawn = matches!(first, Verdict::Window { .. });
        publish(&sched, &mut red, first);
        if spawn {
            let mut probe_slots: Vec<Option<&mut C>> = if probes.is_empty() {
                (0..num_shards).map(|_| None).collect()
            } else {
                probes.iter_mut().map(Some).collect()
            };
            let mut profiler_slots: Vec<Option<&mut R>> = if profilers.is_empty() {
                (0..num_shards).map(|_| None).collect()
            } else {
                profilers.iter_mut().map(Some).collect()
            };
            let mut tracer_slots: Vec<Option<&mut T>> = if tracers.is_empty() {
                (0..num_shards).map(|_| None).collect()
            } else {
                tracers.iter_mut().map(Some).collect()
            };
            let red_lock = Mutex::new(red);
            let sched = &sched;
            std::thread::scope(|scope| {
                // Double-buffered shard-to-shard mailboxes: data batches
                // travel src→dest, drained vectors return dest→src. The
                // pipeline keeps at most two batches in flight per link
                // (a worker can run at most one window ahead of the
                // slowest shard — the next decision needs its fold).
                let mut mail_txs: Vec<Vec<Option<Sender<Batch<P>>>>> = (0..num_shards)
                    .map(|_| (0..num_shards).map(|_| None).collect())
                    .collect();
                let mut mail_rxs: Vec<Vec<Option<Receiver<Batch<P>>>>> = (0..num_shards)
                    .map(|_| (0..num_shards).map(|_| None).collect())
                    .collect();
                let mut ret_txs: Vec<Vec<Option<Sender<Batch<P>>>>> = (0..num_shards)
                    .map(|_| (0..num_shards).map(|_| None).collect())
                    .collect();
                let mut ret_rxs: Vec<Vec<Option<Receiver<Batch<P>>>>> = (0..num_shards)
                    .map(|_| (0..num_shards).map(|_| None).collect())
                    .collect();
                for src in 0..num_shards {
                    for dest in 0..num_shards {
                        if src == dest {
                            continue;
                        }
                        let (tx, rx) = channel::<Batch<P>>();
                        mail_txs[src][dest] = Some(tx);
                        mail_rxs[dest][src] = Some(rx);
                        let (tx, rx) = channel::<Batch<P>>();
                        ret_txs[dest][src] = Some(tx);
                        ret_rxs[src][dest] = Some(rx);
                    }
                }
                let mut mail_txs = mail_txs.into_iter();
                let mut mail_rxs = mail_rxs.into_iter();
                let mut ret_txs = ret_txs.into_iter();
                let mut ret_rxs = ret_rxs.into_iter();
                let mut decision_rxs = decision_rxs.into_iter();
                for (((shard, probe), profiler), tracer) in self
                    .shards
                    .iter_mut()
                    .zip(probe_slots.drain(..))
                    .zip(profiler_slots.drain(..))
                    .zip(tracer_slots.drain(..))
                {
                    let factory = Arc::clone(&factory);
                    let map = Arc::clone(&map);
                    let red = &red_lock;
                    let decision_rx = decision_rxs.next().expect("one receiver per shard");
                    let links = Links {
                        mail_txs: mail_txs.next().expect("one row per shard"),
                        mail_rxs: mail_rxs.next().expect("one row per shard"),
                        ret_txs: ret_txs.next().expect("one row per shard"),
                        ret_rxs: ret_rxs.next().expect("one row per shard"),
                    };
                    scope.spawn(move || {
                        worker_loop(
                            shard,
                            probe,
                            profiler,
                            tracer,
                            &*factory,
                            &map,
                            sched,
                            red,
                            decision_rx,
                            links,
                        )
                    });
                }
            });
            red = red_lock.into_inner().expect("reduction lock");
        }
        let report = ClusterReport {
            events: red.events,
            windows: red.windows,
            completed: red.completed,
        };
        if let Some(trace) = schedule {
            for rec in red.trace.drain(..) {
                trace.record(rec, num_shards);
            }
        }
        self.window_width = red.width;
        if report.completed {
            self.now = self.now.max(target);
        }
        self.events_processed += report.events;
        self.windows += report.windows;
        report
    }

    /// Runs for a span of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) -> ClusterReport {
        self.run_until(self.now + d)
    }
}

impl<P: Protocol> std::fmt::Debug for ShardedSimulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimulation")
            .field("n", &self.n)
            .field("shards", &self.map.num_shards())
            .field("now", &self.now)
            .field("lookahead", &self.lookahead)
            .field("window", &self.window)
            .field("events_processed", &self.events_processed)
            .field("windows", &self.windows)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_sim::network::LatencyModel;
    use fed_sim::protocol::Context;
    use fed_sim::Simulation;
    use fed_util::rng::Rng64;

    /// Chatty protocol exercising sends, timers, randomness and churn.
    #[derive(Debug, Default)]
    struct Chatter {
        msgs: Vec<(NodeId, u64)>,
        timers: Vec<u64>,
        rounds: u64,
    }

    impl Protocol for Chatter {
        type Msg = u64;
        type Cmd = u64;

        fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            self.msgs.push((from, msg));
            if msg > 0 {
                // Bounce a decremented value to a random peer.
                let n = ctx.system_size() as u64;
                let to = NodeId::new(ctx.rng().range_u64(n) as u32);
                ctx.send(to, msg - 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>, token: u64) {
            self.timers.push(token);
            self.rounds += 1;
            if self.rounds < 20 {
                let n = ctx.system_size() as u64;
                let to = NodeId::new(ctx.rng().range_u64(n) as u32);
                ctx.send(to, 3);
                ctx.set_timer(SimDuration::from_millis(10), self.rounds);
            }
        }
        fn on_command(&mut self, ctx: &mut Context<'_, u64>, cmd: u64) {
            let n = ctx.system_size() as u64;
            let to = NodeId::new(ctx.rng().range_u64(n) as u32);
            ctx.send(to, cmd);
        }
        fn message_size(msg: &u64) -> usize {
            *msg as usize + 1
        }
    }

    fn lossy_net() -> NetworkModel {
        NetworkModel::lossy(
            LatencyModel::Uniform {
                lo: SimDuration::from_millis(2),
                hi: SimDuration::from_millis(40),
            },
            0.1,
        )
    }

    /// Tiny façade so the same workload drives both engines.
    trait Engine {
        fn command(&mut self, at: SimTime, node: NodeId, cmd: u64);
        fn crash(&mut self, at: SimTime, node: NodeId);
        fn join(&mut self, at: SimTime, node: NodeId);
    }
    impl Engine for Simulation<Chatter> {
        fn command(&mut self, at: SimTime, node: NodeId, cmd: u64) {
            self.schedule_command(at, node, cmd);
        }
        fn crash(&mut self, at: SimTime, node: NodeId) {
            self.schedule_crash(at, node);
        }
        fn join(&mut self, at: SimTime, node: NodeId) {
            self.schedule_join(at, node);
        }
    }
    impl Engine for ShardedSimulation<Chatter> {
        fn command(&mut self, at: SimTime, node: NodeId, cmd: u64) {
            self.schedule_command(at, node, cmd);
        }
        fn crash(&mut self, at: SimTime, node: NodeId) {
            self.schedule_crash(at, node);
        }
        fn join(&mut self, at: SimTime, node: NodeId) {
            self.schedule_join(at, node);
        }
    }

    fn schedule<S: Engine>(sim: &mut S) {
        for i in 0..40u64 {
            sim.command(
                SimTime::from_millis(i * 7),
                NodeId::new((i % 16) as u32),
                i % 5,
            );
        }
        sim.crash(SimTime::from_millis(50), NodeId::new(3));
        sim.join(SimTime::from_millis(140), NodeId::new(3));
    }

    /// Order-sensitive digest of a node's message log — strict enough for
    /// bit-identity checks without cloning every log (FNV-1a fold).
    fn digest_msgs(msgs: &[(NodeId, u64)]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (from, msg) in msgs {
            for v in [u64::from(from.as_u32()), *msg] {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    type Fingerprint = (Vec<u64>, Vec<TransportStats>, u64);

    fn fingerprint_seq(sim: &Simulation<Chatter>) -> Fingerprint {
        (
            sim.nodes().map(|(_, p)| digest_msgs(&p.msgs)).collect(),
            sim.transport_stats_all().to_vec(),
            sim.events_processed(),
        )
    }

    fn fingerprint_cluster(sim: &ShardedSimulation<Chatter>) -> Fingerprint {
        (
            sim.nodes().map(|(_, p)| digest_msgs(&p.msgs)).collect(),
            sim.transport_stats_all(),
            sim.events_processed(),
        )
    }

    #[test]
    fn matches_sequential_engine_bit_for_bit() {
        let horizon = SimTime::from_secs(1);
        let mut seq = Simulation::new(16, lossy_net(), 42, |_, _| Chatter::default());
        schedule(&mut seq);
        seq.run_until(horizon);
        let expect = fingerprint_seq(&seq);

        for shards in [1, 2, 4, 7] {
            let mut cluster =
                ShardedSimulation::new(16, lossy_net(), 42, shards, |_, _| Chatter::default());
            schedule(&mut cluster);
            cluster.run_until(horizon);
            assert_eq!(
                fingerprint_cluster(&cluster),
                expect,
                "cluster with {shards} shards diverged from sequential engine"
            );
        }
    }

    /// Every placement policy is bit-identical to the sequential engine:
    /// placement decides which thread runs a node, never what the node
    /// computes.
    #[test]
    fn placement_policies_match_sequential_engine() {
        let horizon = SimTime::from_secs(1);
        let mut seq = Simulation::new(16, lossy_net(), 42, |_, _| Chatter::default());
        schedule(&mut seq);
        seq.run_until(horizon);
        let expect = fingerprint_seq(&seq);

        // An arbitrary deterministic non-uniform weight profile.
        let weights: Vec<u64> = (0..16u64).map(|i| (i * i) % 7 + 1).collect();
        for shards in [2usize, 4, 7] {
            let maps = [
                ("round-robin", ShardMap::round_robin(16, shards)),
                ("block", ShardMap::block(16, shards)),
                ("balanced", ShardMap::balanced(&weights, shards)),
            ];
            for (name, map) in maps {
                let mut cluster = ShardedSimulation::with_scheduler(
                    16,
                    lossy_net(),
                    42,
                    map,
                    WindowPolicy::default(),
                    |_, _| Chatter::default(),
                );
                schedule(&mut cluster);
                cluster.run_until(horizon);
                assert_eq!(
                    fingerprint_cluster(&cluster),
                    expect,
                    "{name} placement with {shards} shards diverged"
                );
            }
        }
    }

    /// Adaptive windows are a pure performance knob: identical results,
    /// never more barriers than the fixed policy.
    #[test]
    fn adaptive_windows_match_fixed_with_fewer_barriers() {
        let horizon = SimTime::from_secs(1);
        let run = |window: WindowPolicy| {
            let mut cluster = ShardedSimulation::with_scheduler(
                16,
                lossy_net(),
                42,
                ShardMap::round_robin(16, 4),
                window,
                |_, _| Chatter::default(),
            );
            schedule(&mut cluster);
            cluster.run_until(horizon);
            (fingerprint_cluster(&cluster), cluster.windows())
        };
        let (fixed, fixed_windows) = run(WindowPolicy::fixed());
        let (adaptive, adaptive_windows) = run(WindowPolicy::adaptive());
        assert_eq!(adaptive, fixed, "window policy changed the outcome");
        assert!(
            adaptive_windows <= fixed_windows,
            "adaptive ({adaptive_windows}) ran more barriers than fixed ({fixed_windows})"
        );
    }

    #[test]
    fn multiple_run_calls_match_single_run() {
        let mut one = ShardedSimulation::new(8, lossy_net(), 9, 2, |_, _| Chatter::default());
        let mut two = ShardedSimulation::new(8, lossy_net(), 9, 2, |_, _| Chatter::default());
        schedule(&mut one);
        schedule(&mut two);
        one.run_until(SimTime::from_secs(1));
        for step in 1..=10 {
            two.run_until(SimTime::from_millis(step * 100));
        }
        assert_eq!(fingerprint_cluster(&one), fingerprint_cluster(&two));
        assert_eq!(one.now(), two.now());
    }

    #[test]
    fn shards_clamped_to_population() {
        let sim =
            ShardedSimulation::new(3, NetworkModel::default(), 1, 64, |_, _| Chatter::default());
        assert_eq!(sim.num_shards(), 3);
        assert_eq!(sim.len(), 3);
    }

    #[test]
    fn crash_and_rejoin_preserved_across_shards() {
        let mut sim = ShardedSimulation::new(8, lossy_net(), 5, 4, |_, _| Chatter::default());
        sim.schedule_crash(SimTime::from_millis(5), NodeId::new(6));
        sim.run_until(SimTime::from_millis(20));
        assert!(!sim.is_alive(NodeId::new(6)));
        sim.schedule_join(SimTime::from_millis(30), NodeId::new(6));
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.is_alive(NodeId::new(6)));
        assert_eq!(sim.nodes().count(), 8);
    }

    #[test]
    fn event_budget_stops_run() {
        let mut sim = ShardedSimulation::new(8, lossy_net(), 3, 2, |_, _| Chatter::default());
        schedule(&mut sim);
        sim.set_max_events(10);
        let report = sim.run_until(SimTime::from_secs(1));
        assert!(!report.completed, "budget must interrupt the run");
        assert!(sim.events_processed() >= 10);
        // An uncapped twin processes far more.
        let mut free = ShardedSimulation::new(8, lossy_net(), 3, 2, |_, _| Chatter::default());
        schedule(&mut free);
        let full = free.run_until(SimTime::from_secs(1));
        assert!(full.completed);
        assert!(full.events > report.events);
    }

    #[test]
    fn idle_cluster_advances_clock() {
        let mut sim =
            ShardedSimulation::new(4, NetworkModel::default(), 1, 2, |_, _| Chatter::default());
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.now(), SimTime::from_secs(30));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ShardedSimulation::new(0, NetworkModel::default(), 1, 2, |_, _| Chatter::default());
    }

    /// A zero-latency network model must not stall the barrier loop: the
    /// 1 µs delivery floor gives a positive lookahead, every window makes
    /// progress, and the outcome still matches the sequential engine —
    /// under both window policies (the adaptive clamp gets a hard workout
    /// at a 1 µs lookahead).
    #[test]
    fn zero_latency_network_terminates_and_matches_sequential() {
        let net = || NetworkModel::reliable(LatencyModel::Constant(SimDuration::ZERO));
        let horizon = SimTime::from_millis(500);
        let mut seq = Simulation::new(8, net(), 11, |_, _| Chatter::default());
        schedule(&mut seq);
        seq.run_until(horizon);
        let expect = fingerprint_seq(&seq);
        for shards in [1, 2, 4] {
            for window in [WindowPolicy::fixed(), WindowPolicy::adaptive()] {
                let mut cluster = ShardedSimulation::with_scheduler(
                    8,
                    net(),
                    11,
                    ShardMap::round_robin(8, shards),
                    window,
                    |_, _| Chatter::default(),
                );
                assert_eq!(
                    cluster.lookahead(),
                    fed_sim::exec::MIN_NETWORK_LATENCY,
                    "zero-latency lookahead must be floored"
                );
                schedule(&mut cluster);
                let report = cluster.run_until(horizon);
                assert!(report.completed, "{shards} shards: run must terminate");
                assert_eq!(
                    fingerprint_cluster(&cluster),
                    expect,
                    "zero-latency cluster with {shards} shards ({window:?}) diverged"
                );
            }
        }
    }

    /// Messages due exactly at a window's end boundary are exchanged at
    /// the barrier and processed in the next window — with a constant
    /// latency equal to the lookahead, every delivery lands precisely on
    /// a boundary, and nothing is lost, duplicated or reordered.
    #[test]
    fn boundary_aligned_deliveries_match_sequential() {
        let lat = SimDuration::from_millis(10);
        let net = || NetworkModel::reliable(LatencyModel::Constant(lat));
        let horizon = SimTime::from_secs(1);
        let mut seq = Simulation::new(16, net(), 23, |_, _| Chatter::default());
        // Commands on exact multiples of the latency keep every event in
        // the run aligned with window boundaries.
        for i in 0..20u64 {
            seq.schedule_command(
                SimTime::from_millis(i * 10),
                NodeId::new((i % 16) as u32),
                2,
            );
        }
        seq.run_until(horizon);
        let expect = fingerprint_seq(&seq);
        for shards in [2, 4, 7] {
            let mut cluster =
                ShardedSimulation::new(16, net(), 23, shards, |_, _| Chatter::default());
            assert_eq!(cluster.lookahead(), lat);
            for i in 0..20u64 {
                cluster.schedule_command(
                    SimTime::from_millis(i * 10),
                    NodeId::new((i % 16) as u32),
                    2,
                );
            }
            cluster.run_until(horizon);
            assert_eq!(
                fingerprint_cluster(&cluster),
                expect,
                "boundary-aligned cluster with {shards} shards diverged"
            );
        }
    }

    /// Queue pushes/pops are partition-invariant: the sum over shards
    /// equals the sequential engine's single queue, at every shard count.
    #[test]
    fn queue_stats_match_sequential_engine() {
        let horizon = SimTime::from_secs(1);
        let mut seq = Simulation::new(16, lossy_net(), 42, |_, _| Chatter::default());
        schedule(&mut seq);
        seq.run_until(horizon);
        let expect = seq.queue_stats();
        assert!(expect.pushes > 0 && expect.pops > 0);
        assert!(
            expect.pops <= expect.pushes,
            "cannot pop more than was pushed"
        );
        assert_eq!(expect.pops, seq.events_processed());

        for shards in [1, 2, 4, 7] {
            let mut cluster =
                ShardedSimulation::new(16, lossy_net(), 42, shards, |_, _| Chatter::default());
            schedule(&mut cluster);
            cluster.run_until(horizon);
            let got = cluster.queue_stats();
            assert_eq!(
                (got.pushes, got.pops),
                (expect.pushes, expect.pops),
                "queue traffic with {shards} shards diverged from sequential"
            );
        }
    }

    /// A per-shard profiler counting dispatched events.
    #[derive(Debug, Default)]
    struct CountEvents {
        events: u64,
        windows: u64,
        mailbox_msgs: u64,
    }

    impl Profiler for CountEvents {
        fn on_event(&mut self, _now: SimTime) {
            self.events += 1;
        }
        fn on_window(&mut self, _work: WindowWork) {
            self.windows += 1;
        }
        fn on_mailbox(&mut self, msgs: u64, _bytes: u64) {
            self.mailbox_msgs += msgs;
        }
    }

    /// Profiling and schedule tracing are passive (bit-identical run),
    /// profiler event counts sum to the report, and the schedule trace
    /// attributes every window to exactly one straggler.
    #[test]
    fn profilers_and_schedule_trace_are_passive_and_consistent() {
        let horizon = SimTime::from_secs(1);
        let mut plain = ShardedSimulation::new(16, lossy_net(), 42, 4, |_, _| Chatter::default());
        schedule(&mut plain);
        let plain_report = plain.run_until(horizon);
        let expect = fingerprint_cluster(&plain);

        let mut profiled =
            ShardedSimulation::new(16, lossy_net(), 42, 4, |_, _| Chatter::default());
        schedule(&mut profiled);
        let mut profilers: Vec<CountEvents> = (0..4).map(|_| CountEvents::default()).collect();
        let mut trace = ScheduleTrace::default();
        let report = profiled.run_until_profiled::<NullProbe, _>(
            horizon,
            &mut [],
            &mut profilers,
            Some(&mut trace),
        );
        assert_eq!(
            fingerprint_cluster(&profiled),
            expect,
            "profiling perturbed the run"
        );
        assert_eq!(report.events, plain_report.events);
        assert_eq!(
            profilers.iter().map(|p| p.events).sum::<u64>(),
            report.events,
            "one on_event per dispatched event, summed over shards"
        );
        assert_eq!(
            profilers.iter().map(|p| p.windows).sum::<u64>(),
            report.windows * 4,
            "every shard reports every window"
        );
        assert!(
            profilers.iter().map(|p| p.mailbox_msgs).sum::<u64>() > 0,
            "a 4-shard chatter run must exchange cross-shard messages"
        );
        assert_eq!(trace.windows.len() as u64, report.windows);
        assert_eq!(trace.straggler_windows.len(), 4);
        assert_eq!(
            trace.straggler_windows.iter().sum::<u64>(),
            report.windows,
            "each window has exactly one straggler"
        );
        for (i, w) in trace.windows.iter().enumerate() {
            assert_eq!(w.index, i as u64 + 1);
            assert_eq!(w.ends.len(), 4);
            assert_eq!(w.events.len(), 4);
            assert!(w.straggler < 4);
            assert!(w.ends.iter().all(|&e| e > w.start));
        }
        let traced_events: u64 = trace.windows.iter().flat_map(|w| w.events.iter()).sum();
        assert_eq!(traced_events, report.events);
    }

    #[test]
    fn trace_flag_off_for_unset_empty_and_zero() {
        assert!(!trace_flag_on(None));
        assert!(!trace_flag_on(Some(OsStr::new(""))));
        assert!(!trace_flag_on(Some(OsStr::new("0"))));
        assert!(trace_flag_on(Some(OsStr::new("1"))));
        assert!(trace_flag_on(Some(OsStr::new("true"))));
        assert!(
            trace_flag_on(Some(OsStr::new("00"))),
            "only a lone 0 is off"
        );
    }

    /// Quiet protocol recording when its handlers fire — no sends, no
    /// timers — so it is safe to drive arbitrarily close to the
    /// saturation point without overflowing delivery times.
    #[derive(Debug, Default)]
    struct Recorder {
        log: Vec<(SimTime, u64)>,
    }

    impl Protocol for Recorder {
        type Msg = u64;
        type Cmd = u64;
        fn on_init(&mut self, _ctx: &mut Context<'_, u64>) {}
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, _from: NodeId, msg: u64) {
            self.log.push((ctx.now(), msg));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>, token: u64) {
            self.log.push((ctx.now(), token));
        }
        fn on_command(&mut self, ctx: &mut Context<'_, u64>, cmd: u64) {
            self.log.push((ctx.now(), cmd));
        }
    }

    fn recorder_logs_cluster(sim: &ShardedSimulation<Recorder>) -> Vec<Vec<(SimTime, u64)>> {
        sim.nodes().map(|(_, p)| p.log.clone()).collect()
    }

    fn schedule_rim<F: FnMut(SimTime, NodeId, u64)>(mut cmd: F) {
        let near = SimTime::from_micros(u64::MAX - 1);
        cmd(SimTime::from_millis(1), NodeId::new(0), 1);
        cmd(near, NodeId::new(1), 2);
        cmd(SimTime::MAX, NodeId::new(2), 3);
        cmd(SimTime::MAX, NodeId::new(3), 4);
    }

    /// Running to `SimTime::MAX` must still deliver events due exactly at
    /// the target: `hard_end = target + 1µs` saturates back to `target`,
    /// so the scheduler's final window flips to an inclusive "rim" pass
    /// instead of excluding the boundary (or looping on empty exclusive
    /// windows, the old failure mode). Parity holds at and adjacent to
    /// the saturation point, and the run terminates.
    #[test]
    fn saturation_boundary_matches_sequential() {
        let mut seq = Simulation::new(4, NetworkModel::default(), 7, |_, _| Recorder::default());
        schedule_rim(|at, node, cmd| seq.schedule_command(at, node, cmd));
        seq.run_until(SimTime::MAX);
        let expect: Vec<Vec<(SimTime, u64)>> = seq.nodes().map(|(_, p)| p.log.clone()).collect();
        let expect_events = seq.events_processed();
        assert_eq!(expect.iter().map(Vec::len).sum::<usize>(), 4);

        for shards in [1, 2, 4] {
            let mut cluster =
                ShardedSimulation::new(4, NetworkModel::default(), 7, shards, |_, _| {
                    Recorder::default()
                });
            schedule_rim(|at, node, cmd| cluster.schedule_command(at, node, cmd));
            let report = cluster.run_until(SimTime::MAX);
            assert!(report.completed, "{shards} shards: rim run must terminate");
            assert_eq!(cluster.now(), SimTime::MAX);
            assert_eq!(
                recorder_logs_cluster(&cluster),
                expect,
                "saturation rim with {shards} shards diverged from sequential"
            );
            assert_eq!(cluster.events_processed(), expect_events);
        }
    }

    /// One tick shy of saturation the boundary is still exclusive of
    /// later events: `run_until(MAX − 1µs)` delivers everything up to and
    /// including its target but leaves events at `MAX` pending; a second
    /// run to `MAX` drains them. Both steps match the sequential engine.
    #[test]
    fn adjacent_to_saturation_two_phase_matches_sequential() {
        let near = SimTime::from_micros(u64::MAX - 1);
        let mut seq = Simulation::new(4, NetworkModel::default(), 7, |_, _| Recorder::default());
        schedule_rim(|at, node, cmd| seq.schedule_command(at, node, cmd));
        seq.run_until(near);
        let expect_near: Vec<Vec<(SimTime, u64)>> =
            seq.nodes().map(|(_, p)| p.log.clone()).collect();
        seq.run_until(SimTime::MAX);
        let expect_full: Vec<Vec<(SimTime, u64)>> =
            seq.nodes().map(|(_, p)| p.log.clone()).collect();
        assert_ne!(expect_near, expect_full, "events at MAX must be pending");

        for shards in [1, 2, 4] {
            let mut cluster =
                ShardedSimulation::new(4, NetworkModel::default(), 7, shards, |_, _| {
                    Recorder::default()
                });
            schedule_rim(|at, node, cmd| cluster.schedule_command(at, node, cmd));
            let first = cluster.run_until(near);
            assert!(first.completed);
            assert_eq!(
                recorder_logs_cluster(&cluster),
                expect_near,
                "run to MAX-1µs with {shards} shards diverged"
            );
            let second = cluster.run_until(SimTime::MAX);
            assert!(second.completed);
            assert_eq!(
                recorder_logs_cluster(&cluster),
                expect_full,
                "resumed rim run with {shards} shards diverged"
            );
        }
    }
}
