//! # fed-cluster
//!
//! A sharded, multi-threaded runtime executing the exact computation of
//! [`fed_sim::Simulation`] across worker threads.
//!
//! ## Model
//!
//! [`ShardedSimulation`] partitions the `n` node ids round-robin across
//! `s` shards (node `i` lives on shard `i % s`). Each shard is a worker
//! thread owning a [`fed_sim::exec::Kernel`] for its nodes and a private
//! [`fed_sim::exec::EventQueue`]; node-local events (timers, commands,
//! same-shard messages) never leave the shard. Cross-shard messages are
//! staged in a per-shard outbox and exchanged at **conservative
//! time-window barriers**: the coordinator repeatedly picks the earliest
//! pending event time `W` anywhere in the cluster and lets every shard
//! process the window `[W, W + L)` in parallel, where the lookahead `L` is
//! the network model's minimum latency
//! ([`NetworkModel::min_latency`]). No message produced inside a window
//! can be due before the window ends (`latency ≥ L`), so shards never
//! need to wait for each other mid-window.
//!
//! ## Determinism
//!
//! Results are **bit-for-bit identical** to the sequential engine for the
//! same seed, workload and population, regardless of shard count:
//!
//! * events carry canonical `(time, source, per-source seq)` keys
//!   ([`fed_sim::exec::EventKey`]) assigned at production time, and every
//!   queue pops in key order — merging event streams at barriers cannot
//!   reorder them;
//! * per-node random streams ([`fed_sim::exec::seed_streams`]) are forked
//!   from the master seed by node id, never shared across nodes, so
//!   thread interleaving cannot perturb them.
//!
//! The equivalence is asserted by this crate's tests and by the
//! 1000-node `cross_engine` integration test in `fed-experiments`.
//!
//! ## Example
//!
//! ```
//! use fed_cluster::ShardedSimulation;
//! use fed_sim::network::NetworkModel;
//! use fed_sim::{Context, NodeId, Protocol, SimTime};
//!
//! struct Ping { got: bool }
//! impl Protocol for Ping {
//!     type Msg = ();
//!     type Cmd = ();
//!     fn on_init(&mut self, ctx: &mut Context<'_, ()>) {
//!         if ctx.id() == NodeId::new(0) {
//!             for i in 0..ctx.system_size() as u32 {
//!                 ctx.send(NodeId::new(i), ());
//!             }
//!         }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _msg: ()) {
//!         self.got = true;
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _token: u64) {}
//! }
//!
//! let mut sim = ShardedSimulation::new(64, NetworkModel::default(), 1, 4, |_, _| {
//!     Ping { got: false }
//! });
//! sim.run_until(SimTime::from_secs(1));
//! assert!(sim.nodes().all(|(_, p)| p.got));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fed_sim::exec::{
    seed_streams, EffectSink, EventKey, EventKind, EventQueue, Kernel, TransportStats, EXTERNAL_SRC,
};
use fed_sim::network::NetworkModel;
use fed_sim::protocol::{NodeId, Protocol};
use fed_sim::time::{SimDuration, SimTime};
use fed_util::rng::Xoshiro256StarStar;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// The shared, thread-safe node-state factory of a cluster.
type SharedFactory<P> = Arc<dyn Fn(NodeId, &mut Xoshiro256StarStar) -> P + Send + Sync>;

/// Result of a [`ShardedSimulation::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterReport {
    /// Events processed during this call, summed over all shards.
    pub events: u64,
    /// Time windows executed (each window is one cross-shard barrier).
    pub windows: u64,
    /// `false` when the event budget was exhausted before the target time.
    pub completed: bool,
}

/// One shard: a kernel for the nodes it owns plus its private queue.
struct Shard<P: Protocol> {
    index: usize,
    kernel: Kernel<P>,
    queue: EventQueue<P>,
}

/// Sink used while a shard dispatches: local events go straight onto the
/// shard's queue, cross-shard deliveries into the outbox for the barrier.
struct ShardSink<'a, P: Protocol> {
    num_shards: usize,
    local_shard: usize,
    queue: &'a mut EventQueue<P>,
    outbound: &'a mut Vec<(usize, EventKey, EventKind<P>)>,
}

impl<P: Protocol> EffectSink<P> for ShardSink<'_, P> {
    fn emit(&mut self, key: EventKey, kind: EventKind<P>) {
        let dest = kind.dest().index() % self.num_shards;
        if dest == self.local_shard {
            self.queue.push(key, kind);
        } else {
            self.outbound.push((dest, key, kind));
        }
    }
}

enum ToShard<P: Protocol> {
    /// Process all queued events with `time < end` after absorbing
    /// `inbound` from other shards.
    Window {
        end: SimTime,
        inbound: Vec<(EventKey, EventKind<P>)>,
    },
    Done,
}

struct FromShard<P: Protocol> {
    shard: usize,
    outbound: Vec<(usize, EventKey, EventKind<P>)>,
    next_time: Option<SimTime>,
    events: u64,
}

fn worker_loop<P>(
    shard: &mut Shard<P>,
    factory: &(dyn Fn(NodeId, &mut Xoshiro256StarStar) -> P + Send + Sync),
    rx: Receiver<ToShard<P>>,
    tx: Sender<FromShard<P>>,
    num_shards: usize,
) where
    P: Protocol,
{
    let mut factory = |id: NodeId, rng: &mut Xoshiro256StarStar| factory(id, rng);
    let Shard {
        index,
        kernel,
        queue,
    } = shard;
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Done => break,
            ToShard::Window { end, inbound } => {
                for (key, kind) in inbound {
                    queue.push(key, kind);
                }
                let mut outbound = Vec::new();
                let mut events = 0u64;
                while let Some((key, kind)) = queue.pop_before(end) {
                    events += 1;
                    let mut sink = ShardSink {
                        num_shards,
                        local_shard: *index,
                        queue,
                        outbound: &mut outbound,
                    };
                    kernel.dispatch(key, kind, &mut factory, &mut sink);
                }
                let reply = FromShard {
                    shard: *index,
                    outbound,
                    next_time: queue.next_time(),
                    events,
                };
                if tx.send(reply).is_err() {
                    break; // coordinator gone
                }
            }
        }
    }
}

/// The sharded simulation runtime; see the crate docs for the model.
pub struct ShardedSimulation<P: Protocol> {
    shards: Vec<Shard<P>>,
    /// Cross-shard events awaiting delivery, grouped by destination shard.
    pending: Vec<Vec<(EventKey, EventKind<P>)>>,
    n: usize,
    num_shards: usize,
    now: SimTime,
    external_seq: u64,
    lookahead: SimDuration,
    factory: SharedFactory<P>,
    events_processed: u64,
    max_events: u64,
    windows: u64,
}

impl<P: Protocol> ShardedSimulation<P> {
    /// Creates a simulation of `n` nodes split across `shards` shards and
    /// runs every node's `on_init` at time zero.
    ///
    /// Unlike [`fed_sim::Simulation::new`], the factory must be `Fn` (not
    /// `FnMut`) and thread-safe, because crashed nodes can be rebuilt
    /// concurrently on any shard. Stateless factories — the common case —
    /// satisfy this as-is and make a sharded run bit-identical to a
    /// sequential one.
    ///
    /// `shards` is clamped to `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u32::MAX as usize`.
    pub fn new<F>(n: usize, net: NetworkModel, seed: u64, shards: usize, factory: F) -> Self
    where
        F: Fn(NodeId, &mut Xoshiro256StarStar) -> P + Send + Sync + 'static,
    {
        assert!(n > 0, "simulation requires at least one node");
        assert!(n <= u32::MAX as usize, "too many nodes");
        let num_shards = shards.clamp(1, n);
        let lookahead = net.min_latency();
        let factory: SharedFactory<P> = Arc::new(factory);
        let mut streams: Vec<Option<_>> = seed_streams(seed, n).into_iter().map(Some).collect();
        let mut shard_list = Vec::with_capacity(num_shards);
        let mut pending: Vec<Vec<(EventKey, EventKind<P>)>> =
            (0..num_shards).map(|_| Vec::new()).collect();
        for s in 0..num_shards {
            let owned: Vec<u32> = (0..n as u32)
                .filter(|id| *id as usize % num_shards == s)
                .collect();
            let shard_streams = owned
                .iter()
                .map(|&id| streams[id as usize].take().expect("each node on one shard"))
                .collect();
            let mut queue = EventQueue::new();
            let mut outbound = Vec::new();
            let shared = &*factory;
            let mut factory = |id: NodeId, rng: &mut Xoshiro256StarStar| shared(id, rng);
            let kernel = {
                let mut sink = ShardSink {
                    num_shards,
                    local_shard: s,
                    queue: &mut queue,
                    outbound: &mut outbound,
                };
                Kernel::new(
                    n,
                    owned,
                    shard_streams,
                    net.clone(),
                    &mut factory,
                    &mut sink,
                )
            };
            for (dest, key, kind) in outbound {
                pending[dest].push((key, kind));
            }
            shard_list.push(Shard {
                index: s,
                kernel,
                queue,
            });
        }
        ShardedSimulation {
            shards: shard_list,
            pending,
            n,
            num_shards,
            now: SimTime::ZERO,
            external_seq: 0,
            lookahead,
            factory,
            events_processed: 0,
            max_events: 500_000_000,
            windows: 0,
        }
    }

    /// Caps the total number of events this cluster will process, as a
    /// safety net against protocol bugs that generate unbounded message
    /// storms (the sequential engine's [`fed_sim::Simulation::set_max_events`]
    /// twin).
    ///
    /// The budget is checked at window barriers, so a run may overshoot
    /// the cap by up to one lookahead window before stopping; a capped
    /// run reports `completed == false` and is *not* bit-comparable to a
    /// sequential run stopped by its (event-granular) cap.
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: constructing with zero nodes is rejected.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of shards actually in use.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The conservative lookahead (window width) of this cluster.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far, summed over all shards.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Total barrier windows executed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    fn shard_of(&self, id: NodeId) -> usize {
        id.index() % self.num_shards
    }

    /// Shared access to a node's protocol state (alive or crashed).
    pub fn node(&self, id: NodeId) -> Option<&P> {
        if id.index() >= self.n {
            return None;
        }
        self.shards[self.shard_of(id)].kernel.node(id)
    }

    /// Iterates over `(id, state)` of every node that has state, in id
    /// order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        (0..self.n as u32).filter_map(move |i| {
            let id = NodeId::new(i);
            self.node(id).map(|p| (id, p))
        })
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        id.index() < self.n && self.shards[self.shard_of(id)].kernel.is_alive(id)
    }

    /// Transport statistics of one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn transport_stats(&self, id: NodeId) -> TransportStats {
        assert!(id.index() < self.n, "node id out of range");
        self.shards[self.shard_of(id)]
            .kernel
            .stats_of(id)
            .expect("owner shard has stats")
    }

    /// Transport statistics of every node, indexed by node.
    ///
    /// Assembled from the shards; unlike the sequential engine this
    /// returns an owned vector.
    pub fn transport_stats_all(&self) -> Vec<TransportStats> {
        (0..self.n as u32)
            .map(|i| self.transport_stats(NodeId::new(i)))
            .collect()
    }

    /// Schedules an application command for `node` at absolute time `at`.
    ///
    /// Scheduling calls must be issued in the same order as on a
    /// sequential [`fed_sim::Simulation`] for runs to be comparable: the
    /// external sequence number is part of the canonical event order.
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: P::Cmd) {
        let at = at.max(self.now);
        self.push_external(at, EventKind::Command { node, cmd });
    }

    /// Schedules a crash of `node` at absolute time `at`.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        let at = at.max(self.now);
        self.push_external(at, EventKind::Crash(node));
    }

    /// Schedules a (re)join of `node` at absolute time `at`.
    pub fn schedule_join(&mut self, at: SimTime, node: NodeId) {
        let at = at.max(self.now);
        self.push_external(at, EventKind::Join(node));
    }

    fn push_external(&mut self, time: SimTime, kind: EventKind<P>) {
        let seq = self.external_seq;
        self.external_seq += 1;
        let key = EventKey {
            time,
            src: EXTERNAL_SRC,
            seq,
        };
        let dest = kind.dest().index() % self.num_shards;
        self.shards[dest].queue.push(key, kind);
    }
}

impl<P> ShardedSimulation<P>
where
    P: Protocol + Send,
    P::Msg: Send,
    P::Cmd: Send,
{
    /// Runs until virtual time reaches `target` (inclusive) or no events
    /// remain anywhere in the cluster.
    ///
    /// Spawns one worker thread per shard for the duration of the call and
    /// coordinates them through lookahead-wide windows.
    pub fn run_until(&mut self, target: SimTime) -> ClusterReport {
        let num_shards = self.num_shards;
        let lookahead = self.lookahead;
        let factory = Arc::clone(&self.factory);
        let pending = &mut self.pending;
        let mut next_times: Vec<Option<SimTime>> =
            self.shards.iter().map(|s| s.queue.next_time()).collect();
        let max_events = self.max_events;
        let already = self.events_processed;
        let mut report = ClusterReport {
            events: 0,
            windows: 0,
            completed: true,
        };
        // `target` is inclusive like the sequential engine; windows have
        // exclusive ends, so the last window may end just past it.
        let hard_end = target.saturating_add(SimDuration::from_micros(1));
        std::thread::scope(|scope| {
            let (from_tx, from_rx) = channel::<FromShard<P>>();
            let mut to_txs = Vec::with_capacity(num_shards);
            for shard in &mut self.shards {
                let (to_tx, to_rx) = channel::<ToShard<P>>();
                to_txs.push(to_tx);
                let from_tx = from_tx.clone();
                let factory = Arc::clone(&factory);
                scope.spawn(move || worker_loop(shard, &*factory, to_rx, from_tx, num_shards));
            }
            drop(from_tx);
            loop {
                let min_queued = next_times.iter().flatten().min().copied();
                let min_pending = pending
                    .iter()
                    .flat_map(|v| v.iter().map(|(key, _)| key.time))
                    .min();
                if already + report.events >= max_events {
                    report.completed = false;
                    break;
                }
                let start = match (min_queued, min_pending) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => break,
                };
                if start > target {
                    break;
                }
                let end = start.saturating_add(lookahead).min(hard_end);
                for (s, to_tx) in to_txs.iter().enumerate() {
                    let inbound = std::mem::take(&mut pending[s]);
                    to_tx
                        .send(ToShard::Window { end, inbound })
                        .expect("worker thread alive");
                }
                for _ in 0..num_shards {
                    let reply = from_rx.recv().expect("worker thread alive");
                    next_times[reply.shard] = reply.next_time;
                    report.events += reply.events;
                    for (dest, key, kind) in reply.outbound {
                        pending[dest].push((key, kind));
                    }
                }
                report.windows += 1;
            }
            for to_tx in &to_txs {
                let _ = to_tx.send(ToShard::Done);
            }
        });
        if report.completed {
            self.now = self.now.max(target);
        }
        self.events_processed += report.events;
        self.windows += report.windows;
        report
    }

    /// Runs for a span of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) -> ClusterReport {
        self.run_until(self.now + d)
    }
}

impl<P: Protocol> std::fmt::Debug for ShardedSimulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimulation")
            .field("n", &self.n)
            .field("shards", &self.num_shards)
            .field("now", &self.now)
            .field("lookahead", &self.lookahead)
            .field("events_processed", &self.events_processed)
            .field("windows", &self.windows)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_sim::network::LatencyModel;
    use fed_sim::protocol::Context;
    use fed_sim::Simulation;
    use fed_util::rng::Rng64;

    /// Chatty protocol exercising sends, timers, randomness and churn.
    #[derive(Debug, Default)]
    struct Chatter {
        msgs: Vec<(NodeId, u64)>,
        timers: Vec<u64>,
        rounds: u64,
    }

    impl Protocol for Chatter {
        type Msg = u64;
        type Cmd = u64;

        fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
            ctx.set_timer(SimDuration::from_millis(10), 0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
            self.msgs.push((from, msg));
            if msg > 0 {
                // Bounce a decremented value to a random peer.
                let n = ctx.system_size() as u64;
                let to = NodeId::new(ctx.rng().range_u64(n) as u32);
                ctx.send(to, msg - 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u64>, token: u64) {
            self.timers.push(token);
            self.rounds += 1;
            if self.rounds < 20 {
                let n = ctx.system_size() as u64;
                let to = NodeId::new(ctx.rng().range_u64(n) as u32);
                ctx.send(to, 3);
                ctx.set_timer(SimDuration::from_millis(10), self.rounds);
            }
        }
        fn on_command(&mut self, ctx: &mut Context<'_, u64>, cmd: u64) {
            let n = ctx.system_size() as u64;
            let to = NodeId::new(ctx.rng().range_u64(n) as u32);
            ctx.send(to, cmd);
        }
        fn message_size(msg: &u64) -> usize {
            *msg as usize + 1
        }
    }

    fn lossy_net() -> NetworkModel {
        NetworkModel::lossy(
            LatencyModel::Uniform {
                lo: SimDuration::from_millis(2),
                hi: SimDuration::from_millis(40),
            },
            0.1,
        )
    }

    /// Tiny façade so the same workload drives both engines.
    trait Engine {
        fn command(&mut self, at: SimTime, node: NodeId, cmd: u64);
        fn crash(&mut self, at: SimTime, node: NodeId);
        fn join(&mut self, at: SimTime, node: NodeId);
    }
    impl Engine for Simulation<Chatter> {
        fn command(&mut self, at: SimTime, node: NodeId, cmd: u64) {
            self.schedule_command(at, node, cmd);
        }
        fn crash(&mut self, at: SimTime, node: NodeId) {
            self.schedule_crash(at, node);
        }
        fn join(&mut self, at: SimTime, node: NodeId) {
            self.schedule_join(at, node);
        }
    }
    impl Engine for ShardedSimulation<Chatter> {
        fn command(&mut self, at: SimTime, node: NodeId, cmd: u64) {
            self.schedule_command(at, node, cmd);
        }
        fn crash(&mut self, at: SimTime, node: NodeId) {
            self.schedule_crash(at, node);
        }
        fn join(&mut self, at: SimTime, node: NodeId) {
            self.schedule_join(at, node);
        }
    }

    fn schedule<S: Engine>(sim: &mut S) {
        for i in 0..40u64 {
            sim.command(
                SimTime::from_millis(i * 7),
                NodeId::new((i % 16) as u32),
                i % 5,
            );
        }
        sim.crash(SimTime::from_millis(50), NodeId::new(3));
        sim.join(SimTime::from_millis(140), NodeId::new(3));
    }

    type Fingerprint = (Vec<Vec<(NodeId, u64)>>, Vec<TransportStats>, u64);

    fn fingerprint_seq(sim: &Simulation<Chatter>) -> Fingerprint {
        (
            sim.nodes().map(|(_, p)| p.msgs.clone()).collect(),
            sim.transport_stats_all().to_vec(),
            sim.events_processed(),
        )
    }

    fn fingerprint_cluster(sim: &ShardedSimulation<Chatter>) -> Fingerprint {
        (
            sim.nodes().map(|(_, p)| p.msgs.clone()).collect(),
            sim.transport_stats_all(),
            sim.events_processed(),
        )
    }

    #[test]
    fn matches_sequential_engine_bit_for_bit() {
        let horizon = SimTime::from_secs(1);
        let mut seq = Simulation::new(16, lossy_net(), 42, |_, _| Chatter::default());
        schedule(&mut seq);
        seq.run_until(horizon);
        let expect = fingerprint_seq(&seq);

        for shards in [1, 2, 4, 7] {
            let mut cluster =
                ShardedSimulation::new(16, lossy_net(), 42, shards, |_, _| Chatter::default());
            schedule(&mut cluster);
            cluster.run_until(horizon);
            assert_eq!(
                fingerprint_cluster(&cluster),
                expect,
                "cluster with {shards} shards diverged from sequential engine"
            );
        }
    }

    #[test]
    fn multiple_run_calls_match_single_run() {
        let mut one = ShardedSimulation::new(8, lossy_net(), 9, 2, |_, _| Chatter::default());
        let mut two = ShardedSimulation::new(8, lossy_net(), 9, 2, |_, _| Chatter::default());
        schedule(&mut one);
        schedule(&mut two);
        one.run_until(SimTime::from_secs(1));
        for step in 1..=10 {
            two.run_until(SimTime::from_millis(step * 100));
        }
        assert_eq!(fingerprint_cluster(&one), fingerprint_cluster(&two));
        assert_eq!(one.now(), two.now());
    }

    #[test]
    fn shards_clamped_to_population() {
        let sim =
            ShardedSimulation::new(3, NetworkModel::default(), 1, 64, |_, _| Chatter::default());
        assert_eq!(sim.num_shards(), 3);
        assert_eq!(sim.len(), 3);
    }

    #[test]
    fn crash_and_rejoin_preserved_across_shards() {
        let mut sim = ShardedSimulation::new(8, lossy_net(), 5, 4, |_, _| Chatter::default());
        sim.schedule_crash(SimTime::from_millis(5), NodeId::new(6));
        sim.run_until(SimTime::from_millis(20));
        assert!(!sim.is_alive(NodeId::new(6)));
        sim.schedule_join(SimTime::from_millis(30), NodeId::new(6));
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.is_alive(NodeId::new(6)));
        assert_eq!(sim.nodes().count(), 8);
    }

    #[test]
    fn event_budget_stops_run() {
        let mut sim = ShardedSimulation::new(8, lossy_net(), 3, 2, |_, _| Chatter::default());
        schedule(&mut sim);
        sim.set_max_events(10);
        let report = sim.run_until(SimTime::from_secs(1));
        assert!(!report.completed, "budget must interrupt the run");
        assert!(sim.events_processed() >= 10);
        // An uncapped twin processes far more.
        let mut free = ShardedSimulation::new(8, lossy_net(), 3, 2, |_, _| Chatter::default());
        schedule(&mut free);
        let full = free.run_until(SimTime::from_secs(1));
        assert!(full.completed);
        assert!(full.events > report.events);
    }

    #[test]
    fn idle_cluster_advances_clock() {
        let mut sim =
            ShardedSimulation::new(4, NetworkModel::default(), 1, 2, |_, _| Chatter::default());
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.now(), SimTime::from_secs(30));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ShardedSimulation::new(0, NetworkModel::default(), 1, 2, |_, _| Chatter::default());
    }

    /// A zero-latency network model must not stall the barrier loop: the
    /// 1 µs delivery floor gives a positive lookahead, every window makes
    /// progress, and the outcome still matches the sequential engine.
    #[test]
    fn zero_latency_network_terminates_and_matches_sequential() {
        let net = || NetworkModel::reliable(LatencyModel::Constant(SimDuration::ZERO));
        let horizon = SimTime::from_millis(500);
        let mut seq = Simulation::new(8, net(), 11, |_, _| Chatter::default());
        schedule(&mut seq);
        seq.run_until(horizon);
        let expect = fingerprint_seq(&seq);
        for shards in [1, 2, 4] {
            let mut cluster =
                ShardedSimulation::new(8, net(), 11, shards, |_, _| Chatter::default());
            assert_eq!(
                cluster.lookahead(),
                fed_sim::exec::MIN_NETWORK_LATENCY,
                "zero-latency lookahead must be floored"
            );
            schedule(&mut cluster);
            let report = cluster.run_until(horizon);
            assert!(report.completed, "{shards} shards: run must terminate");
            assert_eq!(
                fingerprint_cluster(&cluster),
                expect,
                "zero-latency cluster with {shards} shards diverged"
            );
        }
    }

    /// Messages due exactly at a window's end boundary are exchanged at
    /// the barrier and processed in the next window — with a constant
    /// latency equal to the lookahead, every delivery lands precisely on
    /// a boundary, and nothing is lost, duplicated or reordered.
    #[test]
    fn boundary_aligned_deliveries_match_sequential() {
        let lat = SimDuration::from_millis(10);
        let net = || NetworkModel::reliable(LatencyModel::Constant(lat));
        let horizon = SimTime::from_secs(1);
        let mut seq = Simulation::new(16, net(), 23, |_, _| Chatter::default());
        // Commands on exact multiples of the latency keep every event in
        // the run aligned with window boundaries.
        for i in 0..20u64 {
            seq.schedule_command(
                SimTime::from_millis(i * 10),
                NodeId::new((i % 16) as u32),
                2,
            );
        }
        seq.run_until(horizon);
        let expect = fingerprint_seq(&seq);
        for shards in [2, 4, 7] {
            let mut cluster =
                ShardedSimulation::new(16, net(), 23, shards, |_, _| Chatter::default());
            assert_eq!(cluster.lookahead(), lat);
            for i in 0..20u64 {
                cluster.schedule_command(
                    SimTime::from_millis(i * 10),
                    NodeId::new((i % 16) as u32),
                    2,
                );
            }
            cluster.run_until(horizon);
            assert_eq!(
                fingerprint_cluster(&cluster),
                expect,
                "boundary-aligned cluster with {shards} shards diverged"
            );
        }
    }
}
