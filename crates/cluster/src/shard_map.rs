//! Node→shard placement for the sharded runtime.
//!
//! [`ShardMap`] is the single source of truth for which shard owns which
//! node: the shard sinks route cross-shard events through it, the
//! coordinator uses it to address external commands, and the constructor
//! builds each shard's kernel from its owned-id lists. Placement is a
//! pure performance knob — per-node random streams depend only on
//! `(seed, node id)` ([`fed_sim::exec::seed_streams`]) and events carry
//! canonical keys, so *any* placement produces the same bit-identical
//! execution; what changes is how evenly the event-processing load
//! spreads across worker threads.

use fed_sim::protocol::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An immutable assignment of `n` node ids to shards.
///
/// Built by one of the placement policies ([`ShardMap::round_robin`],
/// [`ShardMap::block`], [`ShardMap::balanced`]); all of them clamp the
/// shard count to `1..=n` and give every shard at least one node.
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// Node id → shard index.
    shard_of: Vec<u32>,
    /// Shard index → ascending owned node ids.
    owned: Vec<Vec<u32>>,
}

impl ShardMap {
    /// Round-robin placement: node `i` lives on shard `i % shards` — the
    /// seed-era default, statistically balanced for uniform workloads.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u32::MAX as usize`.
    pub fn round_robin(n: usize, shards: usize) -> Self {
        let shards = Self::clamp(n, shards);
        Self::from_fn(n, shards, |i| i % shards)
    }

    /// Block placement: shard `k` owns the contiguous id range
    /// `[k·n/s, (k+1)·n/s)`. Keeps id-adjacent nodes co-located, which
    /// helps protocols whose traffic is id-local (ring DHTs) and is the
    /// worst case for id-hotspot protocols (the broker).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u32::MAX as usize`.
    pub fn block(n: usize, shards: usize) -> Self {
        let shards = Self::clamp(n, shards);
        Self::from_fn(n, shards, |i| i * shards / n)
    }

    /// Load-balanced placement guided by a per-node weight profile
    /// (expected event counts): nodes are assigned greedily in
    /// descending-weight order to the least-loaded shard (LPT
    /// scheduling), with deterministic tie-breaking — equal weights by
    /// ascending node id, equal loads by ascending shard index.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() == 0`, `weights.len() > u32::MAX as
    /// usize`.
    pub fn balanced(weights: &[u64], shards: usize) -> Self {
        let n = weights.len();
        let shards = Self::clamp(n, shards);
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| (Reverse(weights[i as usize]), i));
        // Min-heap of (load, shard): ties pop the smallest shard index.
        let mut loads: BinaryHeap<Reverse<(u64, usize)>> =
            (0..shards).map(|s| Reverse((0u64, s))).collect();
        let mut shard_of = vec![0u32; n];
        for &id in &order {
            let Reverse((load, s)) = loads.pop().expect("one entry per shard");
            shard_of[id as usize] = s as u32;
            // A zero-weight node still occupies a pop/dispatch slot; the
            // floor of one also keeps all-zero profiles spreading across
            // shards instead of piling onto shard 0.
            let w = weights[id as usize].max(1);
            loads.push(Reverse((load.saturating_add(w), s)));
        }
        Self::from_assignment(shard_of, shards)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.owned.len()
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.shard_of.len()
    }

    /// Whether the map covers zero nodes (never: constructors reject it).
    pub fn is_empty(&self) -> bool {
        self.shard_of.is_empty()
    }

    /// The shard owning `id`.
    ///
    /// Total over all ids: an out-of-range id maps round-robin so the
    /// event still routes to *a* shard, whose kernel then drops it — the
    /// same tolerance the engines have always had for events addressed
    /// past the population.
    #[inline]
    pub fn shard_of(&self, id: NodeId) -> usize {
        match self.shard_of.get(id.index()) {
            Some(&s) => s as usize,
            None => id.index() % self.num_shards(),
        }
    }

    /// The node ids shard `s` owns, ascending.
    pub fn owned(&self, s: usize) -> &[u32] {
        &self.owned[s]
    }

    fn clamp(n: usize, shards: usize) -> usize {
        assert!(n > 0, "simulation requires at least one node");
        assert!(n <= u32::MAX as usize, "too many nodes");
        shards.clamp(1, n)
    }

    fn from_fn(n: usize, shards: usize, f: impl Fn(usize) -> usize) -> Self {
        let mut shard_of = vec![0u32; n];
        for (i, slot) in shard_of.iter_mut().enumerate() {
            let s = f(i);
            debug_assert!(s < shards);
            *slot = s as u32;
        }
        Self::from_assignment(shard_of, shards)
    }

    fn from_assignment(shard_of: Vec<u32>, shards: usize) -> Self {
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for (i, &s) in shard_of.iter().enumerate() {
            owned[s as usize].push(i as u32);
        }
        // Ascending by construction (ids assigned in order), but make the
        // kernel's precondition explicit.
        debug_assert!(owned.iter().all(|ids| ids.windows(2).all(|w| w[0] < w[1])));
        ShardMap { shard_of, owned }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_all(map: &ShardMap, n: usize) {
        let mut seen = vec![false; n];
        for s in 0..map.num_shards() {
            for &id in map.owned(s) {
                assert_eq!(map.shard_of(NodeId::new(id)), s);
                assert!(!seen[id as usize], "node {id} owned twice");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "some node is unowned");
    }

    #[test]
    fn round_robin_matches_modulo() {
        let map = ShardMap::round_robin(10, 3);
        for i in 0..10u32 {
            assert_eq!(map.shard_of(NodeId::new(i)), i as usize % 3);
        }
        covers_all(&map, 10);
    }

    #[test]
    fn block_is_contiguous_and_covers() {
        let map = ShardMap::block(10, 3);
        covers_all(&map, 10);
        for s in 0..3 {
            let ids = map.owned(s);
            assert!(!ids.is_empty(), "shard {s} empty");
            assert!(
                ids.windows(2).all(|w| w[1] == w[0] + 1),
                "shard {s} not contiguous: {ids:?}"
            );
        }
    }

    #[test]
    fn balanced_spreads_heavy_nodes() {
        // Two very heavy nodes must land on different shards.
        let weights = [1000u64, 1000, 1, 1, 1, 1];
        let map = ShardMap::balanced(&weights, 2);
        covers_all(&map, 6);
        assert_ne!(
            map.shard_of(NodeId::new(0)),
            map.shard_of(NodeId::new(1)),
            "both heavy nodes on one shard"
        );
        // Loads within a factor of ~2 of each other.
        let load = |s: usize| -> u64 { map.owned(s).iter().map(|&i| weights[i as usize]).sum() };
        let (a, b) = (load(0), load(1));
        assert!(a.abs_diff(b) <= 1000, "loads {a} vs {b}");
    }

    #[test]
    fn balanced_is_deterministic() {
        let weights: Vec<u64> = (0..50).map(|i| (i * 7919) % 13).collect();
        let a = ShardMap::balanced(&weights, 4);
        let b = ShardMap::balanced(&weights, 4);
        for i in 0..50u32 {
            assert_eq!(a.shard_of(NodeId::new(i)), b.shard_of(NodeId::new(i)));
        }
        covers_all(&a, 50);
    }

    #[test]
    fn balanced_zero_weights_still_cover_every_shard() {
        let map = ShardMap::balanced(&[0u64; 8], 4);
        covers_all(&map, 8);
        for s in 0..4 {
            assert!(!map.owned(s).is_empty(), "shard {s} empty");
        }
    }

    #[test]
    fn shards_clamped_to_population() {
        assert_eq!(ShardMap::round_robin(3, 64).num_shards(), 3);
        assert_eq!(ShardMap::block(3, 0).num_shards(), 1);
        assert_eq!(ShardMap::balanced(&[1, 2, 3], 7).num_shards(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ShardMap::round_robin(0, 2);
    }
}
