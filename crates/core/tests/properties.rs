//! Property-based tests of the fairness core: ledger arithmetic,
//! controller behaviour and audit soundness.

use fed_core::adaptive::{Controller, ControllerConfig, GlobalRateEstimator, RateSample};
use fed_core::audit::{audit_subject, AuditConfig, AuditOutcome, WitnessReport};
use fed_core::ledger::{ContributionMetric, FairnessLedger, RatioSpec};
use fed_sim::NodeId;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Publish(usize),
    Forward(usize),
    Maintain,
    Credit,
    Deliver,
    SetFilters(u32),
    Roll,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..2_000).prop_map(Op::Publish),
        (1usize..2_000).prop_map(Op::Forward),
        Just(Op::Maintain),
        Just(Op::Credit),
        Just(Op::Deliver),
        (0u32..16).prop_map(Op::SetFilters),
        Just(Op::Roll),
    ]
}

fn apply(ledger: &mut FairnessLedger, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Publish(b) => ledger.record_publish(*b),
            Op::Forward(b) => ledger.record_forward(*b),
            Op::Maintain => ledger.record_maintenance(),
            Op::Credit => ledger.record_maintenance_credit(),
            Op::Deliver => ledger.record_delivery(),
            Op::SetFilters(k) => ledger.set_active_filters(*k),
            Op::Roll => ledger.roll_window(),
        }
    }
}

proptest! {
    /// Contribution and benefit are non-negative, monotone under
    /// recording, and the ratio is always finite under a positive epsilon.
    #[test]
    fn ledger_invariants(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut ledger = FairnessLedger::new();
        let specs = [RatioSpec::topic_based(), RatioSpec::expressive()];
        let mut last = [0.0f64; 2];
        for op in &ops {
            apply(&mut ledger, std::slice::from_ref(op));
            for (i, spec) in specs.iter().enumerate() {
                let c = ledger.contribution(spec);
                prop_assert!(c >= 0.0 && c.is_finite());
                prop_assert!(c + 1e-9 >= last[i], "contribution decreased");
                last[i] = c;
                let b = ledger.benefit(spec);
                prop_assert!(b >= 0.0 && b.is_finite());
                prop_assert!(ledger.ratio(spec).is_finite());
            }
        }
    }

    /// Rolling windows never changes lifetime totals, and window counters
    /// sum to the lifetime totals across all windows plus the open one.
    #[test]
    fn window_roll_conserves_totals(ops in prop::collection::vec(op_strategy(), 0..120)) {
        let mut with_rolls = FairnessLedger::new();
        apply(&mut with_rolls, &ops);
        let mut without_rolls = FairnessLedger::new();
        let filtered: Vec<Op> = ops.iter().filter(|o| !matches!(o, Op::Roll)).cloned().collect();
        apply(&mut without_rolls, &filtered);
        prop_assert_eq!(with_rolls.totals(), without_rolls.totals());
    }

    /// The message metric counts messages, the byte metric counts bytes:
    /// forwarding k messages of b bytes moves them accordingly.
    #[test]
    fn metric_separation(k in 1usize..50, b in 1usize..4_096) {
        let mut ledger = FairnessLedger::new();
        for _ in 0..k {
            ledger.record_forward(b);
        }
        let msgs = RatioSpec { metric: ContributionMetric::Messages, ..RatioSpec::topic_based() };
        let bytes = RatioSpec { metric: ContributionMetric::Bytes, ..RatioSpec::expressive() };
        prop_assert_eq!(ledger.contribution(&msgs), k as f64);
        prop_assert_eq!(ledger.contribution(&bytes), (k * b) as f64);
    }

    /// The controller's output always respects its clamps, whatever the
    /// inputs, and equal inputs at gain 1 give the target.
    #[test]
    fn controller_always_clamped(
        target in 1.0f64..32.0,
        span in 1.0f64..8.0,
        gain in 0.01f64..1.0,
        inputs in prop::collection::vec((0.0f64..1e6, 0.0f64..1e6), 1..64),
    ) {
        let min = target / span;
        let max = target * span;
        let mut ctl = Controller::new(ControllerConfig::new(target, min, max, gain));
        for (own, mean) in inputs {
            let v = ctl.update(own, mean);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9, "{v} outside [{min}, {max}]");
        }
    }

    /// Stochastic rounding is unbiased: its long-run mean equals the
    /// continuous allocation.
    #[test]
    fn stochastic_rounding_unbiased(value in 0.0f64..16.0, seed in any::<u64>()) {
        use fed_util::rng::Xoshiro256StarStar;
        let mut ctl = Controller::new(ControllerConfig::new(8.0, 0.0, 16.0, 1.0));
        ctl.force(value);
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let n = 20_000;
        let total: usize = (0..n).map(|_| ctl.sample_discrete(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        prop_assert!((mean - ctl.value()).abs() < 0.1, "mean {mean} vs {}", ctl.value());
    }

    /// The estimator's mean stays within the convex hull of its prior and
    /// every observed sample.
    #[test]
    fn estimator_stays_in_hull(
        alpha in 0.01f64..1.0,
        prior in 0.0f64..10.0,
        samples in prop::collection::vec(0.0f64..100.0, 1..64),
    ) {
        let mut est = GlobalRateEstimator::new(alpha, prior);
        let mut lo = prior;
        let mut hi = prior;
        for &s in &samples {
            est.observe(RateSample { benefit_rate: s, ..RateSample::default() });
            lo = lo.min(s);
            hi = hi.max(s);
            prop_assert!(est.mean_benefit() >= lo - 1e-9);
            prop_assert!(est.mean_benefit() <= hi + 1e-9);
        }
    }

    /// Audit soundness: an honest subject whose receipts exactly match its
    /// claim is never flagged, whatever the committee composition.
    #[test]
    fn audit_never_flags_exact_truth(
        rate in 0.1f64..50.0,
        witnesses in 1usize..32,
        rounds in 10u64..500,
        n in 3usize..1_000,
    ) {
        // Spread the exact expected total across the committee (floor +
        // remainder), mimicking receipts whose committee-wide average
        // matches the claim exactly — per-witness rounding would introduce
        // a systematic bias no real sampling has.
        let per_witness = rate / (n as f64 - 1.0);
        let total = (per_witness * rounds as f64 * witnesses as f64).round() as u64;
        let base = total / witnesses as u64;
        let remainder = (total % witnesses as u64) as usize;
        let reports: Vec<WitnessReport> = (0..witnesses)
            .map(|w| WitnessReport {
                messages: base + u64::from(w < remainder),
                rounds,
            })
            .collect();
        let verdict = audit_subject(
            NodeId::new(0),
            rate,
            &reports,
            n,
            &AuditConfig { min_evidence: 1, tolerance: 0.7 },
        );
        if verdict.evidence >= 10 {
            prop_assert_eq!(verdict.outcome, AuditOutcome::Consistent, "{}", verdict);
        }
    }

    /// Audit sensitivity: claims k× above the witnessed rate are flagged
    /// once k exceeds the tolerance band.
    #[test]
    fn audit_flags_large_overclaims(
        rate in 1.0f64..50.0,
        factor in 3.0f64..20.0,
        n in 10usize..500,
    ) {
        let per_witness = rate / (n as f64 - 1.0);
        let rounds = 1_000u64;
        let reports: Vec<WitnessReport> = (0..16)
            .map(|_| WitnessReport {
                messages: (per_witness * rounds as f64).round() as u64,
                rounds,
            })
            .collect();
        let verdict = audit_subject(
            NodeId::new(0),
            rate * factor,
            &reports,
            n,
            &AuditConfig { min_evidence: 1, tolerance: 0.7 },
        );
        if verdict.evidence >= 10 {
            prop_assert_eq!(verdict.outcome, AuditOutcome::OverClaimed, "{}", verdict);
        }
    }
}
