//! Adaptive fanout and message-size control (paper §5.2).
//!
//! The paper proposes two knobs for modulating a peer's contribution in
//! expressive dissemination: the **fanout** (partners per round) and the
//! **gossip message size** (events per message), and asks how they can "be
//! dynamically adapted to ensure quick convergence" while maintaining
//! robustness.
//!
//! Our mechanism:
//!
//! 1. Every gossip message piggybacks the sender's windowed benefit and
//!    contribution rates ([`RateSample`]).
//! 2. Each node maintains exponentially weighted averages of the
//!    population's mean benefit rate ([`GlobalRateEstimator`]) — a
//!    gossip-style aggregation in the spirit of push-sum.
//! 3. The controllers allocate the system's fixed work budget
//!    proportionally to benefit share: a node whose benefit rate is `b_i`
//!    against the estimated population mean `b̄` uses
//!    `fanout_i = clamp(F_target · b_i / b̄, f_min, f_max)` (and
//!    analogously for message size).
//!
//! Anchoring to `F_target` answers the robustness question (Q5): the
//! *average* fanout stays at the reliability target (`≈ ln n + c`), the
//! adaptation only redistributes who does the sending; and the clamps
//! answer Q3/Q4: `f_min ≥ 1` keeps every peer infectious so the epidemic
//! stays connected.

use fed_util::rng::Rng64;
use std::fmt;

/// A fairness sample piggybacked on gossip messages: windowed rates plus
/// lifetime totals.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RateSample {
    /// Sender's benefit per round over its last window (deliveries +
    /// weighted filters).
    pub benefit_rate: f64,
    /// Sender's contribution per round over its last window (messages or
    /// bytes per the ratio spec).
    pub contribution_rate: f64,
    /// Sender's lifetime benefit (the denominator of the paper's Fig. 1).
    pub benefit_total: f64,
    /// Sender's lifetime contribution (the numerator of Fig. 1).
    pub contribution_total: f64,
}

impl RateSample {
    /// Approximate wire size of the piggyback in bytes.
    pub const WIRE_BYTES: usize = 32;
}

/// EWMA estimator of the population's mean benefit and contribution rates.
///
/// Deterministic, O(1) state; seeded with a prior so early rounds are not
/// dominated by the first few samples.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalRateEstimator {
    alpha: f64,
    mean_benefit: f64,
    mean_contribution: f64,
    mean_benefit_total: f64,
    mean_contribution_total: f64,
    samples: u64,
}

impl GlobalRateEstimator {
    /// Creates an estimator with smoothing factor `alpha` in `(0, 1]` and
    /// a prior mean benefit (used until real samples arrive).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or the prior is negative.
    pub fn new(alpha: f64, prior_benefit: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(prior_benefit >= 0.0, "prior benefit must be non-negative");
        GlobalRateEstimator {
            alpha,
            mean_benefit: prior_benefit,
            mean_contribution: 0.0,
            mean_benefit_total: 0.0,
            mean_contribution_total: 0.0,
            samples: 0,
        }
    }

    /// Folds one peer sample into the estimate.
    ///
    /// Non-finite or negative samples are ignored (they can only come from
    /// byzantine peers; the audit module handles those separately).
    pub fn observe(&mut self, sample: RateSample) {
        let fields = [
            sample.benefit_rate,
            sample.contribution_rate,
            sample.benefit_total,
            sample.contribution_total,
        ];
        if fields.iter().any(|f| !f.is_finite() || *f < 0.0) {
            return;
        }
        self.mean_benefit += self.alpha * (sample.benefit_rate - self.mean_benefit);
        self.mean_contribution += self.alpha * (sample.contribution_rate - self.mean_contribution);
        self.mean_benefit_total += self.alpha * (sample.benefit_total - self.mean_benefit_total);
        self.mean_contribution_total +=
            self.alpha * (sample.contribution_total - self.mean_contribution_total);
        self.samples += 1;
    }

    /// Estimated population mean benefit rate.
    pub fn mean_benefit(&self) -> f64 {
        self.mean_benefit
    }

    /// Estimated population mean contribution rate.
    pub fn mean_contribution(&self) -> f64 {
        self.mean_contribution
    }

    /// Estimated global fair ratio κ̂ = mean contribution / mean benefit
    /// (windowed rates).
    pub fn global_ratio(&self, epsilon: f64) -> f64 {
        self.mean_contribution / self.mean_benefit.max(epsilon)
    }

    /// Estimated population mean lifetime benefit.
    pub fn mean_benefit_total(&self) -> f64 {
        self.mean_benefit_total
    }

    /// Estimated population mean lifetime contribution.
    pub fn mean_contribution_total(&self) -> f64 {
        self.mean_contribution_total
    }

    /// Estimated global *lifetime* fair ratio κ̂ — what the paper's Figure 1
    /// compares across peers.
    pub fn lifetime_ratio(&self, epsilon: f64) -> f64 {
        self.mean_contribution_total / self.mean_benefit_total.max(epsilon)
    }

    /// Number of samples folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl fmt::Display for GlobalRateEstimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "est(b̄={:.3}, c̄={:.3}, n={})",
            self.mean_benefit, self.mean_contribution, self.samples
        )
    }
}

/// Configuration of one proportional-allocation controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// The population-average value the controller preserves (e.g. the
    /// reliability-driven fanout `ln n + c`).
    pub target_mean: f64,
    /// Lower clamp (Q3: must stay ≥ 1 to keep the epidemic alive).
    pub min: f64,
    /// Upper clamp (no peer can be forced to do unbounded work).
    pub max: f64,
    /// Smoothing factor in `(0, 1]`: 1 = jump straight to the allocation.
    pub gain: f64,
}

impl ControllerConfig {
    /// Validates and builds a config.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= min <= target_mean <= max` and `gain ∈ (0, 1]`.
    /// A zero `min` is meaningful together with stochastic rounding: peers
    /// whose fair share is (temporarily) zero stop forwarding entirely.
    pub fn new(target_mean: f64, min: f64, max: f64, gain: f64) -> Self {
        assert!(min >= 0.0, "min must be non-negative");
        assert!(
            min <= target_mean && target_mean <= max,
            "need min <= target <= max"
        );
        assert!(gain > 0.0 && gain <= 1.0, "gain must be in (0, 1]");
        ControllerConfig {
            target_mean,
            min,
            max,
            gain,
        }
    }
}

/// Proportional-share controller for fanout or message size.
///
/// # Examples
///
/// ```
/// use fed_core::adaptive::{Controller, ControllerConfig};
///
/// // Target mean fanout 8, clamped to [1, 30], jump immediately.
/// let mut c = Controller::new(ControllerConfig::new(8.0, 1.0, 30.0, 1.0));
/// // A peer benefiting at 2× the population mean is allocated 2× fanout.
/// let f = c.update(10.0, 5.0);
/// assert!((f - 16.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Controller {
    config: ControllerConfig,
    value: f64,
}

impl Controller {
    /// Creates a controller starting at the target mean.
    pub fn new(config: ControllerConfig) -> Self {
        Controller {
            config,
            value: config.target_mean,
        }
    }

    /// The current allocation (continuous; round with
    /// [`Controller::value_rounded`] for discrete use).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The current allocation rounded to the nearest integer ≥ 1.
    pub fn value_rounded(&self) -> usize {
        self.value.round().max(1.0) as usize
    }

    /// Stochastic rounding of the allocation: `floor(v)` plus one more with
    /// probability `frac(v)`. This is how fanouts *below one* become
    /// meaningful (paper §5.2 Q3): a peer allocated `0.25` sends to one
    /// partner every fourth round in expectation, so its long-run
    /// contribution matches the allocation while the epidemic keeps every
    /// peer as an occasional relay.
    pub fn sample_discrete<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        let v = self.value.max(0.0);
        let base = v.floor();
        let frac = v - base;
        base as usize + usize::from(rng.bernoulli(frac))
    }

    /// The configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Updates the allocation given this node's own windowed benefit rate
    /// and the estimated population mean benefit rate; returns the new
    /// value.
    ///
    /// When the population mean is (near) zero — an idle system — every
    /// node falls back to the target mean: with no benefit signal the
    /// fairest split of maintenance work is even (paper §5.1: "if almost no
    /// interesting events happen … a fair system would consider the cost in
    /// terms of subscriptions").
    pub fn update(&mut self, own_benefit_rate: f64, mean_benefit_rate: f64) -> f64 {
        let allocation = self.proportional_allocation(own_benefit_rate, mean_benefit_rate);
        self.steer(allocation)
    }

    /// The raw proportional-share allocation without smoothing/clamping.
    ///
    /// Falls back to the target mean while the population delivers less
    /// than one event per thousand rounds — the idle/bootstrap regime in
    /// which the fairest split of (negligible) work is an even one.
    pub fn proportional_allocation(&self, own_benefit_rate: f64, mean_benefit_rate: f64) -> f64 {
        let cfg = &self.config;
        if mean_benefit_rate <= 1e-3 {
            cfg.target_mean
        } else {
            cfg.target_mean * own_benefit_rate.max(0.0) / mean_benefit_rate
        }
    }

    /// Smoothly steers the value toward `allocation`, clamped to the
    /// configured bounds; returns the new value.
    pub fn steer(&mut self, allocation: f64) -> f64 {
        let cfg = &self.config;
        let clamped = allocation.clamp(cfg.min, cfg.max);
        self.value += cfg.gain * (clamped - self.value);
        self.value
    }

    /// Forces the allocation (used by free-rider behaviour models).
    pub fn force(&mut self, value: f64) {
        self.value = value.clamp(self.config.min, self.config.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_converges_to_population_mean() {
        let mut e = GlobalRateEstimator::new(0.1, 0.0);
        for _ in 0..500 {
            e.observe(RateSample {
                benefit_rate: 4.0,
                contribution_rate: 8.0,
                ..RateSample::default()
            });
        }
        assert!((e.mean_benefit() - 4.0).abs() < 0.01, "{e}");
        assert!((e.mean_contribution() - 8.0).abs() < 0.01);
        assert!((e.global_ratio(1e-9) - 2.0).abs() < 0.01);
        assert_eq!(e.samples(), 500);
    }

    #[test]
    fn estimator_tracks_mixture() {
        let mut e = GlobalRateEstimator::new(0.05, 1.0);
        // alternate 0 and 10 -> mean 5
        for i in 0..2000 {
            e.observe(RateSample {
                benefit_rate: if i % 2 == 0 { 0.0 } else { 10.0 },
                contribution_rate: 1.0,
                ..RateSample::default()
            });
        }
        assert!((e.mean_benefit() - 5.0).abs() < 0.5, "{e}");
    }

    #[test]
    fn estimator_rejects_garbage() {
        let mut e = GlobalRateEstimator::new(0.5, 2.0);
        e.observe(RateSample {
            benefit_rate: f64::NAN,
            contribution_rate: 1.0,
            ..RateSample::default()
        });
        e.observe(RateSample {
            benefit_rate: -5.0,
            contribution_rate: 1.0,
            ..RateSample::default()
        });
        assert_eq!(e.samples(), 0);
        assert_eq!(e.mean_benefit(), 2.0, "prior untouched");
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn estimator_rejects_bad_alpha() {
        let _ = GlobalRateEstimator::new(0.0, 1.0);
    }

    #[test]
    fn estimator_tracks_lifetime_totals() {
        let mut e = GlobalRateEstimator::new(0.1, 0.0);
        for _ in 0..300 {
            e.observe(RateSample {
                benefit_rate: 1.0,
                contribution_rate: 2.0,
                benefit_total: 50.0,
                contribution_total: 150.0,
            });
        }
        assert!((e.mean_benefit_total() - 50.0).abs() < 0.5);
        assert!((e.mean_contribution_total() - 150.0).abs() < 1.0);
        assert!((e.lifetime_ratio(1e-9) - 3.0).abs() < 0.05);
    }

    #[test]
    fn zero_floor_allowed() {
        let mut c = Controller::new(ControllerConfig::new(8.0, 0.0, 32.0, 1.0));
        c.steer(-5.0);
        assert_eq!(c.value(), 0.0);
        use fed_util::rng::Xoshiro256StarStar;
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        assert_eq!(c.sample_discrete(&mut rng), 0);
    }

    #[test]
    fn controller_allocates_proportionally() {
        let mut c = Controller::new(ControllerConfig::new(8.0, 1.0, 32.0, 1.0));
        assert_eq!(c.value(), 8.0, "starts at target");
        // equal benefit -> target
        assert!((c.update(5.0, 5.0) - 8.0).abs() < 1e-9);
        // double benefit -> double allocation
        assert!((c.update(10.0, 5.0) - 16.0).abs() < 1e-9);
        // half benefit -> half allocation
        assert!((c.update(2.5, 5.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn controller_clamps() {
        let mut c = Controller::new(ControllerConfig::new(8.0, 2.0, 12.0, 1.0));
        assert_eq!(c.update(1000.0, 1.0), 12.0, "upper clamp");
        assert_eq!(c.update(0.0, 5.0), 2.0, "lower clamp");
        assert_eq!(c.value_rounded(), 2);
    }

    #[test]
    fn controller_idle_system_falls_back_to_target() {
        let mut c = Controller::new(ControllerConfig::new(6.0, 1.0, 20.0, 1.0));
        c.update(0.0, 0.0);
        assert_eq!(c.value(), 6.0);
    }

    #[test]
    fn controller_gain_smooths() {
        let mut c = Controller::new(ControllerConfig::new(8.0, 1.0, 32.0, 0.5));
        c.update(16.0, 8.0); // allocation 16, gain 0.5 -> 12
        assert!((c.value() - 12.0).abs() < 1e-9);
        c.update(16.0, 8.0); // -> 14
        assert!((c.value() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn controller_convergence_speed() {
        // Q1: "how can the fanout be dynamically adapted to ensure quick
        // convergence" — with gain g the distance to the allocation decays
        // as (1-g)^rounds; g = 0.5 converges within 1% in 7 rounds.
        let mut c = Controller::new(ControllerConfig::new(8.0, 1.0, 64.0, 0.5));
        for _ in 0..7 {
            c.update(24.0, 8.0);
        }
        assert!((c.value() - 24.0).abs() < 0.25, "value={}", c.value());
    }

    #[test]
    fn sample_discrete_matches_expectation() {
        use fed_util::rng::Xoshiro256StarStar;
        let mut c = Controller::new(ControllerConfig::new(8.0, 0.25, 32.0, 1.0));
        c.force(0.25);
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let n = 40_000;
        let total: usize = (0..n).map(|_| c.sample_discrete(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean={mean}");
        c.force(3.0);
        assert_eq!(c.sample_discrete(&mut rng), 3, "integer values are exact");
    }

    #[test]
    fn controller_force_respects_clamps() {
        let mut c = Controller::new(ControllerConfig::new(8.0, 2.0, 12.0, 1.0));
        c.force(0.5);
        assert_eq!(c.value(), 2.0);
        c.force(100.0);
        assert_eq!(c.value(), 12.0);
    }

    #[test]
    #[should_panic(expected = "min <= target <= max")]
    fn config_validates_ordering() {
        let _ = ControllerConfig::new(8.0, 9.0, 32.0, 1.0);
    }

    #[test]
    fn negative_own_benefit_treated_as_zero() {
        let mut c = Controller::new(ControllerConfig::new(8.0, 1.0, 32.0, 1.0));
        assert_eq!(c.update(-3.0, 4.0), 1.0);
    }
}
