//! # fed-core
//!
//! The primary contribution of *"Towards Fair Event Dissemination"*
//! (Baehni, Guerraoui, Koldehofe, Monod — ICDCS 2007), built out from the
//! position paper's sketch into a working protocol suite:
//!
//! * [`ledger`] — contribution/benefit accounting exactly as the paper's
//!   Figures 1–3 define it (topic-based and expressive variants).
//! * [`gossip`] — the basic push gossip dissemination algorithm (Figure 4)
//!   and its fairness-adaptive extension: fanout and gossip-message-size
//!   controllers driven by gossip-aggregated benefit estimates (§5.2).
//! * [`adaptive`] — the controllers and the population-rate estimator.
//! * [`submgmt`] — fair subscription maintenance by random walks with
//!   relay compensation (§5.1).
//! * [`behavior`] — selfish/lying peer models (aggrieved leavers,
//!   free-riders, contribution inflators).
//! * [`audit`] — receipt-based audit of contribution claims (§5.2 Q6).
//!
//! ## Examples
//!
//! ```
//! use fed_core::gossip::{GossipCmd, GossipConfig, GossipNode};
//! use fed_membership::FullMembership;
//! use fed_pubsub::{Event, EventId, TopicId};
//! use fed_sim::network::NetworkModel;
//! use fed_sim::{NodeId, SimDuration, SimTime, Simulation};
//!
//! let n = 32;
//! let cfg = GossipConfig::fair(4, 16, SimDuration::from_millis(100));
//! let mut sim = Simulation::new(n, NetworkModel::default(), 7, move |id, _| {
//!     GossipNode::new(id, cfg.clone(), FullMembership::new(id, n))
//! });
//! for i in 0..n {
//!     sim.schedule_command(
//!         SimTime::ZERO,
//!         NodeId::new(i as u32),
//!         GossipCmd::SubscribeTopic(TopicId::new(0)),
//!     );
//! }
//! sim.schedule_command(
//!     SimTime::from_millis(100),
//!     NodeId::new(0),
//!     GossipCmd::Publish(Event::bare(EventId::new(0, 1), TopicId::new(0))),
//! );
//! sim.run_until(SimTime::from_secs(5));
//! let delivered = sim.nodes().filter(|(_, p)| p.deliveries().len() == 1).count();
//! assert_eq!(delivered, n);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod audit;
pub mod behavior;
pub mod gossip;
pub mod ledger;
pub mod submgmt;

pub use adaptive::{Controller, ControllerConfig, GlobalRateEstimator, RateSample};
pub use audit::{audit_subject, AuditConfig, AuditOutcome, AuditVerdict, WitnessReport};
pub use behavior::Behavior;
pub use gossip::{DeliveryRecord, GossipCmd, GossipConfig, GossipMsg, GossipNode};
pub use ledger::{ContributionMetric, Counters, FairnessLedger, RatioSpec};
pub use submgmt::{
    SubWalkCmd, SubWalkConfig, SubWalkMsg, SubWalkNode, WalkAccounting, WalkOutcome,
};
