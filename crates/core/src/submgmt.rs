//! Fair subscription management (paper §5.1).
//!
//! "A fundamental part of work in a selective information dissemination
//! system deals with ongoing subscriptions and unsubscriptions … a
//! subscriber can perform subscriptions from an arbitrary contact of the
//! system" and "some unlucky processes may be far more often involved in
//! forwarding subscription requests than others."
//!
//! This module implements the canonical unstructured mechanism: a
//! subscription is a **random walk** that hops through the membership until
//! it reaches a node already in the target topic's group (or exhausts its
//! budget). Every relay hop is maintenance work. Two accounting policies
//! are compared by experiment E-SUBS:
//!
//! * **Uncompensated** (the status quo the paper criticises): relays absorb
//!   the cost in their contribution; unlucky relays of popular-churn topics
//!   see their ratio degrade through no interest of their own.
//! * **Compensated** (our §5.1 mechanism): each relay hop both counts as
//!   contribution *and* earns a maintenance credit (so the relay's ratio is
//!   unchanged), while the full walk length is billed to the *subscriber's*
//!   contribution — the peer that asked for the work pays for it.

use crate::ledger::FairnessLedger;
use fed_membership::{FullMembership, PeerSampler};
use fed_pubsub::TopicId;
use fed_sim::{Context, NodeId, Protocol};
use std::collections::{BTreeSet, HashMap};

/// Accounting policy for subscription-walk relays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalkAccounting {
    /// Relays absorb the maintenance cost (unfair baseline).
    #[default]
    Uncompensated,
    /// Relays are credited; subscribers are billed for the walk.
    Compensated,
}

/// Configuration of the subscription-walk protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubWalkConfig {
    /// Maximum hops before a walk gives up.
    pub walk_budget: u32,
    /// Accounting policy.
    pub accounting: WalkAccounting,
}

impl Default for SubWalkConfig {
    fn default() -> Self {
        SubWalkConfig {
            walk_budget: 64,
            accounting: WalkAccounting::Uncompensated,
        }
    }
}

/// Why a walk was started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkPurpose {
    /// The origin wants to join the topic group.
    Subscribe,
    /// The origin left the group and informs a remaining member.
    Unsubscribe,
}

/// Wire messages of the walk protocol.
#[derive(Debug, Clone)]
pub enum SubWalkMsg {
    /// A subscription walk looking for a member of `topic`.
    Walk {
        /// Why the walk is running.
        purpose: WalkPurpose,
        /// Target topic.
        topic: TopicId,
        /// The subscribing node (receives the ack).
        origin: NodeId,
        /// Remaining hop budget.
        remaining: u32,
        /// Hops taken so far.
        hops: u32,
    },
    /// Walk completion notice to the origin.
    Ack {
        /// Why the walk ran.
        purpose: WalkPurpose,
        /// Target topic.
        topic: TopicId,
        /// Node where the walk terminated (a group member on success).
        terminus: NodeId,
        /// Whether a member was found within budget.
        found: bool,
        /// Hops the walk used.
        hops: u32,
    },
}

/// Commands injected by the experiment driver.
#[derive(Debug, Clone, Copy)]
pub enum SubWalkCmd {
    /// Start a subscription walk for `topic`.
    Subscribe(TopicId),
    /// Leave the group of `topic` (local, then an unsubscription walk to
    /// inform a remaining member — the paper counts unsubscriptions as
    /// maintenance work too).
    Unsubscribe(TopicId),
}

/// Outcome of one completed walk, recorded at the origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Target topic.
    pub topic: TopicId,
    /// Hops used.
    pub hops: u32,
    /// Whether a group member was found.
    pub found: bool,
}

/// A node participating in subscription-walk maintenance.
#[derive(Debug)]
pub struct SubWalkNode {
    id: NodeId,
    config: SubWalkConfig,
    sampler: FullMembership,
    member_of: BTreeSet<TopicId>,
    ledger: FairnessLedger,
    outcomes: Vec<WalkOutcome>,
    relayed: HashMap<TopicId, u64>,
}

impl SubWalkNode {
    /// Creates a node that is initially a member of `initial_topics`.
    pub fn new<I: IntoIterator<Item = TopicId>>(
        id: NodeId,
        n: usize,
        config: SubWalkConfig,
        initial_topics: I,
    ) -> Self {
        SubWalkNode {
            id,
            config,
            sampler: FullMembership::new(id, n),
            member_of: initial_topics.into_iter().collect(),
            ledger: FairnessLedger::new(),
            outcomes: Vec::new(),
            relayed: HashMap::new(),
        }
    }

    /// The node's fairness ledger.
    pub fn ledger(&self) -> &FairnessLedger {
        &self.ledger
    }

    /// Topics this node is currently a member of.
    pub fn memberships(&self) -> &BTreeSet<TopicId> {
        &self.member_of
    }

    /// Completed walk outcomes originated by this node.
    pub fn outcomes(&self) -> &[WalkOutcome] {
        &self.outcomes
    }

    /// How many walks this node relayed, per topic.
    pub fn relay_counts(&self) -> &HashMap<TopicId, u64> {
        &self.relayed
    }

    /// Total relay work performed.
    pub fn total_relayed(&self) -> u64 {
        self.relayed.values().sum()
    }

    #[allow(clippy::too_many_arguments)]
    fn forward_or_finish(
        &mut self,
        ctx: &mut Context<'_, SubWalkMsg>,
        purpose: WalkPurpose,
        topic: TopicId,
        origin: NodeId,
        remaining: u32,
        hops: u32,
    ) {
        // Am I a member? Then the walk found its group.
        if self.member_of.contains(&topic) {
            ctx.send(
                origin,
                SubWalkMsg::Ack {
                    purpose,
                    topic,
                    terminus: self.id,
                    found: true,
                    hops,
                },
            );
            return;
        }
        if remaining == 0 {
            ctx.send(
                origin,
                SubWalkMsg::Ack {
                    purpose,
                    topic,
                    terminus: self.id,
                    found: false,
                    hops,
                },
            );
            return;
        }
        // Relay: this is the maintenance work the paper talks about.
        *self.relayed.entry(topic).or_insert(0) += 1;
        self.ledger.record_maintenance();
        if self.config.accounting == WalkAccounting::Compensated {
            self.ledger.record_maintenance_credit();
        }
        let next = self.sampler.sample_peers(ctx.rng(), 1).into_iter().next();
        match next {
            Some(peer) => ctx.send(
                peer,
                SubWalkMsg::Walk {
                    purpose,
                    topic,
                    origin,
                    remaining: remaining - 1,
                    hops: hops + 1,
                },
            ),
            None => ctx.send(
                origin,
                SubWalkMsg::Ack {
                    purpose,
                    topic,
                    terminus: self.id,
                    found: false,
                    hops,
                },
            ),
        }
    }
}

impl Protocol for SubWalkNode {
    type Msg = SubWalkMsg;
    type Cmd = SubWalkCmd;

    fn on_init(&mut self, _ctx: &mut Context<'_, SubWalkMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, SubWalkMsg>, _from: NodeId, msg: SubWalkMsg) {
        match msg {
            SubWalkMsg::Walk {
                purpose,
                topic,
                origin,
                remaining,
                hops,
            } => self.forward_or_finish(ctx, purpose, topic, origin, remaining, hops),
            SubWalkMsg::Ack {
                purpose,
                topic,
                found,
                hops,
                ..
            } => {
                self.outcomes.push(WalkOutcome { topic, hops, found });
                if found && purpose == WalkPurpose::Subscribe {
                    self.member_of.insert(topic);
                    self.ledger.set_active_filters(self.member_of.len() as u32);
                }
                if self.config.accounting == WalkAccounting::Compensated {
                    // Bill the subscriber for the relay path it consumed.
                    self.ledger.record_maintenance_bulk(hops as u64);
                }
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, SubWalkMsg>, _token: u64) {}

    fn on_command(&mut self, ctx: &mut Context<'_, SubWalkMsg>, cmd: SubWalkCmd) {
        match cmd {
            SubWalkCmd::Subscribe(topic) => {
                if self.member_of.contains(&topic) {
                    return;
                }
                self.start_walk(ctx, WalkPurpose::Subscribe, topic);
            }
            SubWalkCmd::Unsubscribe(topic) => {
                if !self.member_of.remove(&topic) {
                    return;
                }
                self.ledger.set_active_filters(self.member_of.len() as u32);
                // Inform a remaining member: same walk mechanics.
                self.start_walk(ctx, WalkPurpose::Unsubscribe, topic);
            }
        }
    }

    fn message_size(msg: &SubWalkMsg) -> usize {
        match msg {
            SubWalkMsg::Walk { .. } => 24,
            SubWalkMsg::Ack { .. } => 20,
        }
    }
}

impl SubWalkNode {
    fn start_walk(
        &mut self,
        ctx: &mut Context<'_, SubWalkMsg>,
        purpose: WalkPurpose,
        topic: TopicId,
    ) {
        let origin = self.id;
        match self.sampler.sample_peers(ctx.rng(), 1).into_iter().next() {
            Some(peer) => ctx.send(
                peer,
                SubWalkMsg::Walk {
                    purpose,
                    topic,
                    origin,
                    remaining: self.config.walk_budget,
                    hops: 1,
                },
            ),
            None => self.outcomes.push(WalkOutcome {
                topic,
                hops: 0,
                found: false,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_sim::network::{LatencyModel, NetworkModel};
    use fed_sim::{SimDuration, SimTime, Simulation};

    fn net() -> NetworkModel {
        NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(5)))
    }

    /// n nodes; nodes 0..m are members of topic 0.
    fn sim_with_members(
        n: usize,
        members: usize,
        accounting: WalkAccounting,
    ) -> Simulation<SubWalkNode> {
        let config = SubWalkConfig {
            walk_budget: 128,
            accounting,
        };
        Simulation::new(n, net(), 99, move |id, _| {
            let initial = if id.index() < members {
                vec![TopicId::new(0)]
            } else {
                vec![]
            };
            SubWalkNode::new(id, n, config, initial)
        })
    }

    #[test]
    fn walk_finds_popular_group_quickly() {
        let mut sim = sim_with_members(64, 32, WalkAccounting::Uncompensated);
        let sub = NodeId::new(60);
        sim.schedule_command(SimTime::ZERO, sub, SubWalkCmd::Subscribe(TopicId::new(0)));
        sim.run_until(SimTime::from_secs(10));
        let node = sim.node(sub).unwrap();
        assert_eq!(node.outcomes().len(), 1);
        let o = node.outcomes()[0];
        assert!(o.found, "half the system is a member");
        assert!(o.hops <= 16, "found in {} hops", o.hops);
        assert!(node.memberships().contains(&TopicId::new(0)));
        assert_eq!(node.ledger().active_filters(), 1);
    }

    #[test]
    fn rare_topic_needs_longer_walks() {
        let mut fast_hops = Vec::new();
        let mut slow_hops = Vec::new();
        for seed_shift in 0..5u32 {
            let mut popular = sim_with_members(128, 64, WalkAccounting::Uncompensated);
            let mut rare = sim_with_members(128, 2, WalkAccounting::Uncompensated);
            let sub = NodeId::new(100 + seed_shift);
            popular.schedule_command(SimTime::ZERO, sub, SubWalkCmd::Subscribe(TopicId::new(0)));
            rare.schedule_command(SimTime::ZERO, sub, SubWalkCmd::Subscribe(TopicId::new(0)));
            popular.run_until(SimTime::from_secs(30));
            rare.run_until(SimTime::from_secs(30));
            fast_hops.push(popular.node(sub).unwrap().outcomes()[0].hops);
            slow_hops.push(rare.node(sub).unwrap().outcomes()[0].hops);
        }
        let fast: u32 = fast_hops.iter().sum();
        let slow: u32 = slow_hops.iter().sum();
        assert!(
            slow > fast,
            "rare topics must need more relay work ({slow} vs {fast})"
        );
    }

    #[test]
    fn walk_exhausts_budget_when_no_member_exists() {
        let config = SubWalkConfig {
            walk_budget: 10,
            accounting: WalkAccounting::Uncompensated,
        };
        let mut sim: Simulation<SubWalkNode> = Simulation::new(16, net(), 5, move |id, _| {
            SubWalkNode::new(id, 16, config, vec![])
        });
        let sub = NodeId::new(3);
        sim.schedule_command(SimTime::ZERO, sub, SubWalkCmd::Subscribe(TopicId::new(9)));
        sim.run_until(SimTime::from_secs(10));
        let node = sim.node(sub).unwrap();
        assert_eq!(node.outcomes().len(), 1);
        assert!(!node.outcomes()[0].found);
        assert!(!node.memberships().contains(&TopicId::new(9)));
    }

    #[test]
    fn uncompensated_relays_carry_cost() {
        let mut sim = sim_with_members(64, 2, WalkAccounting::Uncompensated);
        for s in 10..30u32 {
            sim.schedule_command(
                SimTime::from_millis(s as u64 * 10),
                NodeId::new(s),
                SubWalkCmd::Subscribe(TopicId::new(0)),
            );
        }
        sim.run_until(SimTime::from_secs(30));
        // Relays performed maintenance without credits: some non-member,
        // non-subscriber node must have positive contribution, zero benefit.
        let spec = crate::ledger::RatioSpec::topic_based();
        let unlucky = sim
            .nodes()
            .filter(|(id, _)| id.index() >= 30)
            .filter(|(_, p)| p.ledger().contribution(&spec) > 0.0)
            .count();
        assert!(unlucky > 0, "someone relayed");
        for (id, p) in sim.nodes() {
            if id.index() >= 30 {
                assert_eq!(p.ledger().benefit(&spec), 0.0, "{id} got no credit");
            }
        }
    }

    #[test]
    fn compensated_relays_keep_unit_ratio() {
        let mut sim = sim_with_members(64, 2, WalkAccounting::Compensated);
        for s in 10..30u32 {
            sim.schedule_command(
                SimTime::from_millis(s as u64 * 10),
                NodeId::new(s),
                SubWalkCmd::Subscribe(TopicId::new(0)),
            );
        }
        sim.run_until(SimTime::from_secs(30));
        let spec = crate::ledger::RatioSpec::topic_based();
        for (id, p) in sim.nodes() {
            if id.index() >= 30 && p.total_relayed() > 0 {
                let contribution = p.ledger().contribution(&spec);
                let benefit = p.ledger().benefit(&spec);
                assert_eq!(contribution, benefit, "{id} relay fully compensated");
            }
        }
        // And subscribers were billed.
        let billed = sim
            .nodes()
            .filter(|(id, _)| (10..30).contains(&id.index()))
            .any(|(_, p)| p.ledger().totals().maintenance_msgs > 0);
        assert!(billed, "subscribers pay for their walks");
    }

    #[test]
    fn unsubscribe_leaves_group_and_walks() {
        let mut sim = sim_with_members(32, 8, WalkAccounting::Uncompensated);
        let member = NodeId::new(2);
        sim.schedule_command(
            SimTime::ZERO,
            member,
            SubWalkCmd::Unsubscribe(TopicId::new(0)),
        );
        sim.run_until(SimTime::from_secs(10));
        let node = sim.node(member).unwrap();
        assert!(!node.memberships().contains(&TopicId::new(0)));
        assert_eq!(node.outcomes().len(), 1, "unsubscription walk completed");
        // Unsubscribing twice is a no-op.
        sim.schedule_command(
            SimTime::from_secs(11),
            member,
            SubWalkCmd::Unsubscribe(TopicId::new(0)),
        );
        sim.run_until(SimTime::from_secs(20));
        assert_eq!(sim.node(member).unwrap().outcomes().len(), 1);
    }

    #[test]
    fn duplicate_subscribe_is_noop() {
        let mut sim = sim_with_members(32, 8, WalkAccounting::Uncompensated);
        let member = NodeId::new(0); // already a member
        sim.schedule_command(
            SimTime::ZERO,
            member,
            SubWalkCmd::Subscribe(TopicId::new(0)),
        );
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.node(member).unwrap().outcomes().is_empty());
    }
}
