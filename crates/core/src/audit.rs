//! Receipt-based contribution audits (paper §5.2, question 6).
//!
//! "Can we ensure that a peer does not artificially grow its contribution
//! by biasing the selection of peers … or the selection of events?" Our
//! answer: contribution claims are *checkable*, because every claimed
//! forwarded message has a receiver. A committee of `k` random witnesses
//! reports how many gossip messages it received from the audited subject
//! over a known window; since an honest sender spreads its traffic
//! uniformly (that is what unbiased `SELECTPARTICIPANTS` means), each
//! witness expects `claimed_rate / (n-1)` receipts per round. Summing over
//! the committee gives an estimator of the subject's true send rate whose
//! error shrinks as `1/√(evidence)`; a claim outside the tolerance band is
//! flagged.
//!
//! The committee logic is pure (no protocol messages in this module): the
//! gossip node already tracks per-sender receipt counters and last claims,
//! and the experiment driver — standing in for an in-protocol audit round —
//! samples witnesses and calls [`audit_subject`].

use fed_sim::NodeId;
use std::fmt;

/// Tuning of the audit decision rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditConfig {
    /// Minimum total receipts across the committee before a verdict is
    /// allowed (protects against flagging on noise).
    pub min_evidence: u64,
    /// Acceptable multiplicative deviation: a claim is consistent when
    /// `estimate / (1 + tolerance) <= claim <= estimate * (1 + tolerance)`.
    pub tolerance: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            min_evidence: 10,
            tolerance: 0.7,
        }
    }
}

/// One witness's evidence about a subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessReport {
    /// Gossip messages received from the subject.
    pub messages: u64,
    /// Rounds the witness has been counting.
    pub rounds: u64,
}

/// Possible audit outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditOutcome {
    /// Claim within tolerance of the estimate.
    Consistent,
    /// Subject claims more contribution than witnessed (an
    /// [`crate::behavior::Behavior::Inflator`]).
    OverClaimed,
    /// Subject contributes more than claimed (altruist or misconfigured;
    /// not punished but reported).
    UnderClaimed,
    /// Not enough receipts to judge.
    InsufficientEvidence,
}

/// The result of auditing one subject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditVerdict {
    /// Who was audited.
    pub subject: NodeId,
    /// Estimated true send rate (messages per round).
    pub estimated_rate: f64,
    /// The subject's claimed contribution rate (messages per round).
    pub claimed_rate: f64,
    /// Decision.
    pub outcome: AuditOutcome,
    /// Total receipts backing the estimate.
    pub evidence: u64,
}

impl fmt::Display for AuditVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit({}: claimed {:.2}/round, estimated {:.2}/round, {:?}, evidence {})",
            self.subject, self.claimed_rate, self.estimated_rate, self.outcome, self.evidence
        )
    }
}

/// Audits `subject` given committee evidence.
///
/// `system_size` is the total population `n`; each witness sees a fraction
/// `1 / (n-1)` of the subject's uniform traffic.
///
/// # Panics
///
/// Panics if `system_size < 2` (auditing needs at least one other node).
pub fn audit_subject(
    subject: NodeId,
    claimed_rate: f64,
    witnesses: &[WitnessReport],
    system_size: usize,
    config: &AuditConfig,
) -> AuditVerdict {
    assert!(system_size >= 2, "audit requires at least two nodes");
    let total_msgs: u64 = witnesses.iter().map(|w| w.messages).sum();
    let total_rounds: u64 = witnesses.iter().map(|w| w.rounds).sum();
    if total_msgs < config.min_evidence || total_rounds == 0 {
        return AuditVerdict {
            subject,
            estimated_rate: 0.0,
            claimed_rate,
            outcome: AuditOutcome::InsufficientEvidence,
            evidence: total_msgs,
        };
    }
    // Receipt rate per witness-round, scaled to the full population.
    let per_witness_rate = total_msgs as f64 / total_rounds as f64;
    let estimated_rate = per_witness_rate * (system_size as f64 - 1.0);
    let upper = estimated_rate * (1.0 + config.tolerance);
    let lower = estimated_rate / (1.0 + config.tolerance);
    let outcome = if claimed_rate > upper {
        AuditOutcome::OverClaimed
    } else if claimed_rate < lower {
        AuditOutcome::UnderClaimed
    } else {
        AuditOutcome::Consistent
    };
    AuditVerdict {
        subject,
        estimated_rate,
        claimed_rate,
        outcome,
        evidence: total_msgs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn witness(messages: u64, rounds: u64) -> WitnessReport {
        WitnessReport { messages, rounds }
    }

    #[test]
    fn honest_claim_is_consistent() {
        // n = 101, claimed 10 msgs/round -> each witness sees 0.1/round.
        // 20 witnesses × 100 rounds -> expect 200 receipts.
        let witnesses = vec![witness(10, 100); 20];
        let v = audit_subject(
            NodeId::new(5),
            10.0,
            &witnesses,
            101,
            &AuditConfig::default(),
        );
        assert_eq!(v.outcome, AuditOutcome::Consistent);
        assert!((v.estimated_rate - 10.0).abs() < 1e-9);
        assert_eq!(v.evidence, 200);
    }

    #[test]
    fn inflator_is_over_claimed() {
        // True rate 2/round, claims 10/round.
        let witnesses = vec![witness(2, 100); 20];
        let v = audit_subject(
            NodeId::new(5),
            10.0,
            &witnesses,
            101,
            &AuditConfig::default(),
        );
        assert_eq!(v.outcome, AuditOutcome::OverClaimed);
        assert!((v.estimated_rate - 2.0).abs() < 1e-9);
    }

    #[test]
    fn altruist_is_under_claimed() {
        let witnesses = vec![witness(10, 100); 20];
        let v = audit_subject(
            NodeId::new(5),
            1.0,
            &witnesses,
            101,
            &AuditConfig::default(),
        );
        assert_eq!(v.outcome, AuditOutcome::UnderClaimed);
    }

    #[test]
    fn sparse_evidence_withholds_judgement() {
        let witnesses = vec![witness(1, 100); 3];
        let v = audit_subject(
            NodeId::new(5),
            50.0,
            &witnesses,
            101,
            &AuditConfig::default(),
        );
        assert_eq!(v.outcome, AuditOutcome::InsufficientEvidence);
        let empty = audit_subject(NodeId::new(5), 0.0, &[], 101, &AuditConfig::default());
        assert_eq!(empty.outcome, AuditOutcome::InsufficientEvidence);
    }

    #[test]
    fn tolerance_band_is_two_sided() {
        let cfg = AuditConfig {
            min_evidence: 1,
            tolerance: 0.5,
        };
        let witnesses = vec![witness(100, 100); 10]; // est = 100 * (n-1=10)/10 … let's compute
                                                     // per witness rate = 1.0/round; n=11 -> estimate 10/round.
        let ok_hi = audit_subject(NodeId::new(1), 14.9, &witnesses, 11, &cfg);
        assert_eq!(ok_hi.outcome, AuditOutcome::Consistent);
        let bad_hi = audit_subject(NodeId::new(1), 15.1, &witnesses, 11, &cfg);
        assert_eq!(bad_hi.outcome, AuditOutcome::OverClaimed);
        let ok_lo = audit_subject(NodeId::new(1), 6.7, &witnesses, 11, &cfg);
        assert_eq!(ok_lo.outcome, AuditOutcome::Consistent);
        let bad_lo = audit_subject(NodeId::new(1), 6.5, &witnesses, 11, &cfg);
        assert_eq!(bad_lo.outcome, AuditOutcome::UnderClaimed);
    }

    #[test]
    fn noisy_witnesses_average_out() {
        // Heterogeneous windows and counts around a true rate of 5/round
        // with n = 51: per witness 0.1/round.
        let witnesses = vec![
            witness(12, 100),
            witness(8, 100),
            witness(11, 120),
            witness(5, 60),
            witness(9, 90),
        ];
        let v = audit_subject(NodeId::new(9), 5.0, &witnesses, 51, &AuditConfig::default());
        assert_eq!(v.outcome, AuditOutcome::Consistent, "{v}");
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_system_rejected() {
        let _ = audit_subject(NodeId::new(0), 1.0, &[], 1, &AuditConfig::default());
    }

    #[test]
    fn display_is_informative() {
        let v = audit_subject(
            NodeId::new(3),
            10.0,
            &[witness(100, 100)],
            11,
            &AuditConfig::default(),
        );
        let s = format!("{v}");
        assert!(s.contains("n3") && s.contains("claimed"), "{s}");
    }
}
