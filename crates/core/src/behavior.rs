//! Peer behaviour models: honest, selfish and lying peers.
//!
//! The paper motivates fairness with *selfish* participants: "users
//! repeatedly disconnect from the system because they feel treated
//! unfairly" (§1), and asks whether "a peer \[can\] artificially grow its
//! contribution by biasing the selection of peers … or the selection of
//! events" (§5.2 Q6). These models make both failure modes injectable:
//!
//! * [`Behavior::Aggrieved`] — leaves (the experiment crashes it) once its
//!   contribution/benefit ratio stays above a threshold (E-CHURN).
//! * [`Behavior::FreeRider`] — caps its own fanout below its fair share
//!   and under-reports its benefit so the allocation keeps favouring it
//!   (E-BIAS).
//! * [`Behavior::Inflator`] — over-reports its contribution to *appear*
//!   fair while doing little work (E-BIAS detection target).

use crate::adaptive::{Controller, RateSample};
use crate::ledger::{FairnessLedger, RatioSpec};

/// How a peer plays the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Behavior {
    /// Follows the protocol faithfully.
    #[default]
    Honest,
    /// Feels exploited above `ratio_threshold` and wants to leave.
    ///
    /// The node keeps following the protocol; the experiment driver polls
    /// [`Behavior::wants_to_leave`] and schedules the crash — matching the
    /// paper's model where users disconnect, the software does not
    /// misbehave.
    Aggrieved {
        /// Contribution/benefit ratio above which the user quits.
        ratio_threshold: f64,
        /// Grace period: rounds before the user starts judging.
        patience_rounds: u64,
    },
    /// Does less work than allocated and advertises a scaled-down benefit.
    FreeRider {
        /// Hard cap on the fanout the peer will use.
        fanout_cap: f64,
        /// Multiplier (< 1) applied to the advertised benefit rate.
        advertised_benefit_scale: f64,
    },
    /// Advertises a scaled-up contribution to look fairer than it is.
    Inflator {
        /// Multiplier (> 1) applied to the advertised contribution rate.
        advertised_contribution_scale: f64,
    },
}

impl Behavior {
    /// Transforms the node's true rates into what it advertises.
    pub fn advertise(&self, true_rates: RateSample) -> RateSample {
        match *self {
            Behavior::Honest | Behavior::Aggrieved { .. } => true_rates,
            Behavior::FreeRider {
                advertised_benefit_scale,
                ..
            } => {
                let k = advertised_benefit_scale.max(0.0);
                RateSample {
                    benefit_rate: true_rates.benefit_rate * k,
                    benefit_total: true_rates.benefit_total * k,
                    ..true_rates
                }
            }
            Behavior::Inflator {
                advertised_contribution_scale,
            } => {
                let k = advertised_contribution_scale.max(0.0);
                RateSample {
                    contribution_rate: true_rates.contribution_rate * k,
                    contribution_total: true_rates.contribution_total * k,
                    ..true_rates
                }
            }
        }
    }

    /// Applies behavioural overrides to the knob controllers after the
    /// honest update ran.
    pub fn shape_controllers(&self, fanout: &mut Controller, _msg_size: &mut Controller) {
        if let Behavior::FreeRider { fanout_cap, .. } = *self {
            if fanout.value() > fanout_cap {
                fanout.force(fanout_cap);
            }
        }
    }

    /// Whether an aggrieved user would quit given its ledger state.
    pub fn wants_to_leave(&self, ledger: &FairnessLedger, spec: &RatioSpec, rounds: u64) -> bool {
        match *self {
            Behavior::Aggrieved {
                ratio_threshold,
                patience_rounds,
            } => rounds >= patience_rounds && ledger.ratio(spec) > ratio_threshold,
            _ => false,
        }
    }

    /// True for any behaviour that lies in its piggyback (ground truth for
    /// detector evaluation).
    pub fn is_liar(&self) -> bool {
        matches!(self, Behavior::FreeRider { .. } | Behavior::Inflator { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::ControllerConfig;

    fn rates(b: f64, c: f64) -> RateSample {
        RateSample {
            benefit_rate: b,
            contribution_rate: c,
            benefit_total: b * 10.0,
            contribution_total: c * 10.0,
        }
    }

    #[test]
    fn honest_advertises_truth() {
        let r = rates(3.0, 5.0);
        assert_eq!(Behavior::Honest.advertise(r), r);
        assert!(!Behavior::Honest.is_liar());
    }

    #[test]
    fn free_rider_scales_benefit_down() {
        let b = Behavior::FreeRider {
            fanout_cap: 1.0,
            advertised_benefit_scale: 0.25,
        };
        let adv = b.advertise(rates(8.0, 2.0));
        assert_eq!(adv.benefit_rate, 2.0);
        assert_eq!(adv.benefit_total, 20.0);
        assert_eq!(adv.contribution_rate, 2.0);
        assert!(b.is_liar());
    }

    #[test]
    fn inflator_scales_contribution_up() {
        let b = Behavior::Inflator {
            advertised_contribution_scale: 4.0,
        };
        let adv = b.advertise(rates(1.0, 2.0));
        assert_eq!(adv.contribution_rate, 8.0);
        assert_eq!(adv.contribution_total, 80.0);
        assert_eq!(adv.benefit_rate, 1.0);
        assert!(b.is_liar());
    }

    #[test]
    fn free_rider_caps_fanout() {
        let b = Behavior::FreeRider {
            fanout_cap: 2.0,
            advertised_benefit_scale: 1.0,
        };
        let mut f = Controller::new(ControllerConfig::new(8.0, 1.0, 32.0, 1.0));
        let mut n = Controller::new(ControllerConfig::new(16.0, 1.0, 64.0, 1.0));
        f.update(100.0, 1.0); // drives fanout to the max
        b.shape_controllers(&mut f, &mut n);
        assert_eq!(f.value(), 2.0);
        assert_eq!(n.value(), 16.0, "message size untouched");
        // honest never shapes
        let mut f2 = Controller::new(ControllerConfig::new(8.0, 1.0, 32.0, 1.0));
        Behavior::Honest.shape_controllers(&mut f2, &mut n);
        assert_eq!(f2.value(), 8.0);
    }

    #[test]
    fn aggrieved_waits_for_patience_then_judges() {
        let b = Behavior::Aggrieved {
            ratio_threshold: 2.0,
            patience_rounds: 10,
        };
        let mut ledger = FairnessLedger::new();
        for _ in 0..10 {
            ledger.record_forward(100);
        }
        ledger.record_delivery();
        let spec = RatioSpec::topic_based();
        assert_eq!(ledger.ratio(&spec), 10.0);
        assert!(!b.wants_to_leave(&ledger, &spec, 5), "still patient");
        assert!(b.wants_to_leave(&ledger, &spec, 10), "ratio 10 > 2");
        // a fairly treated peer stays
        for _ in 0..20 {
            ledger.record_delivery();
        }
        assert!(!b.wants_to_leave(&ledger, &spec, 50));
        assert!(!b.is_liar());
    }

    #[test]
    fn negative_scales_clamped() {
        let b = Behavior::FreeRider {
            fanout_cap: 1.0,
            advertised_benefit_scale: -1.0,
        };
        assert_eq!(b.advertise(rates(4.0, 4.0)).benefit_rate, 0.0);
    }

    #[test]
    fn default_is_honest() {
        assert_eq!(Behavior::default(), Behavior::Honest);
    }
}
