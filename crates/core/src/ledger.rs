//! Fairness accounting: the paper's contribution/benefit ledger.
//!
//! Figure 1 defines fairness as every peer having the same
//! `contribution / benefit` ratio. Figures 2 and 3 instantiate the two
//! sides for the two selection models:
//!
//! * **Topic-based (Fig. 2)**: contribution = messages *published* +
//!   *forwarded*; benefit = interesting messages *delivered* + number of
//!   *filters* (subscriptions) placed.
//! * **Expressive (Fig. 3)**: contribution = `fanout × message size`
//!   (i.e. bytes forwarded); benefit = messages delivered.
//!
//! [`FairnessLedger`] tracks all four primitive counters, both as lifetime
//! totals and over rolling windows (the adaptive controllers react to
//! windowed *rates*, not lifetime sums — the paper: "a measure for benefit
//! would be the number of delivered events within a predefined time
//! period", §5.2).

use std::fmt;

/// Which quantity counts as contribution (paper Fig. 2 vs Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContributionMetric {
    /// Count forwarded/published messages (topic-based accounting, Fig. 2).
    #[default]
    Messages,
    /// Count forwarded/published bytes (expressive accounting: fanout ×
    /// message size, Fig. 3).
    Bytes,
}

/// Parameters of the ratio computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioSpec {
    /// Contribution metric.
    pub metric: ContributionMetric,
    /// Weight of one active filter in the benefit (Fig. 2 adds `#filters`
    /// to the benefit; Fig. 3 uses 0).
    pub filter_weight: f64,
    /// Benefit floor protecting the ratio against division by zero for
    /// peers that delivered nothing.
    pub epsilon: f64,
}

impl RatioSpec {
    /// Topic-based accounting per Figure 2 (`filter_weight = 1`).
    pub fn topic_based() -> Self {
        RatioSpec {
            metric: ContributionMetric::Messages,
            filter_weight: 1.0,
            epsilon: 1.0,
        }
    }

    /// Expressive accounting per Figure 3 (bytes, deliveries only).
    pub fn expressive() -> Self {
        RatioSpec {
            metric: ContributionMetric::Bytes,
            filter_weight: 0.0,
            epsilon: 1.0,
        }
    }
}

impl Default for RatioSpec {
    fn default() -> Self {
        RatioSpec::topic_based()
    }
}

/// One accounting window's worth of counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Messages this peer originated (publish operations sent out).
    pub published_msgs: u64,
    /// Bytes of originated messages.
    pub published_bytes: u64,
    /// Messages forwarded on behalf of the system (gossip sends).
    pub forwarded_msgs: u64,
    /// Bytes forwarded.
    pub forwarded_bytes: u64,
    /// Interesting events delivered to the application.
    pub delivered_events: u64,
    /// Messages relayed for infrastructure maintenance (subscription
    /// routing, view shuffles) — the paper counts "infrastructure messages"
    /// in the contribution too (§2).
    pub maintenance_msgs: u64,
    /// Benefit credits granted for maintenance work performed on behalf of
    /// others (the compensation mechanism of §5.1: relays of subscription
    /// traffic should not see their ratio degrade).
    pub maintenance_credits: u64,
}

impl Counters {
    fn contribution(&self, metric: ContributionMetric) -> f64 {
        match metric {
            ContributionMetric::Messages => {
                (self.published_msgs + self.forwarded_msgs + self.maintenance_msgs) as f64
            }
            ContributionMetric::Bytes => (self.published_bytes + self.forwarded_bytes) as f64,
        }
    }
}

/// Per-peer fairness ledger: lifetime totals plus a rolling window.
///
/// # Examples
///
/// ```
/// use fed_core::ledger::{FairnessLedger, RatioSpec};
///
/// let mut ledger = FairnessLedger::new();
/// ledger.record_forward(512);
/// ledger.record_delivery();
/// ledger.set_active_filters(2);
/// let spec = RatioSpec::topic_based();
/// // contribution 1 message; benefit 1 delivery + 2 filters = 3
/// assert!((ledger.ratio(&spec) - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FairnessLedger {
    total: Counters,
    window: Counters,
    completed_window: Counters,
    active_filters: u32,
    windows_rolled: u64,
}

impl FairnessLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        FairnessLedger::default()
    }

    /// Records one originated (published) message of `bytes`.
    pub fn record_publish(&mut self, bytes: usize) {
        self.total.published_msgs += 1;
        self.total.published_bytes += bytes as u64;
        self.window.published_msgs += 1;
        self.window.published_bytes += bytes as u64;
    }

    /// Records one forwarded gossip message of `bytes`.
    pub fn record_forward(&mut self, bytes: usize) {
        self.total.forwarded_msgs += 1;
        self.total.forwarded_bytes += bytes as u64;
        self.window.forwarded_msgs += 1;
        self.window.forwarded_bytes += bytes as u64;
    }

    /// Records one relayed maintenance message (subscription routing etc.).
    pub fn record_maintenance(&mut self) {
        self.total.maintenance_msgs += 1;
        self.window.maintenance_msgs += 1;
    }

    /// Records `n` units of maintenance contribution at once (e.g. billing
    /// a subscriber for the full relay path of its subscription walk).
    pub fn record_maintenance_bulk(&mut self, n: u64) {
        self.total.maintenance_msgs += n;
        self.window.maintenance_msgs += n;
    }

    /// Grants one benefit credit compensating maintenance work.
    pub fn record_maintenance_credit(&mut self) {
        self.total.maintenance_credits += 1;
        self.window.maintenance_credits += 1;
    }

    /// Records delivery of one interesting event.
    pub fn record_delivery(&mut self) {
        self.total.delivered_events += 1;
        self.window.delivered_events += 1;
    }

    /// Updates the number of currently active filters/subscriptions.
    pub fn set_active_filters(&mut self, n: u32) {
        self.active_filters = n;
    }

    /// Currently active filters.
    pub fn active_filters(&self) -> u32 {
        self.active_filters
    }

    /// Folds another ledger's counters into this one.
    ///
    /// Used by composite architectures whose node runs two protocol
    /// stacks at once (e.g. the broker/gossip hybrid): message counters
    /// add, while `active_filters` takes the maximum — both stacks
    /// mirror the same application subscriptions, so adding would
    /// double-count the node's benefit.
    pub fn absorb(&mut self, other: &FairnessLedger) {
        fn add(a: &mut Counters, b: &Counters) {
            a.published_msgs += b.published_msgs;
            a.published_bytes += b.published_bytes;
            a.forwarded_msgs += b.forwarded_msgs;
            a.forwarded_bytes += b.forwarded_bytes;
            a.delivered_events += b.delivered_events;
            a.maintenance_msgs += b.maintenance_msgs;
            a.maintenance_credits += b.maintenance_credits;
        }
        add(&mut self.total, &other.total);
        add(&mut self.window, &other.window);
        add(&mut self.completed_window, &other.completed_window);
        self.active_filters = self.active_filters.max(other.active_filters);
        self.windows_rolled = self.windows_rolled.max(other.windows_rolled);
    }

    /// Closes the current window: its counters become the *completed*
    /// window that rate queries read, and a fresh window starts.
    pub fn roll_window(&mut self) {
        self.completed_window = self.window;
        self.window = Counters::default();
        self.windows_rolled += 1;
    }

    /// Number of completed windows.
    pub fn windows_rolled(&self) -> u64 {
        self.windows_rolled
    }

    /// Lifetime counters.
    pub fn totals(&self) -> &Counters {
        &self.total
    }

    /// The last completed window's counters.
    pub fn last_window(&self) -> &Counters {
        &self.completed_window
    }

    /// Lifetime contribution under `spec` (the numerator of Figs. 1–3).
    pub fn contribution(&self, spec: &RatioSpec) -> f64 {
        self.total.contribution(spec.metric)
    }

    /// Lifetime benefit under `spec` (the denominator of Figs. 1–3, plus
    /// maintenance credits when the compensation mechanism is active).
    pub fn benefit(&self, spec: &RatioSpec) -> f64 {
        self.total.delivered_events as f64
            + self.total.maintenance_credits as f64
            + spec.filter_weight * self.active_filters as f64
    }

    /// Lifetime contribution/benefit ratio with the spec's epsilon floor.
    pub fn ratio(&self, spec: &RatioSpec) -> f64 {
        self.contribution(spec) / self.benefit(spec).max(spec.epsilon)
    }

    /// Contribution accumulated in the last completed window.
    pub fn window_contribution(&self, spec: &RatioSpec) -> f64 {
        self.completed_window.contribution(spec.metric)
    }

    /// Benefit accumulated in the last completed window.
    pub fn window_benefit(&self, spec: &RatioSpec) -> f64 {
        self.completed_window.delivered_events as f64
            + self.completed_window.maintenance_credits as f64
            + spec.filter_weight * self.active_filters as f64
    }
}

impl fmt::Display for FairnessLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ledger(pub={}, fwd={}, maint={}, del={}, filters={})",
            self.total.published_msgs,
            self.total.forwarded_msgs,
            self.total.maintenance_msgs,
            self.total.delivered_events,
            self.active_filters
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_ratio_is_zero() {
        let ledger = FairnessLedger::new();
        let spec = RatioSpec::topic_based();
        assert_eq!(ledger.contribution(&spec), 0.0);
        assert_eq!(ledger.benefit(&spec), 0.0);
        assert_eq!(ledger.ratio(&spec), 0.0, "0 / max(0, eps) = 0");
    }

    #[test]
    fn topic_based_accounting_matches_fig2() {
        // Fig 2: contribution = #published + #forwarded;
        //        benefit = #delivered + #filters.
        let mut l = FairnessLedger::new();
        l.record_publish(100);
        l.record_forward(200);
        l.record_forward(200);
        l.record_delivery();
        l.record_delivery();
        l.record_delivery();
        l.set_active_filters(2);
        let spec = RatioSpec::topic_based();
        assert_eq!(l.contribution(&spec), 3.0);
        assert_eq!(l.benefit(&spec), 5.0);
        assert!((l.ratio(&spec) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn expressive_accounting_matches_fig3() {
        // Fig 3: contribution = bytes forwarded (fanout × msg size);
        //        benefit = #delivered.
        let mut l = FairnessLedger::new();
        l.record_forward(300);
        l.record_forward(300);
        l.record_delivery();
        l.set_active_filters(7); // must not affect expressive benefit
        let spec = RatioSpec::expressive();
        assert_eq!(l.contribution(&spec), 600.0);
        assert_eq!(l.benefit(&spec), 1.0);
        assert_eq!(l.ratio(&spec), 600.0);
    }

    #[test]
    fn maintenance_counts_in_message_contribution_only() {
        let mut l = FairnessLedger::new();
        l.record_maintenance();
        assert_eq!(l.contribution(&RatioSpec::topic_based()), 1.0);
        assert_eq!(l.contribution(&RatioSpec::expressive()), 0.0);
        l.record_maintenance_bulk(4);
        assert_eq!(l.contribution(&RatioSpec::topic_based()), 5.0);
    }

    #[test]
    fn maintenance_credit_compensates_ratio() {
        // A relay doing pure maintenance work: without credits its ratio
        // explodes; with one credit per relayed message it stays at 1.
        let mut l = FairnessLedger::new();
        for _ in 0..10 {
            l.record_maintenance();
            l.record_maintenance_credit();
        }
        let spec = RatioSpec::topic_based();
        assert_eq!(l.contribution(&spec), 10.0);
        assert_eq!(l.benefit(&spec), 10.0);
        assert_eq!(l.ratio(&spec), 1.0);
        l.roll_window();
        assert_eq!(l.window_benefit(&spec), 10.0);
    }

    #[test]
    fn epsilon_floors_zero_benefit() {
        let mut l = FairnessLedger::new();
        l.record_forward(10);
        let spec = RatioSpec {
            epsilon: 0.5,
            ..RatioSpec::expressive()
        };
        assert_eq!(l.ratio(&spec), 10.0 / 0.5);
    }

    #[test]
    fn window_roll_snapshots_and_resets() {
        let mut l = FairnessLedger::new();
        l.record_forward(10);
        l.record_delivery();
        let spec = RatioSpec::expressive();
        assert_eq!(l.window_contribution(&spec), 0.0, "window not closed yet");
        l.roll_window();
        assert_eq!(l.window_contribution(&spec), 10.0);
        assert_eq!(l.window_benefit(&spec), 1.0);
        assert_eq!(l.windows_rolled(), 1);
        l.roll_window();
        assert_eq!(l.window_contribution(&spec), 0.0, "fresh empty window");
        // lifetime totals survive rolling
        assert_eq!(l.contribution(&spec), 10.0);
    }

    #[test]
    fn filters_count_in_window_benefit() {
        let mut l = FairnessLedger::new();
        l.set_active_filters(3);
        l.roll_window();
        let spec = RatioSpec::topic_based();
        assert_eq!(l.window_benefit(&spec), 3.0);
        assert_eq!(l.window_benefit(&RatioSpec::expressive()), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let mut l = FairnessLedger::new();
        l.record_publish(1);
        l.set_active_filters(4);
        let s = format!("{l}");
        assert!(s.contains("pub=1") && s.contains("filters=4"), "{s}");
    }

    #[test]
    fn spec_presets() {
        let t = RatioSpec::topic_based();
        assert_eq!(t.metric, ContributionMetric::Messages);
        assert_eq!(t.filter_weight, 1.0);
        let e = RatioSpec::expressive();
        assert_eq!(e.metric, ContributionMetric::Bytes);
        assert_eq!(e.filter_weight, 0.0);
        assert_eq!(RatioSpec::default(), RatioSpec::topic_based());
    }
}
