//! The push gossip dissemination protocol — basic (paper Figure 4) and
//! fairness-adaptive (paper §5.2) in one implementation.
//!
//! Every `period` the node runs a **round**:
//!
//! 1. close the ledger window and update its own benefit/contribution rate
//!    estimates;
//! 2. if adaptation is enabled, update the fanout / message-size
//!    controllers from the gossip-aggregated population mean;
//! 3. pick `F` partners via `SELECTPARTICIPANTS` (a
//!    [`PeerSampler`]), select up to `N` buffered events via
//!    `SELECTEVENTS`, and push one gossip message to each partner.
//!
//! On receipt, an event is delivered iff `ISINTERESTED(e)` — the node's
//! [`SubscriptionTable`] — and not yet delivered; *all* fresh events are
//! buffered and re-forwarded for `ttl_rounds` rounds regardless of local
//! interest. That unconditional forwarding is exactly the unfairness the
//! paper identifies: with a static fanout, an uninterested peer works as
//! hard as a heavy consumer. The adaptive controllers redistribute that
//! work in proportion to measured benefit.

use crate::adaptive::{Controller, ControllerConfig, GlobalRateEstimator, RateSample};
use crate::behavior::Behavior;
use crate::ledger::{FairnessLedger, RatioSpec};
use fed_membership::swim::{SwimConfig, SwimMsg, SwimObservation, SwimState, SwimUpdate};
use fed_membership::PeerSampler;
use fed_pubsub::{Event, EventId, Filter, SubscriptionTable, TopicId};
use fed_sim::{Context, HopKind, NodeId, Protocol, SimDuration, SimTime};
use fed_util::rng::Rng64;
use std::collections::{HashMap, HashSet};

/// Timer token for the periodic gossip round.
const ROUND_TIMER: u64 = 1;
/// Timer token for the SWIM protocol period.
const SWIM_TICK_TIMER: u64 = 2;
/// Token namespace for SWIM direct-probe timeouts; low bits carry the
/// probe sequence number.
const SWIM_DIRECT_NS: u64 = 3 << 56;
/// Token namespace for SWIM indirect-probe timeouts.
const SWIM_INDIRECT_NS: u64 = 4 << 56;
/// Mask isolating a token's namespace.
const TOKEN_NS_MASK: u64 = 0xff << 56;

/// Configuration of a [`GossipNode`].
#[derive(Debug, Clone, PartialEq)]
pub struct GossipConfig {
    /// Gossip round period.
    pub period: SimDuration,
    /// Fanout controller bounds/target (`target_mean` is the static fanout
    /// when adaptation is off).
    pub fanout: ControllerConfig,
    /// Events-per-message controller bounds/target.
    pub events_per_msg: ControllerConfig,
    /// Adapt the fanout to the benefit share (paper §5.2, Figure 3 left)?
    pub adapt_fanout: bool,
    /// Adapt the message size to the benefit share (Figure 3 right)?
    pub adapt_msg_size: bool,
    /// Rounds an event remains in the forwarding buffer.
    pub ttl_rounds: u32,
    /// Accounting rules for the fairness ratio.
    pub spec: RatioSpec,
    /// Smoothing for the population-mean estimator.
    pub estimator_alpha: f64,
    /// Smoothing for the node's own rate estimate.
    pub own_rate_alpha: f64,
    /// Gain of the lifetime-ratio correction term (0 disables it). With a
    /// positive gain, a peer whose lifetime contribution exceeds
    /// `κ̂ × lifetime benefit` throttles its fanout below the proportional
    /// share (and vice versa), driving the paper's Figure 1 ratio — which
    /// is defined over *totals* — toward equality.
    pub ratio_correction_gain: f64,
    /// Civic-minimum relay rate: a peer whose allocation rounds to zero
    /// still relays buffered events with this per-round probability. This
    /// is the floor that keeps the epidemic alive when an event's initial
    /// seeds all land on zero-benefit peers (robustness, §5.2 Q5).
    pub min_relay_rate: f64,
    /// Lifetime cap on civic-minimum work: civic relaying stops once the
    /// peer's contribution exceeds `κ̂ × benefit + civic_allowance`
    /// messages. This bounds the snapshot-ratio distortion a zero-benefit
    /// peer can accumulate to a constant, instead of letting it grow with
    /// stream length.
    pub civic_allowance: f64,
    /// Optional in-protocol SWIM failure detection. When set, the node
    /// runs probe/ping-req/suspect/confirm rounds beside its gossip
    /// rounds and piggybacks membership updates on gossip pushes.
    pub swim: Option<SwimConfig>,
}

impl GossipConfig {
    /// The classic static protocol of Figure 4: fixed fanout `f`, fixed
    /// message size `n_events`, no adaptation.
    pub fn classic(f: usize, n_events: usize, period: SimDuration) -> Self {
        GossipConfig {
            period,
            fanout: ControllerConfig::new(f as f64, f as f64, f as f64, 1.0),
            events_per_msg: ControllerConfig::new(
                n_events as f64,
                n_events as f64,
                n_events as f64,
                1.0,
            ),
            adapt_fanout: false,
            adapt_msg_size: false,
            ttl_rounds: 8,
            spec: RatioSpec::topic_based(),
            estimator_alpha: 0.05,
            own_rate_alpha: 0.2,
            ratio_correction_gain: 0.0,
            min_relay_rate: 0.0,
            civic_allowance: 0.0,
            swim: None,
        }
    }

    /// The fair protocol: same mean work, redistributed by benefit share.
    ///
    /// `f` and `n_events` become *population means*; individual nodes move
    /// inside `[1, 4f]` and `[1, 4n]` respectively.
    pub fn fair(f: usize, n_events: usize, period: SimDuration) -> Self {
        GossipConfig {
            period,
            // Zero floor + stochastic rounding: a peer whose fair share is
            // zero stops forwarding entirely; the benefit-weighted majority
            // carries the epidemic (paper §5.2 Q3 — the fanout requirement
            // is on the population sum, not on each individual peer).
            fanout: ControllerConfig::new(f as f64, 0.0, 4.0 * f as f64, 0.5),
            events_per_msg: ControllerConfig::new(n_events as f64, 1.0, 4.0 * n_events as f64, 0.5),
            adapt_fanout: true,
            adapt_msg_size: false,
            ttl_rounds: 8,
            spec: RatioSpec::topic_based(),
            estimator_alpha: 0.05,
            own_rate_alpha: 0.2,
            ratio_correction_gain: 0.05,
            min_relay_rate: 0.25,
            civic_allowance: 2.0 * f as f64,
            swim: None,
        }
    }

    /// Enables the SWIM failure detector (builder style).
    pub fn with_swim(mut self, swim: SwimConfig) -> Self {
        self.swim = Some(swim);
        self
    }

    /// Fair protocol adapting both knobs with expressive (byte) accounting
    /// — the full Figure 3 configuration.
    pub fn fair_expressive(f: usize, n_events: usize, period: SimDuration) -> Self {
        let mut cfg = Self::fair(f, n_events, period);
        cfg.adapt_msg_size = true;
        cfg.spec = RatioSpec::expressive();
        cfg
    }
}

/// External commands injected by applications / experiment drivers.
#[derive(Debug, Clone)]
pub enum GossipCmd {
    /// Publish an event into the system at this node.
    Publish(Event),
    /// Add a topic subscription.
    SubscribeTopic(TopicId),
    /// Add a content subscription.
    SubscribeContent(Filter),
    /// Drop every active subscription.
    ClearSubscriptions,
}

/// Wire messages.
#[derive(Debug, Clone)]
pub enum GossipMsg {
    /// A gossip push: events plus the fairness piggyback.
    Push {
        /// Batch of events.
        events: Vec<Event>,
        /// Sender's advertised windowed rates (see
        /// [`crate::adaptive`]).
        sample: RateSample,
        /// SWIM membership updates piggybacked on dissemination traffic
        /// (empty when the detector is off).
        swim: Vec<SwimUpdate>,
    },
    /// SWIM failure-detector traffic (probes, relays, acks).
    Swim(SwimMsg),
}

/// Where one delivery came from, with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// When the event was delivered at this node.
    pub at: SimTime,
    /// Gossip hop count is not tracked per-event (events travel in
    /// batches); rounds since node start serves as the latency proxy.
    pub round: u64,
}

/// One buffered event with its remaining forwarding budget.
#[derive(Debug, Clone)]
struct Buffered {
    event: Event,
    ttl: u32,
}

/// A push-gossip dissemination node (Figure 4 + §5.2 adaptation).
///
/// Generic over the peer sampling strategy `S` (full membership oracle or
/// Cyclon views).
#[derive(Debug)]
pub struct GossipNode<S> {
    id: NodeId,
    config: GossipConfig,
    sampler: S,
    subs: SubscriptionTable,
    buffer: Vec<Buffered>,
    seen: HashSet<EventId>,
    delivered: HashMap<EventId, DeliveryRecord>,
    ledger: FairnessLedger,
    estimator: GlobalRateEstimator,
    fanout_ctl: Controller,
    size_ctl: Controller,
    own_rates: RateSample,
    behavior: Behavior,
    rounds: u64,
    duplicates: u64,
    /// Per-sender gossip receipts since round, for the audit protocol.
    receipts: HashMap<NodeId, (u64, u64)>,
    /// Last advertised rates per sender (audit evidence).
    peer_claims: HashMap<NodeId, RateSample>,
    /// SWIM failure detector, created in `on_init` when configured.
    swim: Option<SwimState>,
}

impl<S: PeerSampler> GossipNode<S> {
    /// Creates a node.
    pub fn new(id: NodeId, config: GossipConfig, sampler: S) -> Self {
        // Prior mean benefit 0: a cold system reports no deliveries, which
        // makes the controllers fall back to the classic target fanout
        // until a real benefit signal propagates (bootstrap = Figure 4
        // behaviour, adaptation phases in smoothly).
        let estimator = GlobalRateEstimator::new(config.estimator_alpha, 0.0);
        let fanout_ctl = Controller::new(config.fanout);
        let size_ctl = Controller::new(config.events_per_msg);
        GossipNode {
            id,
            config,
            sampler,
            subs: SubscriptionTable::new(),
            buffer: Vec::new(),
            seen: HashSet::new(),
            delivered: HashMap::new(),
            ledger: FairnessLedger::new(),
            estimator,
            fanout_ctl,
            size_ctl,
            own_rates: RateSample::default(),
            behavior: Behavior::Honest,
            rounds: 0,
            duplicates: 0,
            receipts: HashMap::new(),
            peer_claims: HashMap::new(),
            swim: None,
        }
    }

    /// Creates a node with a non-honest behaviour model.
    pub fn with_behavior(id: NodeId, config: GossipConfig, sampler: S, behavior: Behavior) -> Self {
        let mut node = Self::new(id, config, sampler);
        node.behavior = behavior;
        node
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The fairness ledger (read access for experiments).
    pub fn ledger(&self) -> &FairnessLedger {
        &self.ledger
    }

    /// The lifetime contribution/benefit ratio under the node's spec.
    pub fn ratio(&self) -> f64 {
        self.ledger.ratio(&self.config.spec)
    }

    /// Active subscriptions.
    pub fn subscriptions(&self) -> &SubscriptionTable {
        &self.subs
    }

    /// Every delivery with its record.
    pub fn deliveries(&self) -> &HashMap<EventId, DeliveryRecord> {
        &self.delivered
    }

    /// Whether this node delivered `event`.
    pub fn has_delivered(&self, event: EventId) -> bool {
        self.delivered.contains_key(&event)
    }

    /// Current fanout allocation.
    pub fn fanout(&self) -> usize {
        self.fanout_ctl.value_rounded()
    }

    /// Current events-per-message allocation.
    pub fn events_per_msg(&self) -> usize {
        self.size_ctl.value_rounded()
    }

    /// Completed gossip rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Redundant event receipts (overhead metric).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// The node's current estimate of the population mean benefit rate.
    pub fn estimated_mean_benefit(&self) -> f64 {
        self.estimator.mean_benefit()
    }

    /// The node's smoothed own rates (what it advertises when honest).
    pub fn own_rates(&self) -> RateSample {
        self.own_rates
    }

    /// The behaviour model.
    pub fn behavior(&self) -> &Behavior {
        &self.behavior
    }

    /// Receipt counter snapshot for `peer`: `(messages, since_round)`.
    pub fn receipts_from(&self, peer: NodeId) -> Option<(u64, u64)> {
        self.receipts.get(&peer).copied()
    }

    /// Last advertised rate sample seen from `peer`.
    pub fn claim_of(&self, peer: NodeId) -> Option<RateSample> {
        self.peer_claims.get(&peer).copied()
    }

    /// Read access to the peer sampler.
    pub fn sampler(&self) -> &S {
        &self.sampler
    }

    /// The SWIM detector state, when enabled (and after `on_init`).
    pub fn swim_state(&self) -> Option<&SwimState> {
        self.swim.as_ref()
    }

    /// The SWIM observation log (empty when the detector is off).
    pub fn swim_observations(&self) -> Vec<SwimObservation> {
        self.swim
            .as_ref()
            .map(|s| s.observations().to_vec())
            .unwrap_or_default()
    }

    fn deliver_if_interested(&mut self, event: &Event, now: SimTime) {
        if self.subs.matches(event) && !self.delivered.contains_key(&event.id()) {
            self.delivered.insert(
                event.id(),
                DeliveryRecord {
                    at: now,
                    round: self.rounds,
                },
            );
            self.ledger.record_delivery();
        }
    }

    fn accept_event(&mut self, event: Event, now: SimTime) {
        if !self.seen.insert(event.id()) {
            self.duplicates += 1;
            return;
        }
        self.deliver_if_interested(&event, now);
        self.buffer.push(Buffered {
            event,
            ttl: self.config.ttl_rounds,
        });
    }

    fn run_round(&mut self, ctx: &mut Context<'_, GossipMsg>) {
        // 1. Close the accounting window and refresh own rate estimates.
        // The *control* benefit rate is deliveries (+ maintenance credits)
        // only: standing filters appear in the measured Fig.-2 ratio as a
        // one-off benefit, so feeding them into the per-round rate would
        // allocate zero-traffic subscribers perpetual work their snapshot
        // benefit can never absorb.
        self.ledger.roll_window();
        let spec = self.config.spec;
        let window = self.ledger.last_window();
        let wb = (window.delivered_events + window.maintenance_credits) as f64;
        let wc = self.ledger.window_contribution(&spec);
        let a = self.config.own_rate_alpha;
        self.own_rates.benefit_rate += a * (wb - self.own_rates.benefit_rate);
        self.own_rates.contribution_rate += a * (wc - self.own_rates.contribution_rate);

        // 2. Update controllers from the aggregated population view:
        // proportional share plus the lifetime-ratio correction.
        if self.config.adapt_fanout {
            let proportional = self.fanout_ctl.proportional_allocation(
                self.own_rates.benefit_rate,
                self.estimator.mean_benefit(),
            );
            let kappa = self.estimator.lifetime_ratio(1e-6);
            let excess = self.ledger.contribution(&spec) - kappa * self.ledger.benefit(&spec);
            let allocation = proportional - self.config.ratio_correction_gain * excess;
            self.fanout_ctl.steer(allocation);
        }
        if self.config.adapt_msg_size {
            self.size_ctl
                .update(self.own_rates.benefit_rate, self.estimator.mean_benefit());
        }
        self.behavior
            .shape_controllers(&mut self.fanout_ctl, &mut self.size_ctl);

        // 3. SELECTPARTICIPANTS(F) and SELECTEVENTS(N in events).
        let mut fanout = if self.config.adapt_fanout {
            self.fanout_ctl.sample_discrete(ctx.rng())
        } else {
            self.fanout_ctl.value_rounded()
        };
        // Civic minimum: fully throttled peers holding live events still
        // relay occasionally so an epidemic cannot be strangled at birth —
        // but only within the civic allowance, so the donated work stays a
        // bounded constant per peer.
        if fanout == 0 && !self.buffer.is_empty() && self.config.min_relay_rate > 0.0 {
            let kappa = self.estimator.lifetime_ratio(1e-6);
            let budget = kappa * self.ledger.benefit(&spec) + self.config.civic_allowance;
            if self.ledger.contribution(&spec) < budget
                && ctx.rng().bernoulli(self.config.min_relay_rate)
            {
                fanout = 1;
            }
        }
        let n_events = self.size_ctl.value_rounded();
        let partners = self.sampler.sample_peers(ctx.rng(), fanout);
        if !partners.is_empty() && !self.buffer.is_empty() {
            let k = n_events.min(self.buffer.len());
            let picked = ctx.rng().sample_indices(self.buffer.len(), k);
            let events: Vec<Event> = picked
                .into_iter()
                .map(|i| self.buffer[i].event.clone())
                .collect();
            let sample = self.behavior.advertise(RateSample {
                benefit_rate: self.own_rates.benefit_rate,
                contribution_rate: self.own_rates.contribution_rate,
                benefit_total: self.ledger.benefit(&spec),
                contribution_total: self.ledger.contribution(&spec),
            });
            for peer in partners {
                let swim_piggy = match &mut self.swim {
                    Some(s) => s.outgoing_piggyback(),
                    None => Vec::new(),
                };
                let bytes = push_size(&events, swim_piggy.len());
                ctx.send(
                    peer,
                    GossipMsg::Push {
                        events: events.clone(),
                        sample,
                        swim: swim_piggy,
                    },
                );
                self.ledger.record_forward(bytes);
            }
        }

        // 4. Age the buffer.
        for b in &mut self.buffer {
            b.ttl = b.ttl.saturating_sub(1);
        }
        self.buffer.retain(|b| b.ttl > 0);
        self.rounds += 1;
    }
}

impl<S: PeerSampler + 'static> Protocol for GossipNode<S> {
    type Msg = GossipMsg;
    type Cmd = GossipCmd;

    fn on_init(&mut self, ctx: &mut Context<'_, GossipMsg>) {
        // Jittered first round desynchronizes the population.
        let jitter = ctx.rng().range_u64(self.config.period.as_micros().max(1));
        ctx.set_timer(SimDuration::from_micros(jitter), ROUND_TIMER);
        if let Some(swim_cfg) = &self.config.swim {
            // Fresh detector per (re)start: a rejoining node begins with a
            // clean view and converges via dissemination + contact revival.
            self.swim = Some(SwimState::new(self.id, ctx.system_size(), swim_cfg.clone()));
            let sj = ctx
                .rng()
                .range_u64(swim_cfg.probe_period.as_micros().max(1));
            ctx.set_timer(SimDuration::from_micros(sj), SWIM_TICK_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, GossipMsg>, from: NodeId, msg: GossipMsg) {
        match msg {
            GossipMsg::Push {
                events,
                sample,
                swim,
            } => {
                self.estimator.observe(sample);
                self.peer_claims.insert(from, sample);
                let entry = self.receipts.entry(from).or_insert((0, self.rounds));
                entry.0 += 1;
                self.sampler.note_peer(from);
                let now = ctx.now();
                if let Some(detector) = &mut self.swim {
                    detector.absorb_piggyback(now, from, &swim);
                }
                for event in events {
                    self.accept_event(event, now);
                }
            }
            GossipMsg::Swim(m) => {
                if let Some(detector) = &mut self.swim {
                    for (to, reply) in detector.on_message(ctx.now(), from, m) {
                        ctx.send(to, GossipMsg::Swim(reply));
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, GossipMsg>, token: u64) {
        match token {
            ROUND_TIMER => {
                self.run_round(ctx);
                ctx.set_timer(self.config.period, ROUND_TIMER);
            }
            SWIM_TICK_TIMER => {
                let Some(swim_cfg) = self.config.swim.clone() else {
                    return;
                };
                if let Some(detector) = &mut self.swim {
                    let now = ctx.now();
                    let tick = detector.on_tick(now, ctx.rng());
                    for (to, m) in tick.msgs {
                        ctx.send(to, GossipMsg::Swim(m));
                    }
                    if let Some(seq) = tick.probe_seq {
                        ctx.set_timer(swim_cfg.probe_timeout, SWIM_DIRECT_NS | seq);
                    }
                }
                ctx.set_timer(swim_cfg.probe_period, SWIM_TICK_TIMER);
            }
            t if t & TOKEN_NS_MASK == SWIM_DIRECT_NS => {
                let Some(swim_cfg) = self.config.swim.clone() else {
                    return;
                };
                if let Some(detector) = &mut self.swim {
                    let seq = t & !TOKEN_NS_MASK;
                    let relays = detector.on_probe_timeout(ctx.now(), ctx.rng(), seq);
                    if !relays.is_empty() {
                        for (to, m) in relays {
                            ctx.send(to, GossipMsg::Swim(m));
                        }
                        ctx.set_timer(swim_cfg.probe_timeout, SWIM_INDIRECT_NS | seq);
                    }
                }
            }
            t if t & TOKEN_NS_MASK == SWIM_INDIRECT_NS => {
                if let Some(detector) = &mut self.swim {
                    detector.on_indirect_timeout(ctx.now(), t & !TOKEN_NS_MASK);
                }
            }
            other => debug_assert!(false, "unknown timer token {other}"),
        }
    }

    fn on_command(&mut self, ctx: &mut Context<'_, GossipMsg>, cmd: GossipCmd) {
        match cmd {
            GossipCmd::Publish(event) => {
                self.ledger.record_publish(event.size_bytes());
                let now = ctx.now();
                self.accept_event(event.clone(), now);
                // Seed the epidemic immediately: the publisher pushes the
                // fresh event to `2 × target_mean` random peers at its own
                // expense. Without this, a publisher whose fair-share
                // fanout is (near) zero would sit on its own events — the
                // paper's accounting explicitly charges publishers for the
                // messages they originate (Fig. 2), so the seed cost lands
                // on the right ledger. The doubled width makes the launch
                // robust even when most of the population is uninterested
                // (and therefore throttled): the chance that no benefit-
                // funded peer receives a seed decays exponentially in the
                // seed fanout.
                let seed_fanout = (2.0 * self.config.fanout.target_mean).round().max(1.0) as usize;
                let peers = self.sampler.sample_peers(ctx.rng(), seed_fanout);
                let sample = self.behavior.advertise(RateSample {
                    benefit_rate: self.own_rates.benefit_rate,
                    contribution_rate: self.own_rates.contribution_rate,
                    benefit_total: self.ledger.benefit(&self.config.spec),
                    contribution_total: self.ledger.contribution(&self.config.spec),
                });
                for peer in peers {
                    let swim_piggy = match &mut self.swim {
                        Some(s) => s.outgoing_piggyback(),
                        None => Vec::new(),
                    };
                    let bytes = push_size(std::slice::from_ref(&event), swim_piggy.len());
                    ctx.send(
                        peer,
                        GossipMsg::Push {
                            events: vec![event.clone()],
                            sample,
                            swim: swim_piggy,
                        },
                    );
                    self.ledger.record_forward(bytes);
                }
            }
            GossipCmd::SubscribeTopic(topic) => {
                self.subs.subscribe_topic(topic);
                self.ledger.set_active_filters(self.subs.len() as u32);
            }
            GossipCmd::SubscribeContent(filter) => {
                self.subs.subscribe_content(filter);
                self.ledger.set_active_filters(self.subs.len() as u32);
            }
            GossipCmd::ClearSubscriptions => {
                let ids: Vec<_> = self.subs.iter().map(|(id, _)| id).collect();
                for id in ids {
                    let _ = self.subs.unsubscribe(id);
                }
                self.ledger.set_active_filters(0);
            }
        }
    }

    fn message_size(msg: &GossipMsg) -> usize {
        match msg {
            GossipMsg::Push { events, swim, .. } => push_size(events, swim.len()),
            GossipMsg::Swim(m) => m.wire_size(),
        }
    }

    fn trace_payload(msg: &GossipMsg, emit: &mut dyn FnMut(u64, u32, u32, HopKind)) {
        // SWIM traffic is control plane; only pushes carry events.
        if let GossipMsg::Push { events, .. } = msg {
            for e in events {
                emit(
                    e.id().as_u64(),
                    e.topic().as_u32(),
                    e.size_bytes() as u32,
                    HopKind::GossipPush,
                );
            }
        }
    }
}

/// Wire size of a push message: header + piggybacks + event payloads.
fn push_size(events: &[Event], swim_updates: usize) -> usize {
    8 + RateSample::WIRE_BYTES
        + events.iter().map(Event::size_bytes).sum::<usize>()
        + swim_updates * fed_membership::swim::SWIM_UPDATE_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_membership::FullMembership;
    use fed_sim::network::{LatencyModel, NetworkModel};
    use fed_sim::Simulation;

    type Node = GossipNode<FullMembership>;

    fn net(ms: u64) -> NetworkModel {
        NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(ms)))
    }

    fn classic_sim(n: usize, fanout: usize, seed: u64) -> Simulation<Node> {
        let cfg = GossipConfig::classic(fanout, 16, SimDuration::from_millis(100));
        Simulation::new(n, net(10), seed, move |id, _| {
            GossipNode::new(id, cfg.clone(), FullMembership::new(id, n))
        })
    }

    fn everyone_subscribes(sim: &mut Simulation<Node>, topic: TopicId) {
        for i in 0..sim.len() {
            sim.schedule_command(
                SimTime::ZERO,
                NodeId::new(i as u32),
                GossipCmd::SubscribeTopic(topic),
            );
        }
    }

    #[test]
    fn event_reaches_all_interested_nodes() {
        let n = 64;
        let mut sim = classic_sim(n, 5, 42);
        let topic = TopicId::new(0);
        everyone_subscribes(&mut sim, topic);
        let event = Event::bare(EventId::new(0, 1), topic);
        sim.schedule_command(
            SimTime::from_millis(200),
            NodeId::new(0),
            GossipCmd::Publish(event.clone()),
        );
        sim.run_until(SimTime::from_secs(5));
        let delivered = sim
            .nodes()
            .filter(|(_, p)| p.has_delivered(event.id()))
            .count();
        assert_eq!(delivered, n, "atomic delivery expected with fanout 5");
    }

    #[test]
    fn uninterested_nodes_never_deliver_but_forward() {
        let n = 32;
        let mut sim = classic_sim(n, 4, 7);
        // Only even nodes subscribe.
        for i in (0..n).step_by(2) {
            sim.schedule_command(
                SimTime::ZERO,
                NodeId::new(i as u32),
                GossipCmd::SubscribeTopic(TopicId::new(0)),
            );
        }
        let event = Event::bare(EventId::new(1, 1), TopicId::new(0));
        sim.schedule_command(
            SimTime::from_millis(150),
            NodeId::new(1),
            GossipCmd::Publish(event.clone()),
        );
        sim.run_until(SimTime::from_secs(5));
        for (id, node) in sim.nodes() {
            if id.index() % 2 == 0 {
                assert!(node.has_delivered(event.id()), "{id} interested");
            } else {
                assert!(!node.has_delivered(event.id()), "{id} not interested");
            }
        }
        // Odd (uninterested) nodes still forwarded: that is the unfairness.
        let odd_forwards: u64 = sim
            .nodes()
            .filter(|(id, _)| id.index() % 2 == 1)
            .map(|(_, p)| p.ledger().totals().forwarded_msgs)
            .sum();
        assert!(odd_forwards > 0, "uninterested peers still do gossip work");
    }

    #[test]
    fn publisher_delivers_own_interesting_event() {
        let mut sim = classic_sim(4, 2, 3);
        let topic = TopicId::new(0);
        everyone_subscribes(&mut sim, topic);
        let event = Event::bare(EventId::new(0, 9), topic);
        sim.schedule_command(
            SimTime::from_millis(100),
            NodeId::new(0),
            GossipCmd::Publish(event.clone()),
        );
        sim.run_until(SimTime::from_millis(120));
        assert!(sim.node(NodeId::new(0)).unwrap().has_delivered(event.id()));
    }

    #[test]
    fn no_duplicate_deliveries() {
        let n = 24;
        let mut sim = classic_sim(n, 6, 11);
        everyone_subscribes(&mut sim, TopicId::new(0));
        for k in 0..5u32 {
            sim.schedule_command(
                SimTime::from_millis(100 + k as u64 * 50),
                NodeId::new(k),
                GossipCmd::Publish(Event::bare(EventId::new(k, 1), TopicId::new(0))),
            );
        }
        sim.run_until(SimTime::from_secs(4));
        for (_, node) in sim.nodes() {
            assert_eq!(node.deliveries().len(), 5, "each event delivered once");
            assert_eq!(node.ledger().totals().delivered_events, 5);
        }
    }

    #[test]
    fn ttl_expires_events_from_buffer() {
        let mut cfg = GossipConfig::classic(2, 8, SimDuration::from_millis(50));
        cfg.ttl_rounds = 2;
        let mut sim: Simulation<Node> = Simulation::new(8, net(5), 5, move |id, _| {
            GossipNode::new(id, cfg.clone(), FullMembership::new(id, 8))
        });
        sim.schedule_command(
            SimTime::from_millis(60),
            NodeId::new(0),
            GossipCmd::Publish(Event::bare(EventId::new(0, 1), TopicId::new(0))),
        );
        sim.run_until(SimTime::from_secs(3));
        for (_, node) in sim.nodes() {
            assert!(node.buffer.is_empty(), "buffers must drain after TTL");
        }
        // Traffic stops once the event expires everywhere: check the last
        // second produced no event-bearing messages by sampling stats.
        let sent_before: u64 = sim.transport_stats_all().iter().map(|s| s.msgs_sent).sum();
        sim.run_until(SimTime::from_secs(4));
        let sent_after: u64 = sim.transport_stats_all().iter().map(|s| s.msgs_sent).sum();
        assert_eq!(sent_before, sent_after, "no gossip without fresh events");
    }

    #[test]
    fn subscriptions_update_filter_count() {
        let mut sim = classic_sim(2, 1, 1);
        let id = NodeId::new(0);
        sim.schedule_command(
            SimTime::ZERO,
            id,
            GossipCmd::SubscribeTopic(TopicId::new(1)),
        );
        sim.schedule_command(
            SimTime::ZERO,
            id,
            GossipCmd::SubscribeTopic(TopicId::new(2)),
        );
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.node(id).unwrap().ledger().active_filters(), 2);
        sim.schedule_command(SimTime::from_millis(20), id, GossipCmd::ClearSubscriptions);
        sim.run_until(SimTime::from_millis(30));
        assert_eq!(sim.node(id).unwrap().ledger().active_filters(), 0);
        assert!(sim.node(id).unwrap().subscriptions().is_empty());
    }

    #[test]
    fn static_config_never_moves_knobs() {
        let n = 16;
        let mut sim = classic_sim(n, 3, 13);
        everyone_subscribes(&mut sim, TopicId::new(0));
        for k in 0..20u32 {
            sim.schedule_command(
                SimTime::from_millis(100 * k as u64),
                NodeId::new(k % n as u32),
                GossipCmd::Publish(Event::bare(EventId::new(k, 1), TopicId::new(0))),
            );
        }
        sim.run_until(SimTime::from_secs(5));
        for (_, node) in sim.nodes() {
            assert_eq!(node.fanout(), 3);
            assert_eq!(node.events_per_msg(), 16);
        }
    }

    #[test]
    fn adaptive_fanout_tracks_benefit_share() {
        // Node 0 subscribes to everything; others to nothing. With steady
        // publications the fair protocol should push node 0's fanout above
        // the mean and everyone else's to the floor.
        let n = 16;
        let cfg = GossipConfig::fair(4, 16, SimDuration::from_millis(100));
        let mut sim: Simulation<Node> = Simulation::new(n, net(10), 21, move |id, _| {
            GossipNode::new(id, cfg.clone(), FullMembership::new(id, n))
        });
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(0),
            GossipCmd::SubscribeTopic(TopicId::new(0)),
        );
        // steady stream of events from node 1
        for k in 0..200u32 {
            sim.schedule_command(
                SimTime::from_millis(100 * k as u64),
                NodeId::new(1),
                GossipCmd::Publish(Event::bare(EventId::new(1, k), TopicId::new(0))),
            );
        }
        sim.run_until(SimTime::from_secs(25));
        // The benefiting node must end up carrying a disproportionate share
        // of the forwarding work; uninterested peers get throttled by the
        // lifetime-ratio correction.
        let w0 = sim
            .node(NodeId::new(0))
            .unwrap()
            .ledger()
            .totals()
            .forwarded_msgs;
        let w_others: Vec<u64> = sim
            .nodes()
            .filter(|(id, _)| id.index() >= 2)
            .map(|(_, p)| p.ledger().totals().forwarded_msgs)
            .collect();
        let avg_others = w_others.iter().sum::<u64>() as f64 / w_others.len() as f64;
        assert!(
            w0 as f64 > 2.0 * avg_others,
            "interested node forwarded {w0} vs uninterested average {avg_others}"
        );
    }

    #[test]
    fn duplicates_are_counted_not_redelivered() {
        let n = 8;
        let mut sim = classic_sim(n, 7, 17);
        everyone_subscribes(&mut sim, TopicId::new(0));
        sim.schedule_command(
            SimTime::from_millis(100),
            NodeId::new(0),
            GossipCmd::Publish(Event::bare(EventId::new(0, 1), TopicId::new(0))),
        );
        sim.run_until(SimTime::from_secs(3));
        let dupes: u64 = sim.nodes().map(|(_, p)| p.duplicates()).sum();
        assert!(dupes > 0, "fanout 7 in n=8 must produce redundancy");
        for (_, node) in sim.nodes() {
            assert_eq!(node.deliveries().len(), 1);
        }
    }

    #[test]
    fn message_size_accounts_events_and_piggyback() {
        let e = Event::builder(EventId::new(0, 0), TopicId::new(0))
            .payload_bytes(100)
            .build();
        let msg = GossipMsg::Push {
            events: vec![e.clone(), e],
            sample: RateSample::default(),
            swim: vec![],
        };
        let expect = 8 + RateSample::WIRE_BYTES + 2 * (16 + 100);
        assert_eq!(Node::message_size(&msg), expect);
    }

    #[test]
    fn swim_detects_a_crashed_node() {
        use fed_membership::swim::SwimConfig;
        let n = 16;
        let cfg = GossipConfig::classic(4, 16, SimDuration::from_millis(100))
            .with_swim(SwimConfig::standard());
        let mut sim: Simulation<Node> = Simulation::new(n, net(10), 31, move |id, _| {
            GossipNode::new(id, cfg.clone(), FullMembership::new(id, n))
        });
        let victim = NodeId::new(3);
        sim.schedule_crash(SimTime::from_secs(5), victim);
        sim.run_until(SimTime::from_secs(30));
        // Every surviving node eventually confirms the victim dead, and
        // nobody confirms anyone else.
        for (id, node) in sim.nodes() {
            if id == victim {
                continue;
            }
            let swim = node.swim_state().expect("detector enabled");
            assert!(swim.is_dead(victim), "{id} must confirm {victim} dead");
            for other in 0..n {
                let other = NodeId::new(other as u32);
                if other != victim && other != id {
                    assert!(!swim.is_dead(other), "{id} wrongly killed {other}");
                }
            }
        }
    }

    #[test]
    fn swim_disabled_runs_without_detector_traffic() {
        let mut sim = classic_sim(8, 3, 77);
        everyone_subscribes(&mut sim, TopicId::new(0));
        sim.run_until(SimTime::from_secs(2));
        for (_, node) in sim.nodes() {
            assert!(node.swim_state().is_none());
            assert!(node.swim_observations().is_empty());
        }
    }

    #[test]
    fn receipts_and_claims_tracked() {
        let n = 4;
        let mut sim = classic_sim(n, 3, 23);
        everyone_subscribes(&mut sim, TopicId::new(0));
        sim.schedule_command(
            SimTime::from_millis(100),
            NodeId::new(0),
            GossipCmd::Publish(Event::bare(EventId::new(0, 1), TopicId::new(0))),
        );
        sim.run_until(SimTime::from_secs(2));
        // someone must have received from node 0 and recorded its claim
        let tracked = sim.nodes().filter(|(id, _)| id.index() != 0).any(|(_, p)| {
            p.receipts_from(NodeId::new(0)).is_some() && p.claim_of(NodeId::new(0)).is_some()
        });
        assert!(tracked);
    }
}
