//! Membership-detection telemetry: per-window failure-detector series.
//!
//! A failure detector (SWIM in `fed-membership`) emits a stream of
//! *observations* — suspicions, death confirmations, refutations. This
//! module folds that stream, together with the scenario's ground-truth
//! crash/rejoin trace, into fixed virtual-time windows:
//!
//! * **detection latency** — for each confirmation of a node that really
//!   is down, the time since it crashed (summed per window; divide by
//!   `detections` for the mean);
//! * **false suspicions** — suspicions raised against nodes that were in
//!   fact alive (the cost of aggressive timeouts, and the signature of a
//!   partition: the far side looks dead);
//! * **partition recovery** — visible as the refutation wave after the
//!   heal, when contact with "dead" members resumes and their records
//!   are revived.
//!
//! Every accumulator is an integer, classification is a pure function of
//! the observation stream and the ground truth, and both inputs are
//! deterministic simulation data — so the series is byte-identical
//! across engines, shard counts, placements and window policies whenever
//! the observation streams are (which the parity suites assert).
//!
//! Windows are `[w·W, (w+1)·W)` like the main telemetry series; an
//! observation at exactly a boundary belongs to the later window.

use fed_sim::{SimDuration, SimTime};

/// What a failure detector observed about a peer.
///
/// Mirrors `fed-membership`'s observation kinds without depending on the
/// crate; the experiment layer maps its detector's log into this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorEventKind {
    /// A node became suspected.
    Suspect,
    /// A node was confirmed dead.
    Confirm,
    /// A suspicion or death claim was refuted.
    Refute,
    /// A node refuted a claim about itself.
    SelfRefute,
}

/// One observation from one detector instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorEvent {
    /// When the observation was made (virtual time).
    pub at: SimTime,
    /// The node whose detector observed it.
    pub observer: usize,
    /// The node the observation concerns.
    pub subject: usize,
    /// What was observed.
    pub kind: DetectorEventKind,
}

/// Ground truth: one contiguous downtime of one node, `[down, up)`
/// (`up` is the rejoin instant, or the run horizon when the node never
/// came back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DowntimeInterval {
    /// The node that was down.
    pub node: usize,
    /// When it crashed.
    pub down: SimTime,
    /// When it rejoined (exclusive; the horizon if it never did).
    pub up: SimTime,
}

impl DowntimeInterval {
    fn covers(&self, node: usize, at: SimTime) -> bool {
        self.node == node && self.down <= at && at < self.up
    }
}

/// One window's worth of detection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MembershipWindowRow {
    /// Window index.
    pub index: u64,
    /// Suspicions raised (all of them).
    pub suspicions: u64,
    /// Death confirmations recorded (all of them).
    pub confirms: u64,
    /// Suspicion/death refutations.
    pub refutes: u64,
    /// Self-refutations (a live node clearing its own name).
    pub self_refutes: u64,
    /// Suspicions against nodes that were actually alive.
    pub false_suspicions: u64,
    /// Confirmations of nodes that were actually down.
    pub detections: u64,
    /// Σ (confirmation time − crash time) over this window's
    /// detections, in microseconds.
    pub detection_latency_us_sum: u64,
}

/// The per-window failure-detection series of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipSeries {
    /// Window width.
    pub window: SimDuration,
    /// Per-window counters, covering `[0, horizon)`.
    pub windows: Vec<MembershipWindowRow>,
}

impl MembershipSeries {
    /// Folds an observation stream and the ground-truth downtime
    /// intervals into per-window counters.
    ///
    /// Observations at or past `horizon` are ignored; `window` must be
    /// non-zero.
    pub fn build(
        window: SimDuration,
        horizon: SimTime,
        events: &[DetectorEvent],
        downtime: &[DowntimeInterval],
    ) -> Self {
        assert!(window > SimDuration::ZERO, "window width must be positive");
        let num_windows = horizon.as_micros().div_ceil(window.as_micros());
        let mut windows: Vec<MembershipWindowRow> = (0..num_windows)
            .map(|index| MembershipWindowRow {
                index,
                ..MembershipWindowRow::default()
            })
            .collect();
        for e in events {
            if e.at >= horizon {
                continue;
            }
            let row = &mut windows[(e.at.as_micros() / window.as_micros()) as usize];
            let down_since = downtime
                .iter()
                .find(|d| d.covers(e.subject, e.at))
                .map(|d| d.down);
            match e.kind {
                DetectorEventKind::Suspect => {
                    row.suspicions += 1;
                    if down_since.is_none() {
                        row.false_suspicions += 1;
                    }
                }
                DetectorEventKind::Confirm => {
                    row.confirms += 1;
                    if let Some(down) = down_since {
                        row.detections += 1;
                        row.detection_latency_us_sum += e.at.as_micros() - down.as_micros();
                    }
                }
                DetectorEventKind::Refute => row.refutes += 1,
                DetectorEventKind::SelfRefute => row.self_refutes += 1,
            }
        }
        MembershipSeries { window, windows }
    }

    /// Total true detections over the run.
    pub fn total_detections(&self) -> u64 {
        self.windows.iter().map(|w| w.detections).sum()
    }

    /// Total false suspicions over the run.
    pub fn total_false_suspicions(&self) -> u64 {
        self.windows.iter().map(|w| w.false_suspicions).sum()
    }

    /// Total refutations over the run (the partition-recovery signal).
    pub fn total_refutes(&self) -> u64 {
        self.windows.iter().map(|w| w.refutes).sum()
    }

    /// Mean detection latency in microseconds, `None` without a single
    /// true detection.
    pub fn detection_latency_mean_us(&self) -> Option<f64> {
        let detections = self.total_detections();
        if detections == 0 {
            return None;
        }
        let sum: u64 = self
            .windows
            .iter()
            .map(|w| w.detection_latency_us_sum)
            .sum();
        Some(sum as f64 / detections as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ms: u64, subject: usize, kind: DetectorEventKind) -> DetectorEvent {
        DetectorEvent {
            at: SimTime::from_millis(at_ms),
            observer: 0,
            subject,
            kind,
        }
    }

    #[test]
    fn classifies_against_ground_truth() {
        let downtime = [DowntimeInterval {
            node: 3,
            down: SimTime::from_millis(1_000),
            up: SimTime::from_millis(5_000),
        }];
        let events = [
            // True suspicion and detection of the crashed node.
            ev(1_400, 3, DetectorEventKind::Suspect),
            ev(2_000, 3, DetectorEventKind::Confirm),
            // False suspicion of a live node, later refuted.
            ev(2_100, 4, DetectorEventKind::Suspect),
            ev(2_600, 4, DetectorEventKind::Refute),
            // Confirm of a node that already rejoined: not a detection.
            ev(6_000, 3, DetectorEventKind::Confirm),
            // Past the horizon: ignored.
            ev(10_000, 3, DetectorEventKind::Suspect),
        ];
        let s = MembershipSeries::build(
            SimDuration::from_secs(1),
            SimTime::from_secs(8),
            &events,
            &downtime,
        );
        assert_eq!(s.windows.len(), 8);
        assert_eq!(s.windows[1].suspicions, 1);
        assert_eq!(s.windows[1].false_suspicions, 0);
        assert_eq!(s.windows[2].suspicions, 1);
        assert_eq!(s.windows[2].false_suspicions, 1);
        assert_eq!(s.windows[2].confirms, 1);
        assert_eq!(s.windows[2].detections, 1);
        assert_eq!(s.windows[2].detection_latency_us_sum, 1_000_000);
        assert_eq!(s.windows[2].refutes, 1);
        assert_eq!(s.windows[6].confirms, 1);
        assert_eq!(s.windows[6].detections, 0, "rejoined node is alive");
        assert_eq!(s.total_detections(), 1);
        assert_eq!(s.total_false_suspicions(), 1);
        assert_eq!(s.detection_latency_mean_us(), Some(1_000_000.0));
    }

    #[test]
    fn empty_stream_yields_zeroed_windows() {
        let s = MembershipSeries::build(
            SimDuration::from_millis(500),
            SimTime::from_millis(1_600),
            &[],
            &[],
        );
        assert_eq!(s.windows.len(), 4, "horizon rounds up to whole windows");
        assert!(s.windows.iter().all(|w| w.suspicions == 0));
        assert_eq!(s.detection_latency_mean_us(), None);
    }

    #[test]
    fn boundary_observation_lands_in_the_later_window() {
        let events = [ev(500, 1, DetectorEventKind::Suspect)];
        let s = MembershipSeries::build(
            SimDuration::from_millis(500),
            SimTime::from_millis(1_000),
            &events,
            &[],
        );
        assert_eq!(s.windows[0].suspicions, 0);
        assert_eq!(s.windows[1].suspicions, 1);
    }
}
