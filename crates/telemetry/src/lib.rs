//! # fed-telemetry
//!
//! Deterministic streaming time-series observability for both simulation
//! engines: a [`ShardCollector`] plugs into the execution substrate's
//! [`Probe`] hooks, samples the run on fixed
//! virtual-time windows and emits a [`TelemetrySeries`] — per-window
//! fairness indices over forwarding contributions, per-node forward-load
//! histograms, scheduled-delivery-latency percentiles and live/crashed
//! population counts.
//!
//! ## Determinism contract
//!
//! The series is **byte-identical** between the sequential engine and the
//! sharded `fed-cluster` runtime at any shard count, because the pipeline
//! is built from exact, order-insensitive pieces:
//!
//! * every per-window accumulator is an **integer** (counts, sums of
//!   counts, sums of squares, mins/maxes, histogram buckets), so merging
//!   shard-local collectors is exact, associative and commutative —
//!   asserted by this crate's property tests;
//! * each shard observes only the nodes it owns and processes them in
//!   virtual-time order, so a window's fold happens after exactly the
//!   events with `time < window end` — the same set on every engine;
//! * the floating-point *views* (Jain index, Gini coefficient, latency
//!   percentiles) are derived from the merged integer state in one
//!   canonical order at reporting time, never accumulated across threads.
//!
//! Windows are `[w·W, (w+1)·W)` for the spec's width `W`; an event at
//! exactly a boundary belongs to the later window. The window width is
//! also the overhead knob: the only per-window cost is one O(owned
//! nodes) fold per shard, so wider windows cost less (and per-event cost
//! is a handful of integer increments either way).
//!
//! ## What is measured
//!
//! * **Forward load** — per-node transmission attempts within the window
//!   (lost messages included: a drop still cost the sender), folded over
//!   the nodes *alive at window close* into exact `Σx`, `Σx²`, min, max
//!   and a bucketed histogram. Jain, Gini and max/min over these counts
//!   equal the same indices over contribution ratios normalized by the
//!   window mean (all three are scale-invariant).
//! * **Scheduled delivery latency** — recorded at send time, bucketed
//!   into the window of the *scheduled delivery instant*; samples whose
//!   delivery falls past the run horizon still appear (trailing
//!   windows), which keeps send-side and delivery-side views consistent
//!   across engines.
//! * **Traffic and population** — events processed, messages/bytes
//!   sent/received, losses, live/crashed counts at window close.
//!
//! Time-zero `on_init` effects run during engine construction, before a
//! probe can be attached, and are consistently unobserved on every
//! engine (their deliveries *are* observed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod membership;

use fed_sim::exec::{Probe, SendFate};
use fed_sim::protocol::NodeId;
use fed_sim::time::{SimDuration, SimTime};
use fed_util::histogram::Histogram;
use std::collections::BTreeMap;

/// Configuration of the telemetry pipeline, fixed for a whole run.
///
/// The histogram geometries are part of the spec so that shard-local
/// sketches are always mergeable; two series compare equal only if their
/// specs agree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySpec {
    /// Sampling window width (must be positive). Doubles as the overhead
    /// knob: the per-window fold is the only O(nodes) cost.
    pub window: SimDuration,
    /// Exclusive upper bound of the per-node forward-load histogram
    /// (`[0, load_hi)` plus an overflow bucket).
    pub load_hi: f64,
    /// Bucket count of the forward-load histogram.
    pub load_buckets: usize,
    /// Exclusive upper bound (milliseconds) of the delivery-latency
    /// histogram.
    pub latency_hi_ms: f64,
    /// Bucket count of the delivery-latency histogram.
    pub latency_buckets: usize,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec {
            window: SimDuration::from_millis(500),
            // Unit-width buckets: integer forward counts below 64 are
            // captured exactly, which (together with the exact residual
            // mass for the overflow) keeps the derived Gini faithful
            // even for hotspot architectures.
            load_hi: 64.0,
            load_buckets: 64,
            latency_hi_ms: 200.0,
            latency_buckets: 40,
        }
    }
}

impl TelemetrySpec {
    /// Returns the spec with a different window width.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    fn load_hist(&self) -> Histogram {
        Histogram::new(0.0, self.load_hi, self.load_buckets).expect("validated in new()")
    }

    fn latency_hist(&self) -> Histogram {
        Histogram::new(0.0, self.latency_hi_ms, self.latency_buckets).expect("validated in new()")
    }

    /// Checks a spec without panicking — the validation entry point for
    /// declarative sources like `fed-workload`'s scenario files, which
    /// must turn a bad `[telemetry]` section into an actionable parse
    /// error rather than a collector panic.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field:
    /// a non-positive window, or histogram geometry (`load_hi`,
    /// `load_buckets`, `latency_hi_ms`, `latency_buckets`) that does not
    /// describe a well-formed sketch.
    pub fn checked(spec: TelemetrySpec) -> Result<TelemetrySpec, String> {
        if spec.window <= SimDuration::ZERO {
            return Err("telemetry window must be positive".to_string());
        }
        Histogram::new(0.0, spec.load_hi, spec.load_buckets)
            .map_err(|e| format!("invalid load histogram spec: {e}"))?;
        Histogram::new(0.0, spec.latency_hi_ms, spec.latency_buckets)
            .map_err(|e| format!("invalid latency histogram spec: {e}"))?;
        Ok(spec)
    }

    fn validate(&self) {
        if let Err(e) = TelemetrySpec::checked(*self) {
            panic!("{e}");
        }
    }
}

/// The exact (integer) per-window accumulator state.
///
/// Everything here merges across shards without loss: sums add, mins and
/// maxes combine, histograms add bucket-wise. Floating-point summaries
/// live in [`WindowRow`], derived from this state at reporting time.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window index (`[index·W, (index+1)·W)`).
    pub index: u64,
    /// Events dispatched in the window.
    pub events: u64,
    /// Messages handed to the network (lost ones included).
    pub msgs_sent: u64,
    /// Bytes handed to the network.
    pub bytes_sent: u64,
    /// Messages delivered.
    pub msgs_received: u64,
    /// Bytes delivered.
    pub bytes_received: u64,
    /// Messages the network dropped.
    pub msgs_lost: u64,
    /// Nodes alive at window close.
    pub alive: u64,
    /// Nodes crashed at window close.
    pub crashed: u64,
    /// Σ of per-alive-node forward counts.
    pub load_sum: u64,
    /// Σ of squared per-alive-node forward counts.
    pub load_sumsq: u128,
    /// Minimum per-alive-node forward count (`u64::MAX` when no node was
    /// sampled — e.g. trailing latency-only windows).
    pub load_min: u64,
    /// Maximum per-alive-node forward count.
    pub load_max: u64,
    /// Histogram of per-alive-node forward counts.
    pub load_hist: Histogram,
    /// Histogram of scheduled delivery latencies (milliseconds), keyed to
    /// the delivery window.
    pub latency_hist: Histogram,
}

impl WindowStats {
    /// An empty window for `spec` at `index`.
    pub fn empty(spec: &TelemetrySpec, index: u64) -> Self {
        WindowStats {
            index,
            events: 0,
            msgs_sent: 0,
            bytes_sent: 0,
            msgs_received: 0,
            bytes_received: 0,
            msgs_lost: 0,
            alive: 0,
            crashed: 0,
            load_sum: 0,
            load_sumsq: 0,
            load_min: u64::MAX,
            load_max: 0,
            load_hist: spec.load_hist(),
            latency_hist: spec.latency_hist(),
        }
    }

    /// Merges another shard's accumulator for the same window into this
    /// one. Exact, associative and commutative (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if the windows disagree on index or histogram geometry —
    /// collectors built from one [`TelemetrySpec`] always agree.
    pub fn merge(&mut self, other: &WindowStats) {
        assert_eq!(self.index, other.index, "merging different windows");
        self.events += other.events;
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_received += other.msgs_received;
        self.bytes_received += other.bytes_received;
        self.msgs_lost += other.msgs_lost;
        self.alive += other.alive;
        self.crashed += other.crashed;
        self.load_sum += other.load_sum;
        self.load_sumsq += other.load_sumsq;
        self.load_min = self.load_min.min(other.load_min);
        self.load_max = self.load_max.max(other.load_max);
        self.load_hist
            .merge(&other.load_hist)
            .expect("same spec, same geometry");
        self.latency_hist
            .merge(&other.latency_hist)
            .expect("same spec, same geometry");
    }
}

/// A shard-local streaming collector implementing the substrate's
/// [`Probe`] hooks.
///
/// One collector observes the nodes one kernel owns — the whole
/// population on the sequential engine ([`ShardCollector::sequential`]),
/// one shard's slice on `fed-cluster` (one collector per shard, built
/// from the shard map's owned lists). After the run, [`finalize`]
/// closes the remaining windows and the per-shard series are folded with
/// [`TelemetrySeries::merge`] into the exact global series.
///
/// [`finalize`]: ShardCollector::finalize
#[derive(Debug, Clone)]
pub struct ShardCollector {
    spec: TelemetrySpec,
    window_us: u64,
    /// Global id → local slot; `u32::MAX` when not owned.
    local: Vec<u32>,
    /// Per owned node: forward count of the current window.
    counts: Vec<u64>,
    /// Per owned node: alive status (everyone starts alive).
    alive: Vec<bool>,
    /// Current (open) window index.
    cur: u64,
    windows: BTreeMap<u64, WindowStats>,
}

impl ShardCollector {
    /// A collector for the owned subset `owned` (global ids) of an
    /// `n_global`-node simulation.
    ///
    /// # Panics
    ///
    /// Panics on an invalid spec or an owned id out of range.
    pub fn new(spec: TelemetrySpec, n_global: usize, owned: &[u32]) -> Self {
        spec.validate();
        let mut local = vec![u32::MAX; n_global];
        for (li, &id) in owned.iter().enumerate() {
            assert!((id as usize) < n_global, "owned id {id} out of range");
            local[id as usize] = li as u32;
        }
        ShardCollector {
            spec,
            window_us: spec.window.as_micros(),
            local,
            counts: vec![0; owned.len()],
            alive: vec![true; owned.len()],
            cur: 0,
            windows: BTreeMap::new(),
        }
    }

    /// A collector owning the full population — the sequential engine's
    /// single probe.
    pub fn sequential(spec: TelemetrySpec, n: usize) -> Self {
        let owned: Vec<u32> = (0..n as u32).collect();
        ShardCollector::new(spec, n, &owned)
    }

    /// The spec this collector samples under.
    pub fn spec(&self) -> TelemetrySpec {
        self.spec
    }

    fn win_of(&self, t: SimTime) -> u64 {
        t.as_micros() / self.window_us
    }

    fn entry(&mut self, w: u64) -> &mut WindowStats {
        let spec = self.spec;
        self.windows
            .entry(w)
            .or_insert_with(|| WindowStats::empty(&spec, w))
    }

    /// Closes every window before the one containing `now`.
    fn advance(&mut self, now: SimTime) {
        let w = self.win_of(now);
        while self.cur < w {
            self.close_current();
        }
    }

    /// Folds the open window's per-node forward counts and population
    /// snapshot into its accumulator, then opens the next window.
    ///
    /// The distribution covers the nodes alive at window close; a node
    /// that forwarded and then crashed inside the window keeps its
    /// traffic in the global counters but drops out of the distribution
    /// (fairness tracks the live population's load concentration).
    fn close_current(&mut self) {
        let w = self.cur;
        let spec = self.spec;
        let stats = self
            .windows
            .entry(w)
            .or_insert_with(|| WindowStats::empty(&spec, w));
        for (count, alive) in self.counts.iter_mut().zip(&self.alive) {
            if *alive {
                let c = *count;
                stats.alive += 1;
                stats.load_sum += c;
                stats.load_sumsq += (c as u128) * (c as u128);
                stats.load_min = stats.load_min.min(c);
                stats.load_max = stats.load_max.max(c);
                stats.load_hist.record(c as f64);
            } else {
                stats.crashed += 1;
            }
            *count = 0;
        }
        self.cur += 1;
    }

    /// Closes every window through the one containing `horizon` and
    /// returns the shard's series.
    ///
    /// Both engines must finalize at the same horizon (the harness uses
    /// the scenario horizon) for their series to compare equal.
    pub fn finalize(mut self, horizon: SimTime) -> TelemetrySeries {
        let last = self.win_of(horizon);
        while self.cur <= last {
            self.close_current();
        }
        // Trailing windows may hold latency samples of sends scheduled to
        // deliver past the horizon; keep them (they merge exactly).
        let max_w = self.windows.keys().next_back().copied().unwrap_or(last);
        let spec = self.spec;
        let windows = (0..=max_w)
            .map(|w| {
                self.windows
                    .remove(&w)
                    .unwrap_or_else(|| WindowStats::empty(&spec, w))
            })
            .collect();
        TelemetrySeries { spec, windows }
    }
}

impl Probe for ShardCollector {
    fn on_event(&mut self, now: SimTime) {
        self.advance(now);
        self.entry(self.cur).events += 1;
    }

    fn on_send(&mut self, now: SimTime, node: NodeId, bytes: u64, fate: SendFate) {
        self.advance(now);
        let li = self.local[node.index()];
        debug_assert_ne!(li, u32::MAX, "send observed for a non-owned node");
        self.counts[li as usize] += 1;
        let w = self.cur;
        {
            let stats = self.entry(w);
            stats.msgs_sent += 1;
            stats.bytes_sent += bytes;
        }
        match fate {
            SendFate::Delivered { at } => {
                let lat_ms = at.duration_since(now).as_secs_f64() * 1e3;
                let dw = self.win_of(at);
                self.entry(dw).latency_hist.record(lat_ms);
            }
            SendFate::Lost => self.entry(w).msgs_lost += 1,
        }
    }

    fn on_receive(&mut self, now: SimTime, _node: NodeId, bytes: u64) {
        self.advance(now);
        let stats = self.entry(self.cur);
        stats.msgs_received += 1;
        stats.bytes_received += bytes;
    }

    fn on_liveness(&mut self, now: SimTime, node: NodeId, alive: bool) {
        self.advance(now);
        let li = self.local[node.index()];
        debug_assert_ne!(li, u32::MAX, "liveness observed for a non-owned node");
        self.alive[li as usize] = alive;
    }
}

/// A finalized time series: one [`WindowStats`] per window, dense from
/// window 0.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySeries {
    /// The spec the series was sampled under.
    pub spec: TelemetrySpec,
    /// Exact per-window state, indexed by window.
    pub windows: Vec<WindowStats>,
}

impl TelemetrySeries {
    /// Merges another shard's series into this one, window by window
    /// (shorter series are padded with empty windows). Exact, associative
    /// and commutative, so any merge order over any shard partition
    /// yields the byte-identical global series.
    ///
    /// # Panics
    ///
    /// Panics if the specs disagree.
    pub fn merge(&mut self, other: &TelemetrySeries) {
        assert_eq!(self.spec, other.spec, "merging series of different specs");
        while self.windows.len() < other.windows.len() {
            let w = self.windows.len() as u64;
            self.windows.push(WindowStats::empty(&self.spec, w));
        }
        for (mine, theirs) in self.windows.iter_mut().zip(&other.windows) {
            mine.merge(theirs);
        }
    }

    /// Derived floating-point view of every window, in window order.
    pub fn rows(&self) -> Vec<WindowRow> {
        self.windows
            .iter()
            .map(|w| WindowRow::from_stats(w, &self.spec))
            .collect()
    }
}

/// The displayable per-window summary, derived from the exact state.
///
/// All floats here are computed from the merged integer accumulators in
/// one canonical order, so two byte-identical series produce
/// byte-identical rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowRow {
    /// Window index.
    pub index: u64,
    /// Window start.
    pub start: SimTime,
    /// Events dispatched.
    pub events: u64,
    /// Messages handed to the network.
    pub msgs_sent: u64,
    /// Messages delivered.
    pub msgs_received: u64,
    /// Messages dropped by the network.
    pub msgs_lost: u64,
    /// Bytes handed to the network.
    pub bytes_sent: u64,
    /// Nodes alive at window close.
    pub alive: u64,
    /// Nodes crashed at window close.
    pub crashed: u64,
    /// Mean per-alive-node forward count.
    pub load_mean: f64,
    /// Jain fairness index over per-node forward counts (exact; equals
    /// Jain over mean-normalized contribution ratios).
    pub jain: f64,
    /// Gini coefficient over the per-node forward counts, derived from
    /// the load histogram plus the exact total mass (see
    /// [`gini_from_load_sketch`]). Exact for integer counts below
    /// `load_hi` at unit bucket width (the default geometry); the
    /// overflow collapses to its exact mean.
    pub gini: f64,
    /// Max/min forward count; `f64::INFINITY` when some node idled while
    /// another forwarded.
    pub max_min: f64,
    /// Median scheduled delivery latency (ms), when sampled.
    pub latency_p50_ms: Option<f64>,
    /// 95th-percentile scheduled delivery latency (ms).
    pub latency_p95_ms: Option<f64>,
    /// 99th-percentile scheduled delivery latency (ms).
    pub latency_p99_ms: Option<f64>,
}

impl WindowRow {
    /// Derives the summary row of one window.
    pub fn from_stats(w: &WindowStats, spec: &TelemetrySpec) -> WindowRow {
        let n = w.alive;
        let (load_mean, jain) = if n == 0 || w.load_sumsq == 0 {
            (0.0, 1.0)
        } else {
            let sum = w.load_sum as f64;
            (
                sum / n as f64,
                (sum * sum) / (n as f64 * w.load_sumsq as f64),
            )
        };
        let max_min = if w.load_min == u64::MAX || (w.load_min == 0 && w.load_max == 0) {
            1.0
        } else if w.load_min == 0 {
            f64::INFINITY
        } else {
            w.load_max as f64 / w.load_min as f64
        };
        WindowRow {
            index: w.index,
            start: SimTime::from_micros(w.index * spec.window.as_micros()),
            events: w.events,
            msgs_sent: w.msgs_sent,
            msgs_received: w.msgs_received,
            msgs_lost: w.msgs_lost,
            bytes_sent: w.bytes_sent,
            alive: w.alive,
            crashed: w.crashed,
            load_mean,
            jain,
            gini: gini_from_load_sketch(&w.load_hist, w.load_sum),
            max_min,
            latency_p50_ms: w.latency_hist.quantile(0.5),
            latency_p95_ms: w.latency_hist.quantile(0.95),
            latency_p99_ms: w.latency_hist.quantile(0.99),
        }
    }
}

/// Gini coefficient of a non-negative integer distribution summarized
/// by a histogram sketch plus its exact total mass.
///
/// Grouped computation over the (already sorted) buckets, valuing each
/// in-range group at its bucket's **lower bound** — exact for integer
/// counts when buckets are unit-wide (the default
/// [`TelemetrySpec`] geometry), so idle nodes are valued at 0, not at a
/// midpoint. The overflow group is valued at its **exact mean**,
/// recovered from the residual of `total` (the true Σx, tracked
/// separately as an integer): a hotspot node forwarding thousands of
/// messages per window keeps its full weight instead of being clipped
/// to the histogram's upper bound, which is what lets the Gini series
/// rank a broker hotspot above a well-spread gossip overlay.
///
/// The only approximation left is within-group: values sharing a bucket
/// (or the overflow) are treated as equal, which can only *under*state
/// inequality, never invert a clear ranking. Deterministic from the
/// merged integer state.
pub fn gini_from_load_sketch(h: &Histogram, total: u64) -> f64 {
    let n = h.count();
    if n == 0 || total == 0 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    let mut weighted = 0.0f64;
    let mut rank = 0u64; // ranks consumed so far
    let group = |value: f64, count: u64, sum: &mut f64, weighted: &mut f64, rank: &mut u64| {
        if count == 0 {
            return;
        }
        let cf = count as f64;
        // Ranks rank+1 ..= rank+count, all at `value`:
        // Σ i·x over the group = value · (count·rank + count(count+1)/2).
        *weighted += value * (cf * *rank as f64 + cf * (cf + 1.0) / 2.0);
        *sum += cf * value;
        *rank += count;
    };
    // Groups ascending: underflow at `lo` (impossible for `lo == 0`
    // non-negative data, handled defensively), buckets at their lower
    // bounds, then the overflow at its exact mean.
    group(h.lo(), h.underflow(), &mut sum, &mut weighted, &mut rank);
    for (i, &c) in h.bucket_counts().iter().enumerate() {
        group(h.bucket_range(i).0, c, &mut sum, &mut weighted, &mut rank);
    }
    if h.overflow() > 0 {
        // Lower-bound valuation understates the in-range mass, so the
        // residual mean is ≥ `hi` — the groups stay sorted.
        let mean = ((total as f64 - sum) / h.overflow() as f64).max(h.hi());
        group(mean, h.overflow(), &mut sum, &mut weighted, &mut rank);
    }
    if sum == 0.0 {
        return 0.0;
    }
    let nf = n as f64;
    ((2.0 * weighted) / (nf * sum) - (nf + 1.0) / nf).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TelemetrySpec {
        TelemetrySpec {
            window: SimDuration::from_millis(10),
            load_hi: 8.0,
            load_buckets: 8,
            latency_hi_ms: 50.0,
            latency_buckets: 10,
        }
    }

    #[test]
    fn sends_fold_into_the_right_window() {
        let mut c = ShardCollector::sequential(spec(), 2);
        let deliver = |at| SendFate::Delivered { at };
        // Window 0: node 0 sends twice, node 1 once.
        c.on_send(
            SimTime::from_millis(1),
            NodeId::new(0),
            10,
            deliver(SimTime::from_millis(3)),
        );
        c.on_send(
            SimTime::from_millis(2),
            NodeId::new(0),
            10,
            deliver(SimTime::from_millis(4)),
        );
        c.on_send(SimTime::from_millis(9), NodeId::new(1), 10, SendFate::Lost);
        // Window 1: one send by node 1, delivering in window 2.
        c.on_send(
            SimTime::from_millis(12),
            NodeId::new(1),
            10,
            deliver(SimTime::from_millis(21)),
        );
        let series = c.finalize(SimTime::from_millis(25));
        assert_eq!(series.windows.len(), 3);
        let w0 = &series.windows[0];
        assert_eq!(w0.msgs_sent, 3);
        assert_eq!(w0.msgs_lost, 1);
        assert_eq!(w0.bytes_sent, 30);
        assert_eq!(w0.alive, 2);
        assert_eq!((w0.load_sum, w0.load_min, w0.load_max), (3, 1, 2));
        assert_eq!(w0.load_sumsq, 5);
        assert_eq!(w0.latency_hist.count(), 2, "both deliveries land in w0");
        let w1 = &series.windows[1];
        assert_eq!(w1.msgs_sent, 1);
        assert_eq!(w1.latency_hist.count(), 0);
        let w2 = &series.windows[2];
        assert_eq!(w2.latency_hist.count(), 1, "delivery at 21ms keys to w2");
        assert_eq!(w2.msgs_sent, 0);
    }

    #[test]
    fn population_counts_track_liveness_at_window_close() {
        let mut c = ShardCollector::sequential(spec(), 3);
        c.on_event(SimTime::from_millis(2));
        c.on_liveness(SimTime::from_millis(5), NodeId::new(1), false);
        // Crash at 5ms (window 0), rejoin at 25ms (window 2).
        c.on_liveness(SimTime::from_millis(25), NodeId::new(1), true);
        let series = c.finalize(SimTime::from_millis(39));
        let pops: Vec<(u64, u64)> = series
            .windows
            .iter()
            .map(|w| (w.alive, w.crashed))
            .collect();
        assert_eq!(pops, vec![(2, 1), (2, 1), (3, 0), (3, 0)]);
    }

    #[test]
    fn empty_windows_between_activity_are_emitted() {
        let mut c = ShardCollector::sequential(spec(), 1);
        c.on_event(SimTime::from_millis(1));
        c.on_event(SimTime::from_millis(35)); // windows 1 and 2 stay empty
        let series = c.finalize(SimTime::from_millis(39));
        let events: Vec<u64> = series.windows.iter().map(|w| w.events).collect();
        assert_eq!(events, vec![1, 0, 0, 1]);
        assert!(series.windows.iter().all(|w| w.alive == 1));
    }

    #[test]
    fn shard_merge_equals_single_collector() {
        // Drive the same observation stream through one full collector
        // and through two shard-local halves, then compare.
        let n = 4;
        let owned_a: Vec<u32> = vec![0, 2];
        let owned_b: Vec<u32> = vec![1, 3];
        let mut whole = ShardCollector::sequential(spec(), n);
        let mut a = ShardCollector::new(spec(), n, &owned_a);
        let mut b = ShardCollector::new(spec(), n, &owned_b);
        let feed = |c: &mut ShardCollector, only: Option<&[u32]>| {
            let sees = |id: u32| only.is_none_or(|o| o.contains(&id));
            for step in 0u64..40 {
                let now = SimTime::from_millis(step * 3);
                let node = (step % 4) as u32;
                if !sees(node) {
                    continue;
                }
                c.on_event(now);
                let at = now + SimDuration::from_millis(7 + step % 5);
                c.on_send(now, NodeId::new(node), 8, SendFate::Delivered { at });
                if step % 7 == 0 {
                    c.on_send(now, NodeId::new(node), 8, SendFate::Lost);
                }
                if step == 11 {
                    c.on_liveness(now, NodeId::new(node), false);
                }
                if step == 23 {
                    c.on_liveness(now, NodeId::new(node), true);
                }
            }
        };
        feed(&mut whole, None);
        feed(&mut a, Some(&owned_a));
        feed(&mut b, Some(&owned_b));
        let horizon = SimTime::from_millis(130);
        let expect = whole.finalize(horizon);
        let mut merged = a.finalize(horizon);
        merged.merge(&b.finalize(horizon));
        assert_eq!(merged, expect, "shard merge must be exact");
        // And in the other order.
        let mut a2 = ShardCollector::new(spec(), n, &owned_a);
        let mut b2 = ShardCollector::new(spec(), n, &owned_b);
        feed(&mut a2, Some(&owned_a));
        feed(&mut b2, Some(&owned_b));
        let mut merged2 = b2.finalize(horizon);
        merged2.merge(&a2.finalize(horizon));
        assert_eq!(merged2, expect, "merge must be commutative");
    }

    #[test]
    fn rows_derive_fairness_exactly() {
        let mut c = ShardCollector::sequential(spec(), 4);
        // Node 0 sends 3, node 1 sends 1; nodes 2 and 3 idle.
        for (ms, node) in [(1u64, 0u32), (2, 0), (3, 0), (4, 1)] {
            c.on_send(
                SimTime::from_millis(ms),
                NodeId::new(node),
                4,
                SendFate::Delivered {
                    at: SimTime::from_millis(ms + 5),
                },
            );
        }
        let series = c.finalize(SimTime::from_millis(9));
        let rows = series.rows();
        assert_eq!(rows.len(), 1);
        let r = rows[0];
        // jain([3,1,0,0]) = 16 / (4 * 10) = 0.4
        assert!((r.jain - 0.4).abs() < 1e-12, "jain={}", r.jain);
        assert_eq!(r.max_min, f64::INFINITY);
        assert_eq!(r.load_mean, 1.0);
        // Unit-width buckets make the sketch Gini exact here:
        // gini([3,1,0,0]) = 0.625.
        assert!(
            (r.gini - 0.625).abs() < 1e-12,
            "gini over [3,1,0,0] must be exact, got {}",
            r.gini
        );
        assert!(r.latency_p50_ms.is_some());
    }

    #[test]
    fn gini_sketch_is_exact_on_unit_buckets() {
        // Unit-wide buckets hold one integer value each, so the grouped
        // computation reproduces the exact Gini.
        let mut h = Histogram::new(0.0, 8.0, 8).unwrap();
        for v in [0.0f64, 1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        let g = gini_from_load_sketch(&h, 10);
        let expect = fed_util::fairness::gini_coefficient(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        assert!((g - expect).abs() < 1e-12, "g={g} expect={expect}");
        assert_eq!(
            gini_from_load_sketch(&Histogram::new(0.0, 1.0, 1).unwrap(), 0),
            0.0
        );
    }

    /// A hotspot far beyond the histogram range keeps its full weight:
    /// the overflow is valued at its exact residual mean, so a
    /// broker-style concentration reads as near-total inequality instead
    /// of being clipped to the bucket ceiling.
    #[test]
    fn gini_sketch_tracks_hotspots_past_the_histogram_range() {
        let mut h = Histogram::new(0.0, 64.0, 64).unwrap();
        let mut exact = vec![0.0; 249];
        for &v in &exact {
            h.record(v);
        }
        h.record(4_496.0); // one broker-like hot node, deep in overflow
        exact.push(4_496.0);
        let g = gini_from_load_sketch(&h, 4_496);
        let expect = fed_util::fairness::gini_coefficient(&exact);
        assert!(
            (g - expect).abs() < 1e-9,
            "hotspot gini must stay exact: g={g} expect={expect}"
        );
        assert!(g > 0.99, "near-total concentration, got {g}");
    }

    #[test]
    fn boundary_event_belongs_to_the_later_window() {
        let mut c = ShardCollector::sequential(spec(), 1);
        c.on_event(SimTime::from_millis(10)); // exactly the w0/w1 boundary
        let series = c.finalize(SimTime::from_millis(10));
        assert_eq!(series.windows[0].events, 0);
        assert_eq!(series.windows[1].events, 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let bad = TelemetrySpec {
            window: SimDuration::ZERO,
            ..TelemetrySpec::default()
        };
        let _ = ShardCollector::sequential(bad, 1);
    }
}
