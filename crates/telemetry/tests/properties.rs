//! Property tests for the telemetry determinism contract: shard-local
//! collector merge must be associative and commutative (exact), so any
//! merge order over any shard partition yields the byte-identical global
//! series — the invariant behind the cross-engine series parity.

use fed_sim::exec::{Probe, SendFate};
use fed_sim::protocol::NodeId;
use fed_sim::time::{SimDuration, SimTime};
use fed_telemetry::{ShardCollector, TelemetrySeries, TelemetrySpec};
use fed_util::rng::{Rng64, Xoshiro256StarStar};
use proptest::prelude::*;

fn spec() -> TelemetrySpec {
    TelemetrySpec {
        window: SimDuration::from_millis(20),
        load_hi: 16.0,
        load_buckets: 16,
        latency_hi_ms: 40.0,
        latency_buckets: 8,
    }
}

/// Drives a collector owning `owned` (out of `n`) with a seeded
/// pseudo-random observation stream and finalizes it.
///
/// The stream is monotone in time (like a real engine's dispatch order)
/// and every shard derives observations from the same global event list,
/// filtered to its owned nodes — mimicking how the cluster splits one
/// virtual world across kernels.
fn shard_series(seed: u64, n: u32, owned: &[u32], events: u64) -> TelemetrySeries {
    let mut c = ShardCollector::new(spec(), n as usize, owned);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut t = 0u64;
    for _ in 0..events {
        // Draw every choice unconditionally so all shards replay the
        // identical global stream and only *act* on their owned slice.
        t += rng.range_u64(9_000);
        let now = SimTime::from_micros(t);
        let node = rng.range_u64(n as u64) as u32;
        let kind = rng.range_u64(8);
        let lat = 1_000 + rng.range_u64(45_000);
        let coin = rng.range_u64(2) == 0;
        if !owned.contains(&node) {
            continue;
        }
        c.on_event(now);
        match kind {
            0..=4 => {
                let at = now + SimDuration::from_micros(lat);
                c.on_send(now, NodeId::new(node), 8 + kind, SendFate::Delivered { at });
            }
            5 => c.on_send(now, NodeId::new(node), 8, SendFate::Lost),
            6 => c.on_receive(now, NodeId::new(node), 16),
            _ => c.on_liveness(now, NodeId::new(node), coin),
        }
    }
    c.finalize(SimTime::from_micros(t + 50_000))
}

/// Splits `0..n` into `shards` round-robin owned lists.
fn partition(n: u32, shards: u32) -> Vec<Vec<u32>> {
    let mut owned = vec![Vec::new(); shards as usize];
    for id in 0..n {
        owned[(id % shards) as usize].push(id);
    }
    owned
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c) and a ⊔ b == b ⊔ a over shard series
    /// of one virtual world.
    #[test]
    fn merge_is_associative_and_commutative(seed in any::<u64>(), n in 3u32..24, events in 1u64..400) {
        let parts = partition(n, 3);
        let series: Vec<TelemetrySeries> = parts
            .iter()
            .map(|owned| shard_series(seed, n, owned, events))
            .collect();
        let [a, b, c] = [&series[0], &series[1], &series[2]];
        // Left fold: (a + b) + c.
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        // Right fold: a + (b + c).
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must be associative");
        // Commutativity: c + b + a.
        let mut rev = c.clone();
        rev.merge(b);
        rev.merge(a);
        prop_assert_eq!(&left, &rev, "merge must be commutative");
    }

    /// Merging any shard partition reproduces the single-collector
    /// series exactly — the heart of the cross-engine parity contract.
    #[test]
    fn any_partition_merges_to_the_sequential_series(seed in any::<u64>(), n in 2u32..24, shards in 1u32..6, events in 1u64..400) {
        let shards = shards.min(n);
        let whole: Vec<u32> = (0..n).collect();
        let expect = shard_series(seed, n, &whole, events);
        let mut merged: Option<TelemetrySeries> = None;
        for owned in partition(n, shards) {
            let s = shard_series(seed, n, &owned, events);
            match merged.as_mut() {
                None => merged = Some(s),
                Some(m) => m.merge(&s),
            }
        }
        prop_assert_eq!(merged.unwrap(), expect);
    }
}
