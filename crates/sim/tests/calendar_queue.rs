//! Property-based equivalence of the calendar [`EventQueue`] with a
//! reference binary heap.
//!
//! The calendar queue replaces the seed-era `BinaryHeap` on the
//! simulation hot path; these tests pin down that the replacement is
//! observationally identical: for any interleaving of pushes and pops —
//! including same-time and same-`(time, src)` key collisions, pushes
//! behind the pop point, and far-future times that force calendar
//! re-bases — the pop sequence is exactly the reference key order.

use fed_sim::exec::{EventKey, EventKind, EventQueue};
use fed_sim::{Context, NodeId, Protocol, SimTime};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Inert protocol: the queues are exercised directly.
struct Nop;
impl Protocol for Nop {
    type Msg = ();
    type Cmd = u64;
    fn on_init(&mut self, _ctx: &mut Context<'_, ()>) {}
    fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _msg: ()) {}
    fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _token: u64) {}
}

fn tagged(key: EventKey, tag: u64) -> (EventKey, EventKind<Nop>) {
    (
        key,
        EventKind::Command {
            node: NodeId::new(0),
            cmd: tag,
        },
    )
}

fn tag_of(kind: &EventKind<Nop>) -> u64 {
    match kind {
        EventKind::Command { cmd, .. } => *cmd,
        _ => panic!("only commands are pushed"),
    }
}

/// Key strategy engineered for collisions: tiny time/src/seq ranges make
/// same-time and same-`(time, src)` keys frequent.
fn colliding_key() -> impl Strategy<Value = EventKey> {
    (0u64..300, 0u32..4, 0u64..4).prop_map(|(us, src, seq)| EventKey {
        time: SimTime::from_micros(us),
        src,
        seq,
    })
}

/// Key strategy spanning every calendar regime: the initial epoch, the
/// first few re-bases, and times far past the widest bucket geometry
/// (2^44 µs), including the saturation edge near `u64::MAX`.
fn far_future_key() -> impl Strategy<Value = EventKey> {
    let time = prop_oneof![
        0u64..5_000,                        // initial epoch
        2_000_000u64..3_000_000,            // epoch boundary region
        1u64 << 32..(1u64 << 32) + 100_000, // after several re-bases
        1u64 << 50..(1u64 << 50) + 1_000,   // beyond MAX_BUCKET_SHIFT
        (u64::MAX - 1_000)..u64::MAX,       // saturation edge
    ];
    (time, 0u32..16, 0u64..8).prop_map(|(us, src, seq)| EventKey {
        time: SimTime::from_micros(us),
        src,
        seq,
    })
}

/// One step of an interleaved workload.
#[derive(Debug, Clone)]
enum Op {
    Push(EventKey),
    Pop,
    /// `pop_before(bound)` with a bound in µs.
    PopBefore(u64),
}

fn ops(key: impl Strategy<Value = EventKey> + 'static) -> impl Strategy<Value = Vec<Op>> {
    // The vendored proptest shim has no weighted arms; repetition skews
    // the mix toward pushes so queues actually fill up.
    prop::collection::vec(
        prop_oneof![
            key.clone().prop_map(Op::Push),
            key.clone().prop_map(Op::Push),
            key.clone().prop_map(Op::Push),
            key.prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Pop),
            (0u64..4_000).prop_map(Op::PopBefore),
        ],
        1..200,
    )
}

/// Reference queue: the seed-era `BinaryHeap` with the reversed
/// comparator, popping `(key, tag)` min-first. Ties on the full key pop
/// in unspecified tag order there too, so comparisons below only demand
/// equal *keys* plus an equal multiset of tags per key.
#[derive(Default)]
struct RefQueue {
    heap: BinaryHeap<Reverse<(EventKey, u64)>>,
}

impl RefQueue {
    fn push(&mut self, key: EventKey, tag: u64) {
        self.heap.push(Reverse((key, tag)));
    }
    fn pop(&mut self) -> Option<(EventKey, u64)> {
        self.heap.pop().map(|Reverse(e)| e)
    }
    fn pop_before(&mut self, end: SimTime) -> Option<(EventKey, u64)> {
        if self.heap.peek()?.0 .0.time < end {
            self.pop()
        } else {
            None
        }
    }
    fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((key, _))| key.time)
    }
}

/// Drives both queues through the same op sequence and asserts every
/// observable agrees: pop keys, `next_time`, `len`, and — because equal
/// keys may legally pop in different tag orders — the multiset of tags
/// within each run of equal keys.
fn assert_equivalent(ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut cal: EventQueue<Nop> = EventQueue::new();
    let mut reference = RefQueue::default();
    let mut cal_log: Vec<(EventKey, u64)> = Vec::new();
    let mut ref_log: Vec<(EventKey, u64)> = Vec::new();
    let mut tag = 0u64;
    for op in ops {
        match op {
            Op::Push(key) => {
                let (key, kind) = tagged(key, tag);
                cal.push(key, kind);
                reference.push(key, tag);
                tag += 1;
            }
            Op::Pop => {
                let got = cal.pop().map(|(key, kind)| (key, tag_of(&kind)));
                let want = reference.pop();
                prop_assert_eq!(got.is_some(), want.is_some(), "pop presence diverged");
                if let (Some(g), Some(w)) = (got, want) {
                    prop_assert_eq!(g.0, w.0, "pop key diverged");
                    cal_log.push(g);
                    ref_log.push(w);
                }
            }
            Op::PopBefore(us) => {
                let end = SimTime::from_micros(us);
                let got = cal.pop_before(end).map(|(key, kind)| (key, tag_of(&kind)));
                let want = reference.pop_before(end);
                prop_assert_eq!(
                    got.is_some(),
                    want.is_some(),
                    "pop_before presence diverged"
                );
                if let (Some(g), Some(w)) = (got, want) {
                    prop_assert_eq!(g.0, w.0, "pop_before key diverged");
                    cal_log.push(g);
                    ref_log.push(w);
                }
            }
        }
        prop_assert_eq!(cal.next_time(), reference.next_time(), "next_time diverged");
        prop_assert_eq!(cal.len(), reference.heap.len(), "len diverged");
        prop_assert_eq!(cal.is_empty(), reference.heap.is_empty());
    }
    // Drain the rest: total order must match to the end.
    loop {
        let got = cal.pop().map(|(key, kind)| (key, tag_of(&kind)));
        let want = reference.pop();
        prop_assert_eq!(got.is_some(), want.is_some(), "drain presence diverged");
        match (got, want) {
            (Some(g), Some(w)) => {
                prop_assert_eq!(g.0, w.0, "drain key diverged");
                cal_log.push(g);
                ref_log.push(w);
            }
            _ => break,
        }
    }
    // Tags within each run of equal keys must form the same multiset.
    let mut i = 0;
    while i < cal_log.len() {
        let key = cal_log[i].0;
        let mut j = i;
        while j < cal_log.len() && cal_log[j].0 == key {
            j += 1;
        }
        let mut a: Vec<u64> = cal_log[i..j].iter().map(|e| e.1).collect();
        let mut b: Vec<u64> = ref_log[i..j].iter().map(|e| e.1).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "tag multiset diverged for key {:?}", key);
        i = j;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Dense collision workloads: many events share a time or a
    /// `(time, src)` prefix, and pops interleave with pushes.
    #[test]
    fn matches_reference_heap_under_collisions(workload in ops(colliding_key())) {
        assert_equivalent(workload)?;
    }

    /// Sparse far-future workloads: times jump across calendar epochs,
    /// past the widest bucket geometry and up to the `u64` edge, forcing
    /// overflow handling and repeated re-bases.
    #[test]
    fn matches_reference_heap_across_rollovers(workload in ops(far_future_key())) {
        assert_equivalent(workload)?;
    }

    /// Pure push-then-drain at scale: the whole-queue sort order is the
    /// exact lexicographic key order.
    #[test]
    fn drains_in_exact_key_order(
        keys in prop::collection::vec(far_future_key(), 1..400),
    ) {
        let mut cal: EventQueue<Nop> = EventQueue::new();
        for (tag, key) in keys.iter().enumerate() {
            let (key, kind) = tagged(*key, tag as u64);
            cal.push(key, kind);
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut popped = Vec::with_capacity(keys.len());
        while let Some((key, _)) = cal.pop() {
            popped.push(key);
        }
        prop_assert_eq!(popped, sorted);
    }
}
