//! Property-based tests of the simulation engine's ordering and
//! determinism guarantees.

use fed_sim::network::{LatencyModel, NetworkModel};
use fed_sim::{Context, NodeId, Protocol, SimDuration, SimTime, Simulation};
use proptest::prelude::*;

/// Records every callback with its timestamp.
#[derive(Debug, Default)]
struct Recorder {
    log: Vec<(u64, String)>,
}

#[derive(Debug, Clone)]
enum Cmd {
    Send(u32, u32),
    Timer(u64, u64),
}

impl Protocol for Recorder {
    type Msg = u32;
    type Cmd = Cmd;

    fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
        self.log.push((ctx.now().as_micros(), "init".into()));
    }
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
        self.log
            .push((ctx.now().as_micros(), format!("msg {from} {msg}")));
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, u32>, token: u64) {
        self.log
            .push((ctx.now().as_micros(), format!("timer {token}")));
    }
    fn on_command(&mut self, ctx: &mut Context<'_, u32>, cmd: Cmd) {
        self.log.push((ctx.now().as_micros(), "cmd".into()));
        match cmd {
            Cmd::Send(to, value) => ctx.send(NodeId::new(to), value),
            Cmd::Timer(delay_ms, token) => ctx.set_timer(SimDuration::from_millis(delay_ms), token),
        }
    }
}

fn cmd_strategy(n: u32) -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (0..n, any::<u32>()).prop_map(|(to, v)| Cmd::Send(to, v)),
        (0u64..500, any::<u64>()).prop_map(|(d, t)| Cmd::Timer(d, t)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every node observes callbacks in non-decreasing time order.
    #[test]
    fn per_node_time_is_monotone(
        seed in any::<u64>(),
        cmds in prop::collection::vec((0u64..2_000, 0u32..8, cmd_strategy(8)), 1..40),
    ) {
        let net = NetworkModel::lossy(
            LatencyModel::Uniform {
                lo: SimDuration::from_millis(1),
                hi: SimDuration::from_millis(80),
            },
            0.1,
        );
        let mut sim = Simulation::new(8, net, seed, |_, _| Recorder::default());
        for (at_ms, node, cmd) in &cmds {
            sim.schedule_command(
                SimTime::from_millis(*at_ms),
                NodeId::new(*node),
                cmd.clone(),
            );
        }
        sim.run_until(SimTime::from_secs(10));
        for (id, node) in sim.nodes() {
            let times: Vec<u64> = node.log.iter().map(|(t, _)| *t).collect();
            prop_assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "{id} saw time go backwards: {times:?}"
            );
        }
    }

    /// Identical (seed, workload) ⇒ identical callback logs; the clock
    /// never exceeds the run target.
    #[test]
    fn engine_is_deterministic(
        seed in any::<u64>(),
        cmds in prop::collection::vec((0u64..1_000, 0u32..6, cmd_strategy(6)), 1..24),
    ) {
        let build = |seed: u64| {
            let net = NetworkModel::lossy(
                LatencyModel::LogNormalMs { median_ms: 20.0, sigma: 0.5, floor: SimDuration::ZERO },
                0.2,
            );
            let mut sim = Simulation::new(6, net, seed, |_, _| Recorder::default());
            for (at_ms, node, cmd) in &cmds {
                sim.schedule_command(
                    SimTime::from_millis(*at_ms),
                    NodeId::new(*node),
                    cmd.clone(),
                );
            }
            sim.run_until(SimTime::from_secs(5));
            prop_assert!(sim.now() == SimTime::from_secs(5));
            let logs: Vec<Vec<(u64, String)>> =
                sim.nodes().map(|(_, r)| r.log.clone()).collect();
            Ok((logs, sim.events_processed()))
        };
        prop_assert_eq!(build(seed)?, build(seed)?);
    }

    /// Crashed nodes receive no callbacks after the crash instant.
    #[test]
    fn crash_is_a_hard_stop(
        seed in any::<u64>(),
        crash_ms in 100u64..1_000,
        cmds in prop::collection::vec((0u64..2_000, cmd_strategy(4)), 1..30),
    ) {
        let mut sim = Simulation::new(4, NetworkModel::default(), seed, |_, _| Recorder::default());
        for (at_ms, cmd) in &cmds {
            // All commands target node 0, which we crash.
            sim.schedule_command(SimTime::from_millis(*at_ms), NodeId::new(0), cmd.clone());
        }
        sim.schedule_crash(SimTime::from_millis(crash_ms), NodeId::new(0));
        sim.run_until(SimTime::from_secs(10));
        let victim = sim.node(NodeId::new(0)).expect("state survives crash");
        for (t, what) in &victim.log {
            prop_assert!(
                *t <= crash_ms * 1_000,
                "callback {what:?} at {t}us after crash at {}us",
                crash_ms * 1_000
            );
        }
    }

    /// Transport accounting balances: every received message was sent,
    /// and sent = received + lost on a per-run basis.
    #[test]
    fn transport_conservation(
        seed in any::<u64>(),
        loss in 0.0f64..0.9,
        cmds in prop::collection::vec((0u64..1_000, 0u32..6, cmd_strategy(6)), 1..40),
    ) {
        let net = NetworkModel::lossy(
            LatencyModel::Constant(SimDuration::from_millis(5)),
            loss,
        );
        let mut sim = Simulation::new(6, net, seed, |_, _| Recorder::default());
        for (at_ms, node, cmd) in &cmds {
            sim.schedule_command(
                SimTime::from_millis(*at_ms),
                NodeId::new(*node),
                cmd.clone(),
            );
        }
        sim.run_until(SimTime::from_secs(5));
        let sent: u64 = sim.transport_stats_all().iter().map(|s| s.msgs_sent).sum();
        let received: u64 = sim.transport_stats_all().iter().map(|s| s.msgs_received).sum();
        let lost: u64 = sim.transport_stats_all().iter().map(|s| s.msgs_lost).sum();
        prop_assert_eq!(sent, received + lost);
    }
}

/// Shard-count invariance of the canonical [`EventKey`] order: splitting
/// an event set across any number of per-shard [`EventQueue`]s and
/// merge-popping them (always taking the queue with the earliest head, as
/// the barrier protocol does) yields exactly the single-queue pop order.
mod event_key_sharding {
    use super::*;
    use fed_sim::exec::{EventKey, EventKind, EventQueue};
    use fed_sim::Context;

    /// Inert protocol: the queues are exercised directly.
    struct Nop;
    impl Protocol for Nop {
        type Msg = ();
        type Cmd = u64;
        fn on_init(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _msg: ()) {}
        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _token: u64) {}
    }

    fn key_strategy() -> impl Strategy<Value = EventKey> {
        (0u64..5_000, 0u32..64, 0u64..16).prop_map(|(us, src, seq)| EventKey {
            time: SimTime::from_micros(us),
            src,
            seq,
        })
    }

    fn pop_all(queue: &mut EventQueue<Nop>) -> Vec<(EventKey, u64)> {
        let mut out = Vec::new();
        while let Some((key, kind)) = queue.pop() {
            let EventKind::Command { cmd, .. } = kind else {
                panic!("only commands were pushed");
            };
            out.push((key, cmd));
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Merge-popping sharded queues reproduces the global key order
        /// for every shard count — the heart of the cluster's
        /// determinism argument.
        #[test]
        fn merged_shard_queues_preserve_global_order(
            keys in prop::collection::vec(key_strategy(), 1..120),
            shards in 1usize..8,
        ) {
            // Tag each event so equal keys stay distinguishable.
            let mut global: EventQueue<Nop> = EventQueue::new();
            let mut sharded: Vec<EventQueue<Nop>> =
                (0..shards).map(|_| EventQueue::new()).collect();
            for (tag, key) in keys.iter().enumerate() {
                let kind = || EventKind::Command {
                    node: NodeId::new(0),
                    cmd: tag as u64,
                };
                global.push(*key, kind());
                // Round-robin by producer, like the cluster's node
                // partitioning.
                sharded[key.src as usize % shards].push(*key, kind());
            }
            let expected = pop_all(&mut global);
            // Merge: one event per iteration, from the shard whose head
            // key is globally minimal. The queue only exposes the head
            // *time*, so pop every time-tied head, keep the least key and
            // push the rest back.
            let mut merged = Vec::new();
            while let Some(min_time) =
                (0..shards).filter_map(|s| sharded[s].next_time()).min()
            {
                let mut heads: Vec<(EventKey, u64, usize)> = Vec::new();
                for (s, shard) in sharded.iter_mut().enumerate() {
                    if shard.next_time() == Some(min_time) {
                        let (key, kind) = shard.pop().expect("non-empty");
                        let EventKind::Command { cmd, .. } = kind else {
                            panic!("only commands were pushed");
                        };
                        heads.push((key, cmd, s));
                    }
                }
                heads.sort_unstable_by_key(|&(key, _, _)| key);
                let (key, cmd, _) = heads.remove(0);
                merged.push((key, cmd));
                for (key, cmd, s) in heads {
                    sharded[s].push(
                        key,
                        EventKind::Command {
                            node: NodeId::new(0),
                            cmd,
                        },
                    );
                }
            }
            // Sort stability check: both orders must agree on keys; tags
            // of *equal* keys may legitimately tie, so compare keys and
            // the multiset of tags per key.
            prop_assert_eq!(merged.len(), expected.len());
            for (a, b) in merged.iter().zip(&expected) {
                prop_assert_eq!(a.0, b.0, "key order diverged");
            }
        }

        /// EventKey's derived order is the documented lexicographic
        /// `(time, src, seq)` order.
        #[test]
        fn event_key_order_is_lexicographic(a in key_strategy(), b in key_strategy()) {
            let lex = a
                .time
                .cmp(&b.time)
                .then(a.src.cmp(&b.src))
                .then(a.seq.cmp(&b.seq));
            prop_assert_eq!(a.cmp(&b), lex);
        }
    }
}
