//! Property-based tests of the simulation engine's ordering and
//! determinism guarantees.

use fed_sim::network::{LatencyModel, NetworkModel};
use fed_sim::{Context, NodeId, Protocol, SimDuration, SimTime, Simulation};
use proptest::prelude::*;

/// Records every callback with its timestamp.
#[derive(Debug, Default)]
struct Recorder {
    log: Vec<(u64, String)>,
}

#[derive(Debug, Clone)]
enum Cmd {
    Send(u32, u32),
    Timer(u64, u64),
}

impl Protocol for Recorder {
    type Msg = u32;
    type Cmd = Cmd;

    fn on_init(&mut self, ctx: &mut Context<'_, u32>) {
        self.log.push((ctx.now().as_micros(), "init".into()));
    }
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
        self.log
            .push((ctx.now().as_micros(), format!("msg {from} {msg}")));
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, u32>, token: u64) {
        self.log
            .push((ctx.now().as_micros(), format!("timer {token}")));
    }
    fn on_command(&mut self, ctx: &mut Context<'_, u32>, cmd: Cmd) {
        self.log.push((ctx.now().as_micros(), "cmd".into()));
        match cmd {
            Cmd::Send(to, value) => ctx.send(NodeId::new(to), value),
            Cmd::Timer(delay_ms, token) => ctx.set_timer(SimDuration::from_millis(delay_ms), token),
        }
    }
}

fn cmd_strategy(n: u32) -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (0..n, any::<u32>()).prop_map(|(to, v)| Cmd::Send(to, v)),
        (0u64..500, any::<u64>()).prop_map(|(d, t)| Cmd::Timer(d, t)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every node observes callbacks in non-decreasing time order.
    #[test]
    fn per_node_time_is_monotone(
        seed in any::<u64>(),
        cmds in prop::collection::vec((0u64..2_000, 0u32..8, cmd_strategy(8)), 1..40),
    ) {
        let net = NetworkModel::lossy(
            LatencyModel::Uniform {
                lo: SimDuration::from_millis(1),
                hi: SimDuration::from_millis(80),
            },
            0.1,
        );
        let mut sim = Simulation::new(8, net, seed, |_, _| Recorder::default());
        for (at_ms, node, cmd) in &cmds {
            sim.schedule_command(
                SimTime::from_millis(*at_ms),
                NodeId::new(*node),
                cmd.clone(),
            );
        }
        sim.run_until(SimTime::from_secs(10));
        for (id, node) in sim.nodes() {
            let times: Vec<u64> = node.log.iter().map(|(t, _)| *t).collect();
            prop_assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "{id} saw time go backwards: {times:?}"
            );
        }
    }

    /// Identical (seed, workload) ⇒ identical callback logs; the clock
    /// never exceeds the run target.
    #[test]
    fn engine_is_deterministic(
        seed in any::<u64>(),
        cmds in prop::collection::vec((0u64..1_000, 0u32..6, cmd_strategy(6)), 1..24),
    ) {
        let build = |seed: u64| {
            let net = NetworkModel::lossy(
                LatencyModel::LogNormalMs { median_ms: 20.0, sigma: 0.5 },
                0.2,
            );
            let mut sim = Simulation::new(6, net, seed, |_, _| Recorder::default());
            for (at_ms, node, cmd) in &cmds {
                sim.schedule_command(
                    SimTime::from_millis(*at_ms),
                    NodeId::new(*node),
                    cmd.clone(),
                );
            }
            sim.run_until(SimTime::from_secs(5));
            prop_assert!(sim.now() == SimTime::from_secs(5));
            let logs: Vec<Vec<(u64, String)>> =
                sim.nodes().map(|(_, r)| r.log.clone()).collect();
            Ok((logs, sim.events_processed()))
        };
        prop_assert_eq!(build(seed)?, build(seed)?);
    }

    /// Crashed nodes receive no callbacks after the crash instant.
    #[test]
    fn crash_is_a_hard_stop(
        seed in any::<u64>(),
        crash_ms in 100u64..1_000,
        cmds in prop::collection::vec((0u64..2_000, cmd_strategy(4)), 1..30),
    ) {
        let mut sim = Simulation::new(4, NetworkModel::default(), seed, |_, _| Recorder::default());
        for (at_ms, cmd) in &cmds {
            // All commands target node 0, which we crash.
            sim.schedule_command(SimTime::from_millis(*at_ms), NodeId::new(0), cmd.clone());
        }
        sim.schedule_crash(SimTime::from_millis(crash_ms), NodeId::new(0));
        sim.run_until(SimTime::from_secs(10));
        let victim = sim.node(NodeId::new(0)).expect("state survives crash");
        for (t, what) in &victim.log {
            prop_assert!(
                *t <= crash_ms * 1_000,
                "callback {what:?} at {t}us after crash at {}us",
                crash_ms * 1_000
            );
        }
    }

    /// Transport accounting balances: every received message was sent,
    /// and sent = received + lost on a per-run basis.
    #[test]
    fn transport_conservation(
        seed in any::<u64>(),
        loss in 0.0f64..0.9,
        cmds in prop::collection::vec((0u64..1_000, 0u32..6, cmd_strategy(6)), 1..40),
    ) {
        let net = NetworkModel::lossy(
            LatencyModel::Constant(SimDuration::from_millis(5)),
            loss,
        );
        let mut sim = Simulation::new(6, net, seed, |_, _| Recorder::default());
        for (at_ms, node, cmd) in &cmds {
            sim.schedule_command(
                SimTime::from_millis(*at_ms),
                NodeId::new(*node),
                cmd.clone(),
            );
        }
        sim.run_until(SimTime::from_secs(5));
        let sent: u64 = sim.transport_stats_all().iter().map(|s| s.msgs_sent).sum();
        let received: u64 = sim.transport_stats_all().iter().map(|s| s.msgs_received).sum();
        let lost: u64 = sim.transport_stats_all().iter().map(|s| s.msgs_lost).sum();
        prop_assert_eq!(sent, received + lost);
    }
}
