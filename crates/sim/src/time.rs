//! Virtual time for the discrete-event simulator.
//!
//! Time is a `u64` count of **microseconds** since simulation start. All
//! protocol code sees only [`SimTime`] and [`SimDuration`]; wall-clock time
//! never enters the simulation, which is what makes runs replayable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The instant `d` after this one, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0 as f64 / 1e6)
    }
}

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional milliseconds, rounding to microseconds.
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by an integer factor, saturating.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0 as f64 / 1e6)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(1500).as_millis(), 1);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert!((SimTime::from_millis(2500).as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_micros(7);
        assert_eq!(t2.as_micros(), 7);
        assert_eq!(
            (SimDuration::from_millis(5) - SimDuration::from_millis(7)).as_micros(),
            0,
            "subtraction saturates"
        );
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(9);
        assert_eq!(b.duration_since(a).as_millis(), 4);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn from_millis_f64_clamps() {
        assert_eq!(SimDuration::from_millis_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(u64::MAX / 1_000_000).saturating_mul(u64::MAX),
            SimDuration::from_micros(u64::MAX)
        );
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
