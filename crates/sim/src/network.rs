//! Network models: latency, loss and partitions.
//!
//! The model is deliberately link-agnostic: every message independently
//! samples a latency and a loss verdict. This matches the abstractions used
//! to evaluate the gossip protocols the paper builds on (Bimodal Multicast,
//! lpbcast, Cyclon), where fairness and reliability are properties of the
//! *overlay*, not of individual physical links.

use crate::time::SimDuration;
use fed_util::dist::{InvalidDistribution, LogNormal};
use fed_util::rng::Rng64;

/// How per-message latency is sampled.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Minimum latency.
        lo: SimDuration,
        /// Maximum latency.
        hi: SimDuration,
    },
    /// Log-normal with the given median (milliseconds) and shape — the
    /// classic heavy-tailed WAN model.
    ///
    /// The optional `floor` clamps every sample from below. A log-normal
    /// has no positive infimum, so without a floor the model's
    /// [`lower_bound`](LatencyModel::lower_bound) is zero and a sharded
    /// engine falls back to the 1 µs delivery floor as its conservative
    /// lookahead — collapsing barrier windows to microseconds. Real WAN
    /// paths have a physical propagation minimum; setting `floor` to it
    /// restores millisecond-wide windows at identical fidelity above the
    /// floor.
    LogNormalMs {
        /// Median latency in milliseconds.
        median_ms: f64,
        /// Shape parameter of the underlying normal (0 = constant).
        sigma: f64,
        /// Minimum latency; samples below are clamped up to it.
        /// [`SimDuration::ZERO`] means no floor.
        floor: SimDuration,
    },
}

impl LatencyModel {
    /// A lower bound on every latency this model can sample.
    ///
    /// Used by sharded runtimes as the conservative lookahead: no message
    /// can arrive sooner than `send_time + lower_bound()`. Heavy-tailed
    /// models without a positive infimum (an unfloored
    /// [`LatencyModel::LogNormalMs`]) return [`SimDuration::ZERO`]; the
    /// engine's 1 µs delivery floor (see
    /// [`crate::exec::MIN_NETWORK_LATENCY`]) still applies on top.
    pub fn lower_bound(&self) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { lo, .. } => *lo,
            LatencyModel::LogNormalMs { floor, .. } => *floor,
        }
    }

    /// Samples one latency value.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistribution`] if the model parameters are invalid
    /// (e.g. negative median); validated models never fail.
    pub fn sample<R: Rng64 + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<SimDuration, InvalidDistribution> {
        match self {
            LatencyModel::Constant(d) => Ok(*d),
            LatencyModel::Uniform { lo, hi } => {
                let (a, b) = (lo.as_micros(), hi.as_micros());
                if a >= b {
                    Ok(*lo)
                } else {
                    Ok(SimDuration::from_micros(a + rng.range_u64(b - a + 1)))
                }
            }
            LatencyModel::LogNormalMs {
                median_ms,
                sigma,
                floor,
            } => {
                let ln = LogNormal::from_median(*median_ms, *sigma)?;
                Ok(SimDuration::from_millis_f64(ln.sample(rng)).max(*floor))
            }
        }
    }
}

impl Default for LatencyModel {
    /// A 50 ms constant latency — a typical wide-area round-trip half.
    fn default() -> Self {
        LatencyModel::Constant(SimDuration::from_millis(50))
    }
}

/// Full network model: latency plus iid loss plus optional partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    latency: LatencyModel,
    loss_probability: f64,
    /// `groups[i]` is the partition group of node `i`; messages cross groups
    /// only when no partition is active.
    groups: Option<Vec<u32>>,
}

impl NetworkModel {
    /// A perfectly reliable network with the given latency model.
    pub fn reliable(latency: LatencyModel) -> Self {
        NetworkModel {
            latency,
            loss_probability: 0.0,
            groups: None,
        }
    }

    /// A lossy network: each message is independently dropped with
    /// probability `loss` (clamped to `[0, 1)`).
    pub fn lossy(latency: LatencyModel, loss: f64) -> Self {
        NetworkModel {
            latency,
            loss_probability: loss.clamp(0.0, 0.999_999),
            groups: None,
        }
    }

    /// The configured loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// The configured latency model.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// A lower bound on the delivery latency of any message this model
    /// delivers, floored at the engine's 1 µs minimum.
    ///
    /// This is the conservative lookahead of the model: a sharded runtime
    /// may process a time window of this width without waiting for
    /// messages sent inside the window by other shards.
    pub fn min_latency(&self) -> SimDuration {
        self.latency
            .lower_bound()
            .max(crate::exec::MIN_NETWORK_LATENCY)
    }

    /// Installs a partition: node `i` belongs to `groups[i]`; messages
    /// between different groups are dropped until [`NetworkModel::heal`].
    pub fn partition(&mut self, groups: Vec<u32>) {
        self.groups = Some(groups);
    }

    /// Removes any active partition.
    pub fn heal(&mut self) {
        self.groups = None;
    }

    /// Returns `true` when a partition is active.
    pub fn is_partitioned(&self) -> bool {
        self.groups.is_some()
    }

    /// Decides the fate of one message from `from` to `to`.
    ///
    /// Returns `Some(latency)` when the message is delivered, `None` when it
    /// is lost (random loss or partition). Nodes outside a configured
    /// partition vector are treated as group 0.
    pub fn transmit<R: Rng64 + ?Sized>(
        &self,
        rng: &mut R,
        from: usize,
        to: usize,
    ) -> Option<SimDuration> {
        if let Some(groups) = &self.groups {
            let gf = groups.get(from).copied().unwrap_or(0);
            let gt = groups.get(to).copied().unwrap_or(0);
            if gf != gt {
                return None;
            }
        }
        if self.loss_probability > 0.0 && rng.bernoulli(self.loss_probability) {
            return None;
        }
        // Validated at construction; latency sampling cannot fail for the
        // models constructible through the public API.
        self.latency.sample(rng).ok()
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::reliable(LatencyModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_util::rng::Xoshiro256StarStar;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(42)
    }

    #[test]
    fn constant_latency() {
        let m = LatencyModel::Constant(SimDuration::from_millis(10));
        let mut r = rng();
        assert_eq!(m.sample(&mut r).unwrap(), SimDuration::from_millis(10));
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_millis(10),
            hi: SimDuration::from_millis(20),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r).unwrap();
            assert!(d >= SimDuration::from_millis(10) && d <= SimDuration::from_millis(20));
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_millis(5),
            hi: SimDuration::from_millis(5),
        };
        let mut r = rng();
        assert_eq!(m.sample(&mut r).unwrap(), SimDuration::from_millis(5));
    }

    #[test]
    fn lognormal_latency_positive() {
        let m = LatencyModel::LogNormalMs {
            median_ms: 50.0,
            sigma: 0.5,
            floor: SimDuration::ZERO,
        };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(m.sample(&mut r).unwrap() > SimDuration::ZERO);
        }
    }

    #[test]
    fn lognormal_floor_clamps_samples_and_sets_lower_bound() {
        let floor = SimDuration::from_millis(5);
        let m = LatencyModel::LogNormalMs {
            median_ms: 6.0,
            sigma: 2.0, // heavy spread: many raw samples below the floor
            floor,
        };
        assert_eq!(m.lower_bound(), floor, "floor is the conservative bound");
        let mut r = rng();
        for _ in 0..5000 {
            assert!(m.sample(&mut r).unwrap() >= floor);
        }
        // A floored WAN model gives the sharded engine a real lookahead.
        let net = NetworkModel::reliable(m);
        assert_eq!(net.min_latency(), floor);
        // Without a floor the engine minimum applies.
        let bare = NetworkModel::reliable(LatencyModel::LogNormalMs {
            median_ms: 6.0,
            sigma: 2.0,
            floor: SimDuration::ZERO,
        });
        assert_eq!(bare.min_latency(), crate::exec::MIN_NETWORK_LATENCY);
    }

    #[test]
    fn reliable_network_never_drops() {
        let net = NetworkModel::reliable(LatencyModel::default());
        let mut r = rng();
        for i in 0..100 {
            assert!(net.transmit(&mut r, i, i + 1).is_some());
        }
    }

    #[test]
    fn lossy_network_drops_at_rate() {
        let net = NetworkModel::lossy(LatencyModel::default(), 0.3);
        let mut r = rng();
        let n = 100_000;
        let dropped = (0..n)
            .filter(|_| net.transmit(&mut r, 0, 1).is_none())
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn loss_probability_clamped() {
        let net = NetworkModel::lossy(LatencyModel::default(), 1.5);
        assert!(net.loss_probability() < 1.0);
        let net = NetworkModel::lossy(LatencyModel::default(), -0.5);
        assert_eq!(net.loss_probability(), 0.0);
    }

    #[test]
    fn partition_blocks_cross_group_only() {
        let mut net = NetworkModel::reliable(LatencyModel::default());
        net.partition(vec![0, 0, 1, 1]);
        let mut r = rng();
        assert!(net.is_partitioned());
        assert!(net.transmit(&mut r, 0, 1).is_some(), "same group passes");
        assert!(net.transmit(&mut r, 0, 2).is_none(), "cross group blocked");
        assert!(net.transmit(&mut r, 3, 2).is_some());
        net.heal();
        assert!(!net.is_partitioned());
        assert!(net.transmit(&mut r, 0, 2).is_some(), "healed");
    }

    #[test]
    fn partition_unknown_nodes_default_group_zero() {
        let mut net = NetworkModel::reliable(LatencyModel::default());
        net.partition(vec![1]);
        let mut r = rng();
        // node 5 is outside the vector -> group 0, node 0 is group 1.
        assert!(net.transmit(&mut r, 0, 5).is_none());
        assert!(net.transmit(&mut r, 5, 6).is_some());
    }
}
