//! Network models: latency, loss and partitions.
//!
//! The model is deliberately link-agnostic: every message independently
//! samples a latency and a loss verdict. This matches the abstractions used
//! to evaluate the gossip protocols the paper builds on (Bimodal Multicast,
//! lpbcast, Cyclon), where fairness and reliability are properties of the
//! *overlay*, not of individual physical links.

use crate::time::{SimDuration, SimTime};
use fed_util::dist::{InvalidDistribution, LogNormal};
use fed_util::rng::Rng64;

/// How per-message latency is sampled.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Minimum latency.
        lo: SimDuration,
        /// Maximum latency.
        hi: SimDuration,
    },
    /// Log-normal with the given median (milliseconds) and shape — the
    /// classic heavy-tailed WAN model.
    ///
    /// The optional `floor` clamps every sample from below. A log-normal
    /// has no positive infimum, so without a floor the model's
    /// [`lower_bound`](LatencyModel::lower_bound) is zero and a sharded
    /// engine falls back to the 1 µs delivery floor as its conservative
    /// lookahead — collapsing barrier windows to microseconds. Real WAN
    /// paths have a physical propagation minimum; setting `floor` to it
    /// restores millisecond-wide windows at identical fidelity above the
    /// floor.
    LogNormalMs {
        /// Median latency in milliseconds.
        median_ms: f64,
        /// Shape parameter of the underlying normal (0 = constant).
        sigma: f64,
        /// Minimum latency; samples below are clamped up to it.
        /// [`SimDuration::ZERO`] means no floor.
        floor: SimDuration,
    },
}

impl LatencyModel {
    /// A lower bound on every latency this model can sample.
    ///
    /// Used by sharded runtimes as the conservative lookahead: no message
    /// can arrive sooner than `send_time + lower_bound()`. Heavy-tailed
    /// models without a positive infimum (an unfloored
    /// [`LatencyModel::LogNormalMs`]) return [`SimDuration::ZERO`]; the
    /// engine's 1 µs delivery floor (see
    /// [`crate::exec::MIN_NETWORK_LATENCY`]) still applies on top.
    pub fn lower_bound(&self) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { lo, .. } => *lo,
            LatencyModel::LogNormalMs { floor, .. } => *floor,
        }
    }

    /// Samples one latency value.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistribution`] if the model parameters are invalid
    /// (e.g. negative median); validated models never fail.
    pub fn sample<R: Rng64 + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<SimDuration, InvalidDistribution> {
        match self {
            LatencyModel::Constant(d) => Ok(*d),
            LatencyModel::Uniform { lo, hi } => {
                let (a, b) = (lo.as_micros(), hi.as_micros());
                if a >= b {
                    Ok(*lo)
                } else {
                    Ok(SimDuration::from_micros(a + rng.range_u64(b - a + 1)))
                }
            }
            LatencyModel::LogNormalMs {
                median_ms,
                sigma,
                floor,
            } => {
                let ln = LogNormal::from_median(*median_ms, *sigma)?;
                Ok(SimDuration::from_millis_f64(ln.sample(rng)).max(*floor))
            }
        }
    }
}

impl Default for LatencyModel {
    /// A 50 ms constant latency — a typical wide-area round-trip half.
    fn default() -> Self {
        LatencyModel::Constant(SimDuration::from_millis(50))
    }
}

/// A scheduled symmetric partition: nodes with id below `split` form one
/// side, the rest the other; messages crossing the split while
/// `at <= now < heal` are dropped (both directions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionFault {
    /// When the partition starts.
    pub at: SimTime,
    /// When it heals (exclusive).
    pub heal: SimTime,
    /// Boundary node id: ids `< split` are on side A, the rest on side B.
    pub split: u32,
}

/// A scheduled asymmetric (one-way) link failure: messages **from** nodes
/// with id below `split` **to** nodes at or above it are dropped while
/// `at <= now < until`; the reverse direction keeps working.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnewayFault {
    /// When the failure starts.
    pub at: SimTime,
    /// When it ends (exclusive).
    pub until: SimTime,
    /// Boundary node id: sends from ids `< split` to ids `>= split` drop.
    pub split: u32,
}

/// A scheduled latency spike: every message sent while `at <= now < until`
/// takes `extra` additional latency on top of its sampled value.
///
/// Delay spikes only *add* latency, so the model's conservative
/// [`NetworkModel::min_latency`] lookahead bound stays valid throughout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayFault {
    /// When the spike starts.
    pub at: SimTime,
    /// When it ends (exclusive).
    pub until: SimTime,
    /// Latency added to every message sent during the spike.
    pub extra: SimDuration,
}

/// Deterministic scheduled faults applied by the network model.
///
/// Every verdict is a pure function of `(now, from, to)` — no randomness is
/// consumed deciding a fault, so the per-node RNG streams (and therefore
/// bit-identity between the sequential and sharded engines) are unaffected
/// by which faults are configured. Drops remove messages and delay spikes
/// only add latency, so the conservative lookahead contract
/// ([`NetworkModel::min_latency`]) holds by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    /// Scheduled symmetric partition, if any.
    pub partition: Option<PartitionFault>,
    /// Scheduled one-way link failure, if any.
    pub oneway: Option<OnewayFault>,
    /// Scheduled message-delay spike, if any.
    pub delay: Option<DelayFault>,
}

impl FaultSchedule {
    /// `true` when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.partition.is_none() && self.oneway.is_none() && self.delay.is_none()
    }

    /// `true` when a message `from -> to` sent at `now` is dropped by a
    /// scheduled partition or one-way failure.
    pub fn drops(&self, now: SimTime, from: usize, to: usize) -> bool {
        if let Some(p) = &self.partition {
            if now >= p.at && now < p.heal {
                let side_a = (from as u64) < u64::from(p.split);
                let side_b = (to as u64) < u64::from(p.split);
                if side_a != side_b {
                    return true;
                }
            }
        }
        if let Some(o) = &self.oneway {
            if now >= o.at
                && now < o.until
                && (from as u64) < u64::from(o.split)
                && (to as u64) >= u64::from(o.split)
            {
                return true;
            }
        }
        false
    }

    /// Extra latency applied to a message sent at `now`.
    pub fn extra_delay(&self, now: SimTime) -> SimDuration {
        match &self.delay {
            Some(d) if now >= d.at && now < d.until => d.extra,
            _ => SimDuration::ZERO,
        }
    }
}

/// One step of a [`MobilityTrace`]: from `at` onwards (until the next
/// segment starts, or forever for the last segment of an aperiodic trace)
/// cross-split messages take `extra` additional latency, or are dropped
/// entirely when `disconnected` is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MobilitySegment {
    /// Trace-relative activation instant (relative to the period start for
    /// periodic traces, absolute for aperiodic ones).
    pub at: SimTime,
    /// Extra latency added to cross-split messages while this segment is
    /// active. Ignored when `disconnected` is set.
    pub extra: SimDuration,
    /// When set, cross-split messages are dropped while this segment is
    /// active.
    pub disconnected: bool,
}

/// A piecewise time-varying connectivity trace between two node groups —
/// the dynamic-topology analogue of a [`FaultSchedule`].
///
/// Nodes with id below `split` form the mobile group; the trace describes
/// how the link between the mobile group and everyone else changes over
/// time. At any instant the *active* segment is the last one whose `at`
/// is not in the future (on the trace-relative clock); cross-split
/// messages then take the segment's `extra` additional latency or drop
/// when it is `disconnected`. Before the first segment starts the trace
/// has no effect. With a `period` the trace clock is `now mod period`, so
/// the pattern repeats — a node shuttling through a coverage corridor;
/// without one the trace plays once on absolute time — a world that
/// degrades and never recovers.
///
/// Like scheduled faults, every verdict is a pure function of
/// `(now, from, to)` evaluated before any randomness is drawn, and a
/// trace can only *drop* messages or *add* latency — never deliver
/// early — so the conservative lookahead bound
/// ([`NetworkModel::min_latency`]) and seq-vs-cluster bit-identity hold
/// by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MobilityTrace {
    /// Boundary node id: ids `< split` form the mobile group.
    pub split: u32,
    /// Optional repeat period; the trace clock is `now mod period`.
    pub period: Option<SimDuration>,
    /// Piecewise segments, strictly increasing in `at`.
    pub segments: Vec<MobilitySegment>,
}

impl MobilityTrace {
    /// Checks the structural invariants the evaluation semantics rely on.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the trace has no segments,
    /// segment instants are not strictly increasing, the period is zero,
    /// or a segment starts at or past the period.
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err("mobility trace needs at least one segment".into());
        }
        for w in self.segments.windows(2) {
            if w[1].at <= w[0].at {
                return Err(format!(
                    "mobility segments must be strictly increasing in `at` \
                     ({:?}us then {:?}us)",
                    w[0].at.as_micros(),
                    w[1].at.as_micros()
                ));
            }
        }
        if let Some(p) = self.period {
            if p == SimDuration::ZERO {
                return Err("mobility period must be positive".into());
            }
            if let Some(seg) = self
                .segments
                .iter()
                .find(|s| s.at.as_micros() >= p.as_micros())
            {
                return Err(format!(
                    "mobility segment at {}us starts at or past the period ({}us)",
                    seg.at.as_micros(),
                    p.as_micros()
                ));
            }
        }
        Ok(())
    }

    /// The segment active at `now`, if any.
    fn active(&self, now: SimTime) -> Option<&MobilitySegment> {
        let t = match self.period {
            Some(p) => now.as_micros() % p.as_micros(),
            None => now.as_micros(),
        };
        self.segments.iter().rev().find(|s| s.at.as_micros() <= t)
    }

    /// `true` when `from -> to` crosses the mobile-group boundary.
    fn crosses(&self, from: usize, to: usize) -> bool {
        ((from as u64) < u64::from(self.split)) != ((to as u64) < u64::from(self.split))
    }

    /// `true` when a message `from -> to` sent at `now` is dropped by an
    /// active disconnected segment.
    pub fn drops(&self, now: SimTime, from: usize, to: usize) -> bool {
        self.crosses(from, to) && self.active(now).is_some_and(|s| s.disconnected)
    }

    /// Extra latency applied to a message `from -> to` sent at `now`.
    pub fn extra_delay(&self, now: SimTime, from: usize, to: usize) -> SimDuration {
        if !self.crosses(from, to) {
            return SimDuration::ZERO;
        }
        match self.active(now) {
            Some(s) if !s.disconnected => s.extra,
            _ => SimDuration::ZERO,
        }
    }
}

/// Full network model: latency plus iid loss plus optional partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    latency: LatencyModel,
    loss_probability: f64,
    /// `groups[i]` is the partition group of node `i`; messages cross groups
    /// only when no partition is active.
    groups: Option<Vec<u32>>,
    /// Scheduled deterministic faults.
    faults: FaultSchedule,
    /// Time-varying connectivity trace, if any.
    mobility: Option<MobilityTrace>,
}

impl NetworkModel {
    /// A perfectly reliable network with the given latency model.
    pub fn reliable(latency: LatencyModel) -> Self {
        NetworkModel {
            latency,
            loss_probability: 0.0,
            groups: None,
            faults: FaultSchedule::default(),
            mobility: None,
        }
    }

    /// A lossy network: each message is independently dropped with
    /// probability `loss` (clamped to `[0, 1)`).
    pub fn lossy(latency: LatencyModel, loss: f64) -> Self {
        NetworkModel {
            latency,
            loss_probability: loss.clamp(0.0, 0.999_999),
            groups: None,
            faults: FaultSchedule::default(),
            mobility: None,
        }
    }

    /// Replaces the scheduled fault schedule (builder style).
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the mobility trace (builder style).
    pub fn with_mobility(mut self, mobility: Option<MobilityTrace>) -> Self {
        self.mobility = mobility;
        self
    }

    /// The configured mobility trace, if any.
    pub fn mobility(&self) -> Option<&MobilityTrace> {
        self.mobility.as_ref()
    }

    /// The scheduled fault schedule.
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// Mutable access to the scheduled fault schedule.
    pub fn faults_mut(&mut self) -> &mut FaultSchedule {
        &mut self.faults
    }

    /// The configured loss probability.
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// The configured latency model.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// A lower bound on the delivery latency of any message this model
    /// delivers, floored at the engine's 1 µs minimum.
    ///
    /// This is the conservative lookahead of the model: a sharded runtime
    /// may process a time window of this width without waiting for
    /// messages sent inside the window by other shards.
    pub fn min_latency(&self) -> SimDuration {
        self.latency
            .lower_bound()
            .max(crate::exec::MIN_NETWORK_LATENCY)
    }

    /// Installs a partition: node `i` belongs to `groups[i]`; messages
    /// between different groups are dropped until [`NetworkModel::heal`].
    pub fn partition(&mut self, groups: Vec<u32>) {
        self.groups = Some(groups);
    }

    /// Removes any active partition.
    pub fn heal(&mut self) {
        self.groups = None;
    }

    /// Returns `true` when a partition is active.
    pub fn is_partitioned(&self) -> bool {
        self.groups.is_some()
    }

    /// Decides the fate of one message from `from` to `to` sent at `now`.
    ///
    /// Returns `Some(latency)` when the message is delivered, `None` when it
    /// is lost (random loss, partition, or a scheduled fault). Nodes outside
    /// a configured partition vector are treated as group 0.
    ///
    /// Fault verdicts are evaluated *before* any randomness is drawn, and a
    /// scheduled drop consumes no randomness at all — so whether a fault
    /// fires for a message never shifts the RNG stream consumed by later
    /// messages relative to an engine that evaluated it identically.
    pub fn transmit<R: Rng64 + ?Sized>(
        &self,
        rng: &mut R,
        now: SimTime,
        from: usize,
        to: usize,
    ) -> Option<SimDuration> {
        if self.faults.drops(now, from, to) {
            return None;
        }
        if let Some(m) = &self.mobility {
            if m.drops(now, from, to) {
                return None;
            }
        }
        if let Some(groups) = &self.groups {
            let gf = groups.get(from).copied().unwrap_or(0);
            let gt = groups.get(to).copied().unwrap_or(0);
            if gf != gt {
                return None;
            }
        }
        if self.loss_probability > 0.0 && rng.bernoulli(self.loss_probability) {
            return None;
        }
        let mobility_extra = match &self.mobility {
            Some(m) => m.extra_delay(now, from, to),
            None => SimDuration::ZERO,
        };
        // Validated at construction; latency sampling cannot fail for the
        // models constructible through the public API.
        self.latency
            .sample(rng)
            .ok()
            .map(|d| d + self.faults.extra_delay(now) + mobility_extra)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::reliable(LatencyModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_util::rng::Xoshiro256StarStar;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(42)
    }

    #[test]
    fn constant_latency() {
        let m = LatencyModel::Constant(SimDuration::from_millis(10));
        let mut r = rng();
        assert_eq!(m.sample(&mut r).unwrap(), SimDuration::from_millis(10));
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_millis(10),
            hi: SimDuration::from_millis(20),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r).unwrap();
            assert!(d >= SimDuration::from_millis(10) && d <= SimDuration::from_millis(20));
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_millis(5),
            hi: SimDuration::from_millis(5),
        };
        let mut r = rng();
        assert_eq!(m.sample(&mut r).unwrap(), SimDuration::from_millis(5));
    }

    #[test]
    fn lognormal_latency_positive() {
        let m = LatencyModel::LogNormalMs {
            median_ms: 50.0,
            sigma: 0.5,
            floor: SimDuration::ZERO,
        };
        let mut r = rng();
        for _ in 0..1000 {
            assert!(m.sample(&mut r).unwrap() > SimDuration::ZERO);
        }
    }

    #[test]
    fn lognormal_floor_clamps_samples_and_sets_lower_bound() {
        let floor = SimDuration::from_millis(5);
        let m = LatencyModel::LogNormalMs {
            median_ms: 6.0,
            sigma: 2.0, // heavy spread: many raw samples below the floor
            floor,
        };
        assert_eq!(m.lower_bound(), floor, "floor is the conservative bound");
        let mut r = rng();
        for _ in 0..5000 {
            assert!(m.sample(&mut r).unwrap() >= floor);
        }
        // A floored WAN model gives the sharded engine a real lookahead.
        let net = NetworkModel::reliable(m);
        assert_eq!(net.min_latency(), floor);
        // Without a floor the engine minimum applies.
        let bare = NetworkModel::reliable(LatencyModel::LogNormalMs {
            median_ms: 6.0,
            sigma: 2.0,
            floor: SimDuration::ZERO,
        });
        assert_eq!(bare.min_latency(), crate::exec::MIN_NETWORK_LATENCY);
    }

    #[test]
    fn reliable_network_never_drops() {
        let net = NetworkModel::reliable(LatencyModel::default());
        let mut r = rng();
        for i in 0..100 {
            assert!(net.transmit(&mut r, SimTime::ZERO, i, i + 1).is_some());
        }
    }

    #[test]
    fn lossy_network_drops_at_rate() {
        let net = NetworkModel::lossy(LatencyModel::default(), 0.3);
        let mut r = rng();
        let n = 100_000;
        let dropped = (0..n)
            .filter(|_| net.transmit(&mut r, SimTime::ZERO, 0, 1).is_none())
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn loss_probability_clamped() {
        let net = NetworkModel::lossy(LatencyModel::default(), 1.5);
        assert!(net.loss_probability() < 1.0);
        let net = NetworkModel::lossy(LatencyModel::default(), -0.5);
        assert_eq!(net.loss_probability(), 0.0);
    }

    #[test]
    fn partition_blocks_cross_group_only() {
        let mut net = NetworkModel::reliable(LatencyModel::default());
        net.partition(vec![0, 0, 1, 1]);
        let mut r = rng();
        let t = SimTime::ZERO;
        assert!(net.is_partitioned());
        assert!(net.transmit(&mut r, t, 0, 1).is_some(), "same group passes");
        assert!(net.transmit(&mut r, t, 0, 2).is_none(), "cross blocked");
        assert!(net.transmit(&mut r, t, 3, 2).is_some());
        net.heal();
        assert!(!net.is_partitioned());
        assert!(net.transmit(&mut r, t, 0, 2).is_some(), "healed");
    }

    #[test]
    fn partition_unknown_nodes_default_group_zero() {
        let mut net = NetworkModel::reliable(LatencyModel::default());
        net.partition(vec![1]);
        let mut r = rng();
        // node 5 is outside the vector -> group 0, node 0 is group 1.
        assert!(net.transmit(&mut r, SimTime::ZERO, 0, 5).is_none());
        assert!(net.transmit(&mut r, SimTime::ZERO, 5, 6).is_some());
    }

    #[test]
    fn scheduled_partition_drops_cross_split_inside_window_only() {
        let net = NetworkModel::reliable(LatencyModel::default()).with_faults(FaultSchedule {
            partition: Some(PartitionFault {
                at: SimTime::from_secs(10),
                heal: SimTime::from_secs(20),
                split: 4,
            }),
            ..FaultSchedule::default()
        });
        let mut r = rng();
        let during = SimTime::from_secs(15);
        // Cross-split drops in both directions while the partition holds.
        assert!(net.transmit(&mut r, during, 0, 7).is_none());
        assert!(net.transmit(&mut r, during, 7, 0).is_none());
        // Same side still passes.
        assert!(net.transmit(&mut r, during, 0, 3).is_some());
        assert!(net.transmit(&mut r, during, 5, 7).is_some());
        // Before `at` and at/after `heal` nothing is dropped.
        assert!(net.transmit(&mut r, SimTime::from_secs(9), 0, 7).is_some());
        assert!(net.transmit(&mut r, SimTime::from_secs(20), 0, 7).is_some());
    }

    #[test]
    fn oneway_fault_is_asymmetric() {
        let net = NetworkModel::reliable(LatencyModel::default()).with_faults(FaultSchedule {
            oneway: Some(OnewayFault {
                at: SimTime::from_secs(5),
                until: SimTime::from_secs(8),
                split: 2,
            }),
            ..FaultSchedule::default()
        });
        let mut r = rng();
        let during = SimTime::from_secs(6);
        // Low -> high drops; the reverse direction keeps delivering.
        assert!(net.transmit(&mut r, during, 1, 3).is_none());
        assert!(net.transmit(&mut r, during, 3, 1).is_some());
        assert!(net.transmit(&mut r, SimTime::from_secs(8), 1, 3).is_some());
    }

    #[test]
    fn delay_spike_adds_latency_and_preserves_lookahead() {
        let base = SimDuration::from_millis(10);
        let extra = SimDuration::from_millis(40);
        let net = NetworkModel::reliable(LatencyModel::Constant(base)).with_faults(FaultSchedule {
            delay: Some(DelayFault {
                at: SimTime::from_secs(1),
                until: SimTime::from_secs(2),
                extra,
            }),
            ..FaultSchedule::default()
        });
        let mut r = rng();
        let inside = net
            .transmit(&mut r, SimTime::from_millis(1500), 0, 1)
            .unwrap();
        assert_eq!(inside, base + extra);
        let outside = net
            .transmit(&mut r, SimTime::from_millis(2500), 0, 1)
            .unwrap();
        assert_eq!(outside, base);
        // Extra delay only adds: the conservative lookahead stays valid.
        assert!(inside >= net.min_latency());
    }

    fn corridor() -> MobilityTrace {
        // Connected at +10ms extra, then disconnected, repeating every 2s.
        MobilityTrace {
            split: 4,
            period: Some(SimDuration::from_secs(2)),
            segments: vec![
                MobilitySegment {
                    at: SimTime::ZERO,
                    extra: SimDuration::from_millis(10),
                    disconnected: false,
                },
                MobilitySegment {
                    at: SimTime::from_millis(1500),
                    extra: SimDuration::ZERO,
                    disconnected: true,
                },
            ],
        }
    }

    #[test]
    fn mobility_periodic_trace_repeats() {
        let base = SimDuration::from_millis(10);
        let net =
            NetworkModel::reliable(LatencyModel::Constant(base)).with_mobility(Some(corridor()));
        let mut r = rng();
        // First period: connected window adds 10ms, blackout drops.
        assert_eq!(
            net.transmit(&mut r, SimTime::from_millis(100), 0, 7),
            Some(base + SimDuration::from_millis(10))
        );
        assert!(net
            .transmit(&mut r, SimTime::from_millis(1700), 0, 7)
            .is_none());
        // Third period: same pattern, trace clock wrapped.
        assert_eq!(
            net.transmit(&mut r, SimTime::from_millis(4100), 0, 7),
            Some(base + SimDuration::from_millis(10))
        );
        assert!(net
            .transmit(&mut r, SimTime::from_millis(5700), 7, 0)
            .is_none());
    }

    #[test]
    fn mobility_affects_cross_split_only() {
        let base = SimDuration::from_millis(10);
        let net =
            NetworkModel::reliable(LatencyModel::Constant(base)).with_mobility(Some(corridor()));
        let mut r = rng();
        let blackout = SimTime::from_millis(1700);
        // Within either side the trace never applies.
        assert_eq!(net.transmit(&mut r, blackout, 0, 3), Some(base));
        assert_eq!(net.transmit(&mut r, blackout, 5, 7), Some(base));
        let connected = SimTime::from_millis(100);
        assert_eq!(net.transmit(&mut r, connected, 0, 3), Some(base));
    }

    #[test]
    fn mobility_aperiodic_trace_plays_once() {
        let base = SimDuration::from_millis(10);
        let trace = MobilityTrace {
            split: 2,
            period: None,
            segments: vec![MobilitySegment {
                at: SimTime::from_secs(3),
                extra: SimDuration::ZERO,
                disconnected: true,
            }],
        };
        let net = NetworkModel::reliable(LatencyModel::Constant(base)).with_mobility(Some(trace));
        let mut r = rng();
        // Before the first segment the trace has no effect.
        assert_eq!(
            net.transmit(&mut r, SimTime::from_secs(1), 0, 5),
            Some(base)
        );
        // The final segment holds forever.
        assert!(net.transmit(&mut r, SimTime::from_secs(4), 0, 5).is_none());
        assert!(net
            .transmit(&mut r, SimTime::from_secs(400), 5, 0)
            .is_none());
    }

    #[test]
    fn mobility_extra_only_adds_so_lookahead_holds() {
        let base = SimDuration::from_millis(10);
        let net =
            NetworkModel::reliable(LatencyModel::Constant(base)).with_mobility(Some(corridor()));
        let mut r = rng();
        for ms in [0u64, 500, 1400, 1999, 2100, 3600] {
            if let Some(d) = net.transmit(&mut r, SimTime::from_millis(ms), 0, 7) {
                assert!(d >= net.min_latency(), "at {ms}ms: {d:?}");
            }
        }
        assert_eq!(
            net.min_latency(),
            base,
            "mobility does not shrink the bound"
        );
    }

    #[test]
    fn mobility_drops_consume_no_randomness() {
        // As with scheduled faults: a mobility drop must not advance the RNG
        // stream consumed by later messages.
        let net = NetworkModel::lossy(
            LatencyModel::Uniform {
                lo: SimDuration::from_millis(1),
                hi: SimDuration::from_millis(50),
            },
            0.1,
        )
        .with_mobility(Some(MobilityTrace {
            split: 1,
            period: None,
            segments: vec![MobilitySegment {
                at: SimTime::ZERO,
                extra: SimDuration::ZERO,
                disconnected: true,
            }],
        }));
        let mut a = rng();
        let mut b = rng();
        assert!(net.transmit(&mut a, SimTime::ZERO, 0, 1).is_none());
        let after_drop = net.transmit(&mut a, SimTime::ZERO, 1, 2);
        let without_drop = net.transmit(&mut b, SimTime::ZERO, 1, 2);
        assert_eq!(after_drop, without_drop);
    }

    #[test]
    fn mobility_validate_rejects_bad_traces() {
        let seg = |ms: u64| MobilitySegment {
            at: SimTime::from_millis(ms),
            extra: SimDuration::ZERO,
            disconnected: false,
        };
        let empty = MobilityTrace {
            split: 1,
            period: None,
            segments: vec![],
        };
        assert!(empty
            .validate()
            .unwrap_err()
            .contains("at least one segment"));
        let unordered = MobilityTrace {
            split: 1,
            period: None,
            segments: vec![seg(100), seg(100)],
        };
        assert!(unordered
            .validate()
            .unwrap_err()
            .contains("strictly increasing"));
        let zero_period = MobilityTrace {
            split: 1,
            period: Some(SimDuration::ZERO),
            segments: vec![seg(0)],
        };
        assert!(zero_period.validate().unwrap_err().contains("positive"));
        let past_period = MobilityTrace {
            split: 1,
            period: Some(SimDuration::from_millis(100)),
            segments: vec![seg(0), seg(100)],
        };
        assert!(past_period
            .validate()
            .unwrap_err()
            .contains("past the period"));
        assert!(corridor().validate().is_ok());
    }

    #[test]
    fn fault_drops_consume_no_randomness() {
        // A dropped-by-fault message must not advance the RNG stream: the
        // next delivered message samples identical latency with or without
        // the dropped send in between.
        let faulty = NetworkModel::lossy(
            LatencyModel::Uniform {
                lo: SimDuration::from_millis(1),
                hi: SimDuration::from_millis(50),
            },
            0.1,
        )
        .with_faults(FaultSchedule {
            partition: Some(PartitionFault {
                at: SimTime::ZERO,
                heal: SimTime::from_secs(100),
                split: 1,
            }),
            ..FaultSchedule::default()
        });
        let mut a = rng();
        let mut b = rng();
        assert!(faulty.transmit(&mut a, SimTime::ZERO, 0, 1).is_none());
        let after_drop = faulty.transmit(&mut a, SimTime::ZERO, 1, 2);
        let without_drop = faulty.transmit(&mut b, SimTime::ZERO, 1, 2);
        assert_eq!(after_drop, without_drop);
    }
}
