//! The sequential discrete-event simulation engine.
//!
//! [`Simulation`] owns one [`exec::Kernel`](crate::exec::Kernel) covering
//! every node plus a single global
//! [`exec::EventQueue`](crate::exec::EventQueue). Events are
//! processed in canonical [`exec::EventKey`](crate::exec::EventKey)
//! order — `(time, producing
//! node, per-producer sequence)` — which makes runs fully deterministic for
//! a given seed *and* independent of engine internals: the sharded
//! `fed-cluster` runtime executes the same order and produces bit-identical
//! results.

use crate::exec::{
    reborrow, reborrow_profiler, reborrow_tracer, seed_streams, EventKey, EventKind, EventQueue,
    Kernel, Probe, ProfilePhase, Profiler, QueueStats, Tracer, EXTERNAL_SRC,
};
use crate::network::NetworkModel;
use crate::protocol::{NodeId, Protocol};
use crate::time::{SimDuration, SimTime};
use fed_util::rng::Xoshiro256StarStar;

pub use crate::exec::TransportStats;

/// The boxed node-state factory owned by a [`Simulation`].
type BoxedFactory<P> = Box<dyn FnMut(NodeId, &mut Xoshiro256StarStar) -> P>;

/// Result of a [`Simulation::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Events processed during this call.
    pub events: u64,
    /// `false` when the event budget was exhausted before the target time.
    pub completed: bool,
}

/// The discrete-event simulator for one protocol.
///
/// # Examples
///
/// ```
/// use fed_sim::{Context, NodeId, Protocol, Simulation, SimDuration, SimTime};
/// use fed_sim::network::NetworkModel;
///
/// /// A protocol where node 0 pings everyone once.
/// struct Ping { got: bool }
///
/// impl Protocol for Ping {
///     type Msg = ();
///     type Cmd = ();
///     fn on_init(&mut self, ctx: &mut Context<'_, ()>) {
///         if ctx.id() == NodeId::new(0) {
///             for i in 0..ctx.system_size() as u32 {
///                 ctx.send(NodeId::new(i), ());
///             }
///         }
///     }
///     fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _msg: ()) {
///         self.got = true;
///     }
///     fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _token: u64) {}
/// }
///
/// let mut sim = Simulation::new(8, NetworkModel::default(), 1, |_, _| Ping { got: false });
/// sim.run_until(SimTime::from_secs(1));
/// assert!(sim.nodes().all(|(_, p)| p.got));
/// ```
pub struct Simulation<P: Protocol> {
    kernel: Kernel<P>,
    queue: EventQueue<P>,
    now: SimTime,
    external_seq: u64,
    factory: BoxedFactory<P>,
    events_processed: u64,
    max_events: u64,
}

impl<P: Protocol> std::fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.kernel.n_global())
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<P: Protocol> Simulation<P> {
    /// Creates a simulation of `n` nodes and runs every node's `on_init` at
    /// time zero.
    ///
    /// `factory` builds the protocol state for a node; it is also invoked
    /// when a crashed node rejoins. Each node receives its own random stream
    /// forked deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u32::MAX as usize`.
    pub fn new<F>(n: usize, net: NetworkModel, seed: u64, factory: F) -> Self
    where
        F: FnMut(NodeId, &mut Xoshiro256StarStar) -> P + 'static,
    {
        assert!(n > 0, "simulation requires at least one node");
        assert!(n <= u32::MAX as usize, "too many nodes");
        let mut factory: BoxedFactory<P> = Box::new(factory);
        let mut queue = EventQueue::new();
        let kernel = Kernel::new(
            n,
            (0..n as u32).collect(),
            seed_streams(seed, n),
            net,
            &mut *factory,
            &mut queue,
        );
        Simulation {
            kernel,
            queue,
            now: SimTime::ZERO,
            external_seq: 0,
            factory,
            events_processed: 0,
            max_events: 500_000_000,
        }
    }

    /// Caps the total number of events this simulation will process.
    ///
    /// [`Simulation::run_until`] reports `completed == false` when the cap
    /// is hit; a safety net against protocol bugs that generate unbounded
    /// message storms.
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.kernel.n_global()
    }

    /// Always `false`: constructing with zero nodes is rejected.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.kernel.is_alive(id)
    }

    /// Ids of all currently alive nodes.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.kernel
            .owned_ids()
            .iter()
            .map(|&i| NodeId::new(i))
            .filter(|&id| self.kernel.is_alive(id))
            .collect()
    }

    /// Shared access to a node's protocol state (alive or crashed).
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.kernel.node(id)
    }

    /// Exclusive access to a node's protocol state.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.kernel.node_mut(id)
    }

    /// Iterates over `(id, state)` of every node that has state.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.kernel.nodes()
    }

    /// Transport statistics of one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn transport_stats(&self, id: NodeId) -> TransportStats {
        self.kernel.stats_of(id).expect("node id out of range")
    }

    /// Transport statistics of every node, indexed by node.
    pub fn transport_stats_all(&self) -> &[TransportStats] {
        self.kernel.stats_slice()
    }

    /// Resets all transport statistics to zero (e.g. after a warm-up phase).
    pub fn reset_transport_stats(&mut self) {
        self.kernel.reset_stats();
    }

    /// Mutates the network model mid-run (partitions, healing).
    pub fn network_mut(&mut self) -> &mut NetworkModel {
        self.kernel.net_mut()
    }

    /// Schedules an application command for `node` at absolute time `at`.
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: P::Cmd) {
        let at = at.max(self.now);
        self.push_external(at, EventKind::Command { node, cmd });
    }

    /// Schedules a crash of `node` at absolute time `at`.
    ///
    /// Crashing an already-crashed node is a no-op at processing time.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        let at = at.max(self.now);
        self.push_external(at, EventKind::Crash(node));
    }

    /// Schedules a (re)join of `node` at absolute time `at`.
    ///
    /// The node gets fresh protocol state from the factory and runs
    /// `on_init`. Joining an alive node is a no-op at processing time.
    pub fn schedule_join(&mut self, at: SimTime, node: NodeId) {
        let at = at.max(self.now);
        self.push_external(at, EventKind::Join(node));
    }

    /// Runs until virtual time reaches `target` (inclusive) or the queue
    /// drains or the event budget is exhausted.
    pub fn run_until(&mut self, target: SimTime) -> RunReport {
        self.run_profiled(target, None, None)
    }

    /// [`Simulation::run_until`] with a telemetry [`Probe`] attached: the
    /// probe observes every dispatched event, send, delivery and liveness
    /// transition without being able to influence the run.
    ///
    /// The probed run produces the bit-identical virtual-world outcome of
    /// an unprobed one; the plain [`Simulation::run_until`] skips even the
    /// hook-call overhead (a `None` branch per observation site).
    pub fn run_until_probed(&mut self, target: SimTime, probe: &mut dyn Probe) -> RunReport {
        self.run_profiled(target, Some(probe), None)
    }

    /// [`Simulation::run_until`] with an optional [`Probe`] *and* an
    /// optional [`Profiler`] attached.
    ///
    /// The profiler's deterministic hooks ([`Profiler::on_event`]) fire
    /// exactly once per dispatched event; when a profiler is attached the
    /// whole dispatch loop's wall clock is reported once per call via
    /// [`Profiler::on_phase`] as [`ProfilePhase::Execute`] (the sequential
    /// engine has no exchange or barrier phases). Neither hook can
    /// influence the run.
    pub fn run_profiled(
        &mut self,
        target: SimTime,
        probe: Option<&mut dyn Probe>,
        profiler: Option<&mut dyn Profiler>,
    ) -> RunReport {
        self.run_instrumented(target, probe, profiler, None)
    }

    /// [`Simulation::run_profiled`] with an optional [`Tracer`] attached
    /// as well: the tracer receives one
    /// [`HopRecord`](crate::exec::HopRecord) per application event per
    /// network send (see [`crate::Protocol::trace_payload`]). Like the
    /// other hooks it is purely passive and free when absent.
    pub fn run_instrumented(
        &mut self,
        target: SimTime,
        mut probe: Option<&mut dyn Probe>,
        mut profiler: Option<&mut dyn Profiler>,
        mut tracer: Option<&mut dyn Tracer>,
    ) -> RunReport {
        let t0 = profiler.as_ref().map(|_| std::time::Instant::now());
        let mut events = 0u64;
        let mut completed = true;
        loop {
            if self.events_processed >= self.max_events {
                completed = false;
                break;
            }
            match self.queue.next_time() {
                Some(t) if t <= target => {}
                _ => break,
            }
            let (key, kind) = self.queue.pop().expect("peeked");
            self.now = key.time;
            self.events_processed += 1;
            events += 1;
            self.kernel.dispatch(
                key,
                kind,
                &mut *self.factory,
                &mut self.queue,
                reborrow(&mut probe),
                reborrow_profiler(&mut profiler),
                reborrow_tracer(&mut tracer),
            );
        }
        if completed {
            self.now = self.now.max(target);
        }
        if let (Some(p), Some(t0)) = (profiler, t0) {
            p.on_phase(ProfilePhase::Execute, t0.elapsed().as_nanos() as u64);
        }
        RunReport { events, completed }
    }

    /// Push/pop/overflow counters of the global event queue since
    /// construction (see [`QueueStats`] for what is and is not
    /// partition-invariant).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Runs for a span of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) -> RunReport {
        self.run_until(self.now + d)
    }

    /// Processes exactly one event; returns its time, or `None` if drained.
    pub fn step(&mut self) -> Option<SimTime> {
        let (key, kind) = self.queue.pop()?;
        self.now = key.time;
        self.events_processed += 1;
        self.kernel.dispatch(
            key,
            kind,
            &mut *self.factory,
            &mut self.queue,
            None,
            None,
            None,
        );
        Some(key.time)
    }

    fn push_external(&mut self, time: SimTime, kind: EventKind<P>) {
        let seq = self.external_seq;
        self.external_seq += 1;
        self.queue.push(
            EventKey {
                time,
                src: EXTERNAL_SRC,
                seq,
            },
            kind,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LatencyModel;
    use crate::protocol::Context;

    /// Test protocol: counts messages/timers, echoes on command.
    #[derive(Debug, Default)]
    struct Echo {
        msgs: Vec<(NodeId, u32)>,
        timers: Vec<u64>,
        inits: u32,
        crashed_at: Option<SimTime>,
    }

    #[derive(Debug, Clone)]
    enum EchoCmd {
        SendTo(NodeId, u32),
        Arm(u64, u64), // delay ms, token
    }

    impl Protocol for Echo {
        type Msg = u32;
        type Cmd = EchoCmd;

        fn on_init(&mut self, _ctx: &mut Context<'_, u32>) {
            self.inits += 1;
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
            self.msgs.push((from, msg));
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u32>, token: u64) {
            self.timers.push(token);
        }
        fn on_command(&mut self, ctx: &mut Context<'_, u32>, cmd: EchoCmd) {
            match cmd {
                EchoCmd::SendTo(to, v) => ctx.send(to, v),
                EchoCmd::Arm(ms, token) => ctx.set_timer(SimDuration::from_millis(ms), token),
            }
        }
        fn on_crash(&mut self, at: SimTime) {
            self.crashed_at = Some(at);
        }
        fn message_size(msg: &u32) -> usize {
            *msg as usize
        }
    }

    fn fixed_net(ms: u64) -> NetworkModel {
        NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(ms)))
    }

    fn sim(n: usize) -> Simulation<Echo> {
        Simulation::new(n, fixed_net(10), 7, |_, _| Echo::default())
    }

    #[test]
    fn init_runs_once_per_node() {
        let s = sim(5);
        assert_eq!(s.len(), 5);
        assert!(s.nodes().all(|(_, p)| p.inits == 1));
    }

    #[test]
    fn message_delivery_with_latency() {
        let mut s = sim(3);
        s.schedule_command(
            SimTime::from_millis(5),
            NodeId::new(0),
            EchoCmd::SendTo(NodeId::new(2), 99),
        );
        s.run_until(SimTime::from_millis(14));
        assert!(s.node(NodeId::new(2)).unwrap().msgs.is_empty(), "not yet");
        s.run_until(SimTime::from_millis(15));
        assert_eq!(
            s.node(NodeId::new(2)).unwrap().msgs,
            vec![(NodeId::new(0), 99)]
        );
    }

    #[test]
    fn transport_stats_account_bytes() {
        let mut s = sim(2);
        s.schedule_command(
            SimTime::ZERO,
            NodeId::new(0),
            EchoCmd::SendTo(NodeId::new(1), 64),
        );
        s.run_until(SimTime::from_secs(1));
        let st0 = s.transport_stats(NodeId::new(0));
        let st1 = s.transport_stats(NodeId::new(1));
        assert_eq!(st0.msgs_sent, 1);
        assert_eq!(st0.bytes_sent, 64);
        assert_eq!(st1.msgs_received, 1);
        assert_eq!(st1.bytes_received, 64);
        s.reset_transport_stats();
        assert_eq!(s.transport_stats(NodeId::new(0)), TransportStats::default());
    }

    #[test]
    fn timers_fire_in_order() {
        let mut s = sim(1);
        s.schedule_command(SimTime::ZERO, NodeId::new(0), EchoCmd::Arm(30, 3));
        s.schedule_command(SimTime::ZERO, NodeId::new(0), EchoCmd::Arm(10, 1));
        s.schedule_command(SimTime::ZERO, NodeId::new(0), EchoCmd::Arm(20, 2));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.node(NodeId::new(0)).unwrap().timers, vec![1, 2, 3]);
    }

    #[test]
    fn crash_drops_messages_and_timers() {
        let mut s = sim(2);
        s.schedule_command(SimTime::ZERO, NodeId::new(1), EchoCmd::Arm(50, 9));
        s.schedule_crash(SimTime::from_millis(20), NodeId::new(1));
        s.schedule_command(
            SimTime::from_millis(30),
            NodeId::new(0),
            EchoCmd::SendTo(NodeId::new(1), 5),
        );
        s.run_until(SimTime::from_secs(1));
        let p = s.node(NodeId::new(1)).unwrap();
        assert!(p.timers.is_empty(), "timer must not fire after crash");
        assert!(p.msgs.is_empty(), "message must not arrive after crash");
        assert!(!s.is_alive(NodeId::new(1)));
        assert_eq!(s.alive_ids(), vec![NodeId::new(0)]);
    }

    #[test]
    fn crash_hook_sees_time() {
        let mut s = sim(1);
        s.schedule_crash(SimTime::from_millis(25), NodeId::new(0));
        s.run_until(SimTime::from_secs(1));
        // state preserved post-crash for inspection
        let p = s.node(NodeId::new(0)).unwrap();
        assert_eq!(p.inits, 1);
        assert_eq!(p.crashed_at, Some(SimTime::from_millis(25)));
    }

    #[test]
    fn rejoin_gets_fresh_state_and_reinit() {
        let mut s = sim(2);
        s.schedule_command(SimTime::ZERO, NodeId::new(1), EchoCmd::Arm(100, 7));
        s.schedule_crash(SimTime::from_millis(10), NodeId::new(1));
        s.schedule_join(SimTime::from_millis(50), NodeId::new(1));
        s.run_until(SimTime::from_secs(1));
        let p = s.node(NodeId::new(1)).unwrap();
        assert_eq!(p.inits, 1, "fresh state from factory");
        assert!(
            p.timers.is_empty(),
            "timer armed before crash must not fire in the new incarnation"
        );
        assert!(s.is_alive(NodeId::new(1)));
    }

    #[test]
    fn double_crash_and_double_join_are_noops() {
        let mut s = sim(1);
        s.schedule_crash(SimTime::from_millis(5), NodeId::new(0));
        s.schedule_crash(SimTime::from_millis(6), NodeId::new(0));
        s.schedule_join(SimTime::from_millis(7), NodeId::new(0));
        s.schedule_join(SimTime::from_millis(8), NodeId::new(0));
        s.run_until(SimTime::from_secs(1));
        assert!(s.is_alive(NodeId::new(0)));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut s = Simulation::new(10, fixed_net(5), seed, |_, _| Echo::default());
            for i in 0..10u32 {
                s.schedule_command(
                    SimTime::from_millis(i as u64),
                    NodeId::new(i % 10),
                    EchoCmd::SendTo(NodeId::new((i + 1) % 10), i),
                );
            }
            s.run_until(SimTime::from_secs(1));
            let msgs: Vec<_> = s.nodes().map(|(_, p)| p.msgs.clone()).collect();
            (msgs, s.events_processed())
        };
        assert_eq!(run(11), run(11));
        assert_eq!(run(11).1, run(11).1);
    }

    #[test]
    fn lossy_network_counts_losses() {
        let net = NetworkModel::lossy(LatencyModel::Constant(SimDuration::from_millis(1)), 0.5);
        let mut s = Simulation::new(2, net, 3, |_, _| Echo::default());
        for i in 0..200 {
            s.schedule_command(
                SimTime::from_millis(i),
                NodeId::new(0),
                EchoCmd::SendTo(NodeId::new(1), 1),
            );
        }
        s.run_until(SimTime::from_secs(2));
        let st = s.transport_stats(NodeId::new(0));
        assert_eq!(st.msgs_sent, 200);
        assert!(
            st.msgs_lost > 50 && st.msgs_lost < 150,
            "lost={}",
            st.msgs_lost
        );
        let received = s.transport_stats(NodeId::new(1)).msgs_received;
        assert_eq!(received + st.msgs_lost, 200);
    }

    #[test]
    fn event_budget_stops_run() {
        let mut s = sim(1);
        s.set_max_events(2);
        for i in 0..10 {
            s.schedule_command(SimTime::from_millis(i), NodeId::new(0), EchoCmd::Arm(1, i));
        }
        let report = s.run_until(SimTime::from_secs(1));
        assert!(!report.completed);
        assert!(report.events <= 2);
    }

    #[test]
    fn step_processes_single_event() {
        let mut s = sim(1);
        s.schedule_command(SimTime::from_millis(3), NodeId::new(0), EchoCmd::Arm(1, 1));
        let t = s.step().unwrap();
        assert_eq!(t, SimTime::from_millis(3));
        assert_eq!(s.node(NodeId::new(0)).unwrap().timers.len(), 0);
        let t2 = s.step().unwrap();
        assert_eq!(t2, SimTime::from_millis(4));
        assert_eq!(s.node(NodeId::new(0)).unwrap().timers, vec![1]);
        assert!(s.step().is_none());
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut s = sim(1);
        s.run_until(SimTime::from_secs(5));
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    fn commands_to_crashed_nodes_are_dropped() {
        let mut s = sim(1);
        s.schedule_crash(SimTime::from_millis(1), NodeId::new(0));
        s.schedule_command(SimTime::from_millis(2), NodeId::new(0), EchoCmd::Arm(1, 1));
        s.run_until(SimTime::from_secs(1));
        assert!(s.node(NodeId::new(0)).unwrap().timers.is_empty());
    }

    #[test]
    fn partition_mid_run() {
        let mut s = sim(2);
        s.network_mut().partition(vec![0, 1]);
        s.schedule_command(
            SimTime::from_millis(1),
            NodeId::new(0),
            EchoCmd::SendTo(NodeId::new(1), 1),
        );
        s.run_until(SimTime::from_millis(100));
        assert!(s.node(NodeId::new(1)).unwrap().msgs.is_empty());
        s.network_mut().heal();
        s.schedule_command(
            SimTime::from_millis(101),
            NodeId::new(0),
            EchoCmd::SendTo(NodeId::new(1), 2),
        );
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.node(NodeId::new(1)).unwrap().msgs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Simulation::new(0, NetworkModel::default(), 1, |_, _| Echo::default());
    }

    /// Records every probe observation verbatim.
    #[derive(Debug, Default)]
    struct Tape {
        events: u64,
        sent: Vec<(SimTime, NodeId, u64, crate::exec::SendFate)>,
        received: Vec<(SimTime, NodeId, u64)>,
        liveness: Vec<(SimTime, NodeId, bool)>,
    }

    impl Probe for Tape {
        fn on_event(&mut self, _now: SimTime) {
            self.events += 1;
        }
        fn on_send(&mut self, now: SimTime, node: NodeId, bytes: u64, fate: crate::exec::SendFate) {
            self.sent.push((now, node, bytes, fate));
        }
        fn on_receive(&mut self, now: SimTime, node: NodeId, bytes: u64) {
            self.received.push((now, node, bytes));
        }
        fn on_liveness(&mut self, now: SimTime, node: NodeId, alive: bool) {
            self.liveness.push((now, node, alive));
        }
    }

    /// A probe sees exactly what the transport stats account — and
    /// attaching one does not perturb the run.
    #[test]
    fn probe_matches_transport_stats_and_is_passive() {
        use crate::exec::SendFate;
        let drive = |probe: Option<&mut Tape>| {
            let mut s = sim(3);
            s.schedule_command(
                SimTime::from_millis(5),
                NodeId::new(0),
                EchoCmd::SendTo(NodeId::new(2), 64),
            );
            s.schedule_crash(SimTime::from_millis(30), NodeId::new(1));
            s.schedule_join(SimTime::from_millis(40), NodeId::new(1));
            s.schedule_crash(SimTime::from_millis(41), NodeId::new(1)); // real
            s.schedule_crash(SimTime::from_millis(42), NodeId::new(1)); // no-op
            match probe {
                Some(p) => s.run_until_probed(SimTime::from_secs(1), p),
                None => s.run_until(SimTime::from_secs(1)),
            };
            (
                s.events_processed(),
                s.transport_stats(NodeId::new(0)),
                s.transport_stats(NodeId::new(2)),
            )
        };
        let mut tape = Tape::default();
        let probed = drive(Some(&mut tape));
        let unprobed = drive(None);
        assert_eq!(probed, unprobed, "a probe must be purely passive");
        assert_eq!(tape.events, probed.0, "one on_event per processed event");
        assert_eq!(
            tape.sent,
            vec![(
                SimTime::from_millis(5),
                NodeId::new(0),
                64,
                SendFate::Delivered {
                    at: SimTime::from_millis(15)
                }
            )]
        );
        assert_eq!(
            tape.received,
            vec![(SimTime::from_millis(15), NodeId::new(2), 64)]
        );
        // Only real transitions fire: crash, join, crash — the duplicate
        // crash at 42 ms is invisible.
        assert_eq!(
            tape.liveness,
            vec![
                (SimTime::from_millis(30), NodeId::new(1), false),
                (SimTime::from_millis(40), NodeId::new(1), true),
                (SimTime::from_millis(41), NodeId::new(1), false),
            ]
        );
    }
}
