//! The discrete-event simulation engine.
//!
//! [`Simulation`] owns all node state machines, the global event queue, the
//! network model and every random stream. Events are processed in
//! `(time, insertion-sequence)` order, which makes runs fully deterministic
//! for a given seed.

use crate::network::NetworkModel;
use crate::protocol::{Context, NodeId, Outgoing, Protocol};
use crate::time::{SimDuration, SimTime};
use fed_util::rng::{Rng64, Xoshiro256StarStar};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Per-node transport accounting maintained by the engine.
///
/// "Sent" counts every transmission attempt (a lost message still cost the
/// sender its bandwidth — contribution accounting must include it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages handed to the network.
    pub msgs_sent: u64,
    /// Bytes handed to the network (per [`Protocol::message_size`]).
    pub bytes_sent: u64,
    /// Messages delivered to this node.
    pub msgs_received: u64,
    /// Bytes delivered to this node.
    pub bytes_received: u64,
    /// Messages this node sent that the network dropped.
    pub msgs_lost: u64,
}

/// Result of a [`Simulation::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Events processed during this call.
    pub events: u64,
    /// `false` when the event budget was exhausted before the target time.
    pub completed: bool,
}

enum EventKind<P: Protocol> {
    Deliver {
        to: NodeId,
        from: NodeId,
        msg: P::Msg,
    },
    Timer {
        node: NodeId,
        token: u64,
        incarnation: u32,
    },
    Command {
        node: NodeId,
        cmd: P::Cmd,
    },
    Crash(NodeId),
    Join(NodeId),
}

struct Queued<P: Protocol> {
    time: SimTime,
    seq: u64,
    kind: EventKind<P>,
}

impl<P: Protocol> PartialEq for Queued<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P: Protocol> Eq for Queued<P> {}
impl<P: Protocol> PartialOrd for Queued<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: Protocol> Ord for Queued<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Debug)]
struct Slot<P> {
    state: Option<P>,
    rng: Xoshiro256StarStar,
    alive: bool,
    incarnation: u32,
}

/// The discrete-event simulator for one protocol.
///
/// # Examples
///
/// ```
/// use fed_sim::{Context, NodeId, Protocol, Simulation, SimDuration, SimTime};
/// use fed_sim::network::NetworkModel;
///
/// /// A protocol where node 0 pings everyone once.
/// struct Ping { got: bool }
///
/// impl Protocol for Ping {
///     type Msg = ();
///     type Cmd = ();
///     fn on_init(&mut self, ctx: &mut Context<'_, ()>) {
///         if ctx.id() == NodeId::new(0) {
///             for i in 0..ctx.system_size() as u32 {
///                 ctx.send(NodeId::new(i), ());
///             }
///         }
///     }
///     fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _msg: ()) {
///         self.got = true;
///     }
///     fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _token: u64) {}
/// }
///
/// let mut sim = Simulation::new(8, NetworkModel::default(), 1, |_, _| Ping { got: false });
/// sim.run_until(SimTime::from_secs(1));
/// assert!(sim.nodes().all(|(_, p)| p.got));
/// ```
pub struct Simulation<P: Protocol> {
    slots: Vec<Slot<P>>,
    queue: BinaryHeap<Queued<P>>,
    now: SimTime,
    seq: u64,
    net: NetworkModel,
    net_rng: Xoshiro256StarStar,
    stats: Vec<TransportStats>,
    factory: Box<dyn FnMut(NodeId, &mut Xoshiro256StarStar) -> P>,
    scratch: Vec<Outgoing<P::Msg>>,
    events_processed: u64,
    max_events: u64,
}

impl<P: Protocol> std::fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.slots.len())
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<P: Protocol> Simulation<P> {
    /// Creates a simulation of `n` nodes and runs every node's `on_init` at
    /// time zero.
    ///
    /// `factory` builds the protocol state for a node; it is also invoked
    /// when a crashed node rejoins. Each node receives its own random stream
    /// forked deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u32::MAX as usize`.
    pub fn new<F>(n: usize, net: NetworkModel, seed: u64, factory: F) -> Self
    where
        F: FnMut(NodeId, &mut Xoshiro256StarStar) -> P + 'static,
    {
        assert!(n > 0, "simulation requires at least one node");
        assert!(n <= u32::MAX as usize, "too many nodes");
        let mut root = Xoshiro256StarStar::seed_from_u64(seed);
        let net_rng = root.fork();
        let mut factory = Box::new(factory);
        let mut slots = Vec::with_capacity(n);
        for i in 0..n {
            let mut rng = root.fork();
            let state = factory(NodeId::new(i as u32), &mut rng);
            slots.push(Slot {
                state: Some(state),
                rng,
                alive: true,
                incarnation: 0,
            });
        }
        let mut sim = Simulation {
            slots,
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            net,
            net_rng,
            stats: vec![TransportStats::default(); n],
            factory,
            scratch: Vec::new(),
            events_processed: 0,
            max_events: 500_000_000,
        };
        for i in 0..n {
            sim.invoke(NodeId::new(i as u32), Invoke::Init);
        }
        sim
    }

    /// Caps the total number of events this simulation will process.
    ///
    /// [`Simulation::run_until`] reports `completed == false` when the cap
    /// is hit; a safety net against protocol bugs that generate unbounded
    /// message storms.
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of node slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always `false`: constructing with zero nodes is rejected.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.slots
            .get(id.index())
            .map(|s| s.alive)
            .unwrap_or(false)
    }

    /// Ids of all currently alive nodes.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| NodeId::new(i as u32))
            .collect()
    }

    /// Shared access to a node's protocol state (alive or crashed).
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.slots.get(id.index()).and_then(|s| s.state.as_ref())
    }

    /// Exclusive access to a node's protocol state.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        self.slots
            .get_mut(id.index())
            .and_then(|s| s.state.as_mut())
    }

    /// Iterates over `(id, state)` of every node that has state.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.state.as_ref().map(|p| (NodeId::new(i as u32), p)))
    }

    /// Transport statistics of one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn transport_stats(&self, id: NodeId) -> TransportStats {
        self.stats[id.index()]
    }

    /// Transport statistics of every node, indexed by node.
    pub fn transport_stats_all(&self) -> &[TransportStats] {
        &self.stats
    }

    /// Resets all transport statistics to zero (e.g. after a warm-up phase).
    pub fn reset_transport_stats(&mut self) {
        for s in &mut self.stats {
            *s = TransportStats::default();
        }
    }

    /// Mutates the network model mid-run (partitions, healing).
    pub fn network_mut(&mut self) -> &mut NetworkModel {
        &mut self.net
    }

    /// Schedules an application command for `node` at absolute time `at`.
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: P::Cmd) {
        let at = at.max(self.now);
        self.push(at, EventKind::Command { node, cmd });
    }

    /// Schedules a crash of `node` at absolute time `at`.
    ///
    /// Crashing an already-crashed node is a no-op at processing time.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        let at = at.max(self.now);
        self.push(at, EventKind::Crash(node));
    }

    /// Schedules a (re)join of `node` at absolute time `at`.
    ///
    /// The node gets fresh protocol state from the factory and runs
    /// `on_init`. Joining an alive node is a no-op at processing time.
    pub fn schedule_join(&mut self, at: SimTime, node: NodeId) {
        let at = at.max(self.now);
        self.push(at, EventKind::Join(node));
    }

    /// Runs until virtual time reaches `target` (inclusive) or the queue
    /// drains or the event budget is exhausted.
    pub fn run_until(&mut self, target: SimTime) -> RunReport {
        let mut events = 0u64;
        loop {
            if self.events_processed >= self.max_events {
                return RunReport {
                    events,
                    completed: false,
                };
            }
            match self.queue.peek() {
                Some(q) if q.time <= target => {}
                _ => break,
            }
            let q = self.queue.pop().expect("peeked");
            self.now = q.time;
            self.events_processed += 1;
            events += 1;
            self.dispatch(q);
        }
        self.now = self.now.max(target);
        RunReport {
            events,
            completed: true,
        }
    }

    /// Runs for a span of virtual time from the current instant.
    pub fn run_for(&mut self, d: SimDuration) -> RunReport {
        self.run_until(self.now + d)
    }

    /// Processes exactly one event; returns its time, or `None` if drained.
    pub fn step(&mut self) -> Option<SimTime> {
        let q = self.queue.pop()?;
        self.now = q.time;
        self.events_processed += 1;
        let t = q.time;
        self.dispatch(q);
        Some(t)
    }

    fn push(&mut self, time: SimTime, kind: EventKind<P>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued { time, seq, kind });
    }

    fn dispatch(&mut self, q: Queued<P>) {
        match q.kind {
            EventKind::Deliver { to, from, msg } => {
                let idx = to.index();
                if idx >= self.slots.len() || !self.slots[idx].alive {
                    return;
                }
                let size = P::message_size(&msg) as u64;
                self.stats[idx].msgs_received += 1;
                self.stats[idx].bytes_received += size;
                self.invoke(to, Invoke::Message { from, msg });
            }
            EventKind::Timer {
                node,
                token,
                incarnation,
            } => {
                let idx = node.index();
                if idx >= self.slots.len()
                    || !self.slots[idx].alive
                    || self.slots[idx].incarnation != incarnation
                {
                    return; // stale timer from a previous incarnation
                }
                self.invoke(node, Invoke::Timer(token));
            }
            EventKind::Command { node, cmd } => {
                let idx = node.index();
                if idx >= self.slots.len() || !self.slots[idx].alive {
                    return;
                }
                self.invoke(node, Invoke::Command(cmd));
            }
            EventKind::Crash(node) => {
                let idx = node.index();
                if idx >= self.slots.len() || !self.slots[idx].alive {
                    return;
                }
                self.slots[idx].alive = false;
                if let Some(state) = self.slots[idx].state.as_mut() {
                    state.on_crash(self.now);
                }
            }
            EventKind::Join(node) => {
                let idx = node.index();
                if idx >= self.slots.len() || self.slots[idx].alive {
                    return;
                }
                let slot = &mut self.slots[idx];
                slot.alive = true;
                slot.incarnation = slot.incarnation.wrapping_add(1);
                let state = (self.factory)(node, &mut slot.rng);
                slot.state = Some(state);
                self.invoke(node, Invoke::Init);
            }
        }
    }

    fn invoke(&mut self, node: NodeId, what: Invoke<P>) {
        debug_assert!(self.scratch.is_empty());
        let idx = node.index();
        let n = self.slots.len();
        {
            let slot = &mut self.slots[idx];
            let Some(state) = slot.state.as_mut() else {
                return;
            };
            let mut ctx = Context {
                node,
                now: self.now,
                n,
                rng: &mut slot.rng,
                outbox: &mut self.scratch,
            };
            match what {
                Invoke::Init => state.on_init(&mut ctx),
                Invoke::Message { from, msg } => state.on_message(&mut ctx, from, msg),
                Invoke::Timer(token) => state.on_timer(&mut ctx, token),
                Invoke::Command(cmd) => state.on_command(&mut ctx, cmd),
            }
        }
        let incarnation = self.slots[idx].incarnation;
        let effects: Vec<Outgoing<P::Msg>> = self.scratch.drain(..).collect();
        for effect in effects {
            match effect {
                Outgoing::Send { to, msg } => {
                    let size = P::message_size(&msg) as u64;
                    self.stats[idx].msgs_sent += 1;
                    self.stats[idx].bytes_sent += size;
                    match self.net.transmit(&mut self.net_rng, idx, to.index()) {
                        Some(latency) => {
                            let at = self.now + latency;
                            self.push(at, EventKind::Deliver {
                                to,
                                from: node,
                                msg,
                            });
                        }
                        None => {
                            self.stats[idx].msgs_lost += 1;
                        }
                    }
                }
                Outgoing::Timer { delay, token } => {
                    let at = self.now + delay;
                    self.push(at, EventKind::Timer {
                        node,
                        token,
                        incarnation,
                    });
                }
            }
        }
    }
}

enum Invoke<P: Protocol> {
    Init,
    Message { from: NodeId, msg: P::Msg },
    Timer(u64),
    Command(P::Cmd),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::LatencyModel;

    /// Test protocol: counts messages/timers, echoes on command.
    #[derive(Debug, Default)]
    struct Echo {
        msgs: Vec<(NodeId, u32)>,
        timers: Vec<u64>,
        inits: u32,
        crashed_at: Option<SimTime>,
    }

    #[derive(Debug, Clone)]
    enum EchoCmd {
        SendTo(NodeId, u32),
        Arm(u64, u64), // delay ms, token
    }

    impl Protocol for Echo {
        type Msg = u32;
        type Cmd = EchoCmd;

        fn on_init(&mut self, _ctx: &mut Context<'_, u32>) {
            self.inits += 1;
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
            self.msgs.push((from, msg));
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, u32>, token: u64) {
            self.timers.push(token);
        }
        fn on_command(&mut self, ctx: &mut Context<'_, u32>, cmd: EchoCmd) {
            match cmd {
                EchoCmd::SendTo(to, v) => ctx.send(to, v),
                EchoCmd::Arm(ms, token) => ctx.set_timer(SimDuration::from_millis(ms), token),
            }
        }
        fn message_size(msg: &u32) -> usize {
            *msg as usize
        }
    }

    fn fixed_net(ms: u64) -> NetworkModel {
        NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(ms)))
    }

    fn sim(n: usize) -> Simulation<Echo> {
        Simulation::new(n, fixed_net(10), 7, |_, _| Echo::default())
    }

    #[test]
    fn init_runs_once_per_node() {
        let s = sim(5);
        assert_eq!(s.len(), 5);
        assert!(s.nodes().all(|(_, p)| p.inits == 1));
    }

    #[test]
    fn message_delivery_with_latency() {
        let mut s = sim(3);
        s.schedule_command(
            SimTime::from_millis(5),
            NodeId::new(0),
            EchoCmd::SendTo(NodeId::new(2), 99),
        );
        s.run_until(SimTime::from_millis(14));
        assert!(s.node(NodeId::new(2)).unwrap().msgs.is_empty(), "not yet");
        s.run_until(SimTime::from_millis(15));
        assert_eq!(s.node(NodeId::new(2)).unwrap().msgs, vec![(NodeId::new(0), 99)]);
    }

    #[test]
    fn transport_stats_account_bytes() {
        let mut s = sim(2);
        s.schedule_command(
            SimTime::ZERO,
            NodeId::new(0),
            EchoCmd::SendTo(NodeId::new(1), 64),
        );
        s.run_until(SimTime::from_secs(1));
        let st0 = s.transport_stats(NodeId::new(0));
        let st1 = s.transport_stats(NodeId::new(1));
        assert_eq!(st0.msgs_sent, 1);
        assert_eq!(st0.bytes_sent, 64);
        assert_eq!(st1.msgs_received, 1);
        assert_eq!(st1.bytes_received, 64);
        s.reset_transport_stats();
        assert_eq!(s.transport_stats(NodeId::new(0)), TransportStats::default());
    }

    #[test]
    fn timers_fire_in_order() {
        let mut s = sim(1);
        s.schedule_command(SimTime::ZERO, NodeId::new(0), EchoCmd::Arm(30, 3));
        s.schedule_command(SimTime::ZERO, NodeId::new(0), EchoCmd::Arm(10, 1));
        s.schedule_command(SimTime::ZERO, NodeId::new(0), EchoCmd::Arm(20, 2));
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.node(NodeId::new(0)).unwrap().timers, vec![1, 2, 3]);
    }

    #[test]
    fn crash_drops_messages_and_timers() {
        let mut s = sim(2);
        s.schedule_command(SimTime::ZERO, NodeId::new(1), EchoCmd::Arm(50, 9));
        s.schedule_crash(SimTime::from_millis(20), NodeId::new(1));
        s.schedule_command(
            SimTime::from_millis(30),
            NodeId::new(0),
            EchoCmd::SendTo(NodeId::new(1), 5),
        );
        s.run_until(SimTime::from_secs(1));
        let p = s.node(NodeId::new(1)).unwrap();
        assert!(p.timers.is_empty(), "timer must not fire after crash");
        assert!(p.msgs.is_empty(), "message must not arrive after crash");
        assert!(!s.is_alive(NodeId::new(1)));
        assert_eq!(s.alive_ids(), vec![NodeId::new(0)]);
    }

    #[test]
    fn crash_hook_sees_time() {
        let mut s = sim(1);
        s.schedule_crash(SimTime::from_millis(25), NodeId::new(0));
        s.run_until(SimTime::from_secs(1));
        // state preserved post-crash for inspection
        assert_eq!(s.node(NodeId::new(0)).unwrap().inits, 1);
    }

    #[test]
    fn rejoin_gets_fresh_state_and_reinit() {
        let mut s = sim(2);
        s.schedule_command(SimTime::ZERO, NodeId::new(1), EchoCmd::Arm(100, 7));
        s.schedule_crash(SimTime::from_millis(10), NodeId::new(1));
        s.schedule_join(SimTime::from_millis(50), NodeId::new(1));
        s.run_until(SimTime::from_secs(1));
        let p = s.node(NodeId::new(1)).unwrap();
        assert_eq!(p.inits, 1, "fresh state from factory");
        assert!(
            p.timers.is_empty(),
            "timer armed before crash must not fire in the new incarnation"
        );
        assert!(s.is_alive(NodeId::new(1)));
    }

    #[test]
    fn double_crash_and_double_join_are_noops() {
        let mut s = sim(1);
        s.schedule_crash(SimTime::from_millis(5), NodeId::new(0));
        s.schedule_crash(SimTime::from_millis(6), NodeId::new(0));
        s.schedule_join(SimTime::from_millis(7), NodeId::new(0));
        s.schedule_join(SimTime::from_millis(8), NodeId::new(0));
        s.run_until(SimTime::from_secs(1));
        assert!(s.is_alive(NodeId::new(0)));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut s = Simulation::new(10, fixed_net(5), seed, |_, _| Echo::default());
            for i in 0..10u32 {
                s.schedule_command(
                    SimTime::from_millis(i as u64),
                    NodeId::new(i % 10),
                    EchoCmd::SendTo(NodeId::new((i + 1) % 10), i),
                );
            }
            s.run_until(SimTime::from_secs(1));
            let msgs: Vec<_> = s.nodes().map(|(_, p)| p.msgs.clone()).collect();
            (msgs, s.events_processed())
        };
        assert_eq!(run(11), run(11));
        assert_eq!(run(11).1, run(11).1);
    }

    #[test]
    fn lossy_network_counts_losses() {
        let net = NetworkModel::lossy(LatencyModel::Constant(SimDuration::from_millis(1)), 0.5);
        let mut s = Simulation::new(2, net, 3, |_, _| Echo::default());
        for i in 0..200 {
            s.schedule_command(
                SimTime::from_millis(i),
                NodeId::new(0),
                EchoCmd::SendTo(NodeId::new(1), 1),
            );
        }
        s.run_until(SimTime::from_secs(2));
        let st = s.transport_stats(NodeId::new(0));
        assert_eq!(st.msgs_sent, 200);
        assert!(st.msgs_lost > 50 && st.msgs_lost < 150, "lost={}", st.msgs_lost);
        let received = s.transport_stats(NodeId::new(1)).msgs_received;
        assert_eq!(received + st.msgs_lost, 200);
    }

    #[test]
    fn event_budget_stops_run() {
        let mut s = sim(1);
        s.set_max_events(2);
        for i in 0..10 {
            s.schedule_command(SimTime::from_millis(i), NodeId::new(0), EchoCmd::Arm(1, i));
        }
        let report = s.run_until(SimTime::from_secs(1));
        assert!(!report.completed);
        assert!(report.events <= 2);
    }

    #[test]
    fn step_processes_single_event() {
        let mut s = sim(1);
        s.schedule_command(SimTime::from_millis(3), NodeId::new(0), EchoCmd::Arm(1, 1));
        let t = s.step().unwrap();
        assert_eq!(t, SimTime::from_millis(3));
        assert_eq!(s.node(NodeId::new(0)).unwrap().timers.len(), 0);
        let t2 = s.step().unwrap();
        assert_eq!(t2, SimTime::from_millis(4));
        assert_eq!(s.node(NodeId::new(0)).unwrap().timers, vec![1]);
        assert!(s.step().is_none());
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut s = sim(1);
        s.run_until(SimTime::from_secs(5));
        assert_eq!(s.now(), SimTime::from_secs(5));
    }

    #[test]
    fn commands_to_crashed_nodes_are_dropped() {
        let mut s = sim(1);
        s.schedule_crash(SimTime::from_millis(1), NodeId::new(0));
        s.schedule_command(SimTime::from_millis(2), NodeId::new(0), EchoCmd::Arm(1, 1));
        s.run_until(SimTime::from_secs(1));
        assert!(s.node(NodeId::new(0)).unwrap().timers.is_empty());
    }

    #[test]
    fn partition_mid_run() {
        let mut s = sim(2);
        s.network_mut().partition(vec![0, 1]);
        s.schedule_command(
            SimTime::from_millis(1),
            NodeId::new(0),
            EchoCmd::SendTo(NodeId::new(1), 1),
        );
        s.run_until(SimTime::from_millis(100));
        assert!(s.node(NodeId::new(1)).unwrap().msgs.is_empty());
        s.network_mut().heal();
        s.schedule_command(
            SimTime::from_millis(101),
            NodeId::new(0),
            EchoCmd::SendTo(NodeId::new(1), 2),
        );
        s.run_until(SimTime::from_secs(1));
        assert_eq!(s.node(NodeId::new(1)).unwrap().msgs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Simulation::new(0, NetworkModel::default(), 1, |_, _| Echo::default());
    }
}
