//! # fed-sim
//!
//! A deterministic discrete-event simulator for message-passing protocols.
//!
//! This is the substrate on which every dissemination system in the `fed`
//! workspace runs — the paper under reproduction ("Towards Fair Event
//! Dissemination", ICDCS 2007) is a position paper without a testbed, and
//! the gossip literature it builds on (Bimodal Multicast, lpbcast, Cyclon)
//! evaluates protocols exactly this way: simulated nodes, per-message
//! latency/loss models, and churn schedules.
//!
//! ## Model
//!
//! * Nodes are instances of a [`Protocol`] state machine, addressed by dense
//!   [`NodeId`]s.
//! * All side effects (sends, timers) flow through [`Context`]; the engine
//!   decides latency and loss via a [`network::NetworkModel`].
//! * Virtual time ([`SimTime`]) is microsecond-granular and never touches
//!   the wall clock; a single `u64` seed determines the entire execution.
//! * Churn is first-class: crashes destroy timers, rejoins rebuild state via
//!   the node factory and re-run `on_init`.
//!
//! See [`Simulation`] for a runnable example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod exec;
pub mod network;
pub mod protocol;
pub mod time;

pub use engine::{RunReport, Simulation, TransportStats};
pub use exec::{HopKind, HopRecord, NullTracer, Tracer};
pub use protocol::{Context, NodeId, Protocol};
pub use time::{SimDuration, SimTime};
