//! The protocol abstraction every dissemination system implements.
//!
//! A protocol is a deterministic state machine per node, driven by four
//! callbacks: initialization, message receipt, timer expiry and external
//! commands (e.g. "publish this event"). All side effects go through the
//! [`Context`]: sending messages and arming timers. The engine owns
//! delivery, loss, latency and per-node randomness.

use crate::time::{SimDuration, SimTime};
use fed_util::rng::Xoshiro256StarStar;
use std::fmt;

/// Identifier of a simulated node (dense indices `0..n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates an id from a dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A protocol callback invocation, routed by the execution kernel.
pub(crate) enum Invoke<P: Protocol> {
    Init,
    Message { from: NodeId, msg: P::Msg },
    Timer(u64),
    Command(P::Cmd),
}

/// A queued side effect produced by a protocol callback.
#[derive(Debug, Clone)]
pub(crate) enum Outgoing<M> {
    /// Send `msg` to `to` over the simulated network.
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload.
        msg: M,
    },
    /// Fire `on_timer(token)` after `delay`.
    Timer {
        /// Delay from now.
        delay: SimDuration,
        /// Opaque token returned to the protocol.
        token: u64,
    },
}

/// Handle through which a protocol interacts with the simulated world.
///
/// Borrowed mutably for the duration of one callback; everything it exposes
/// is deterministic given the simulation seed.
#[derive(Debug)]
pub struct Context<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) now: SimTime,
    pub(crate) n: usize,
    pub(crate) rng: &'a mut Xoshiro256StarStar,
    pub(crate) outbox: &'a mut Vec<Outgoing<M>>,
}

impl<'a, M> Context<'a, M> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of node slots in the simulation (alive or not).
    ///
    /// Protocols that need *membership* should use a membership view rather
    /// than this raw bound; it exists so uniform peer sampling oracles can be
    /// built on top.
    pub fn system_size(&self) -> usize {
        self.n
    }

    /// This node's private deterministic random stream.
    pub fn rng(&mut self) -> &mut Xoshiro256StarStar {
        self.rng
    }

    /// Queues `msg` for delivery to `to`.
    ///
    /// Delivery is asynchronous: latency and loss are decided by the
    /// engine's [`crate::network::NetworkModel`]. Sending to self is allowed
    /// and goes through the network like any other message.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(Outgoing::Send { to, msg });
    }

    /// Arms a one-shot timer; `on_timer(token)` fires after `delay`.
    ///
    /// Timers do not survive a crash: a node that crashes and rejoins starts
    /// with a clean timer set (its `on_init` runs again).
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.outbox.push(Outgoing::Timer { delay, token });
    }

    /// Runs a closure against an inner context over a different message
    /// type, then maps every queued send through `wrap` into this context's
    /// outbox. Timers pass through unchanged — a host embedding several
    /// sub-protocols must namespace their timer tokens so it can route
    /// `on_timer` back to the right one.
    ///
    /// This is how composite protocols (e.g. a broker/gossip hybrid) drive
    /// embedded [`Protocol`] implementations without duplicating the
    /// engine's effect plumbing: the inner protocol sees a fully functional
    /// deterministic context sharing this node's RNG stream and clock.
    pub fn scoped<M2, R>(
        &mut self,
        wrap: impl Fn(M2) -> M,
        f: impl FnOnce(&mut Context<'_, M2>) -> R,
    ) -> R {
        let mut inner_box: Vec<Outgoing<M2>> = Vec::new();
        let out = {
            let mut inner = Context {
                node: self.node,
                now: self.now,
                n: self.n,
                rng: self.rng,
                outbox: &mut inner_box,
            };
            f(&mut inner)
        };
        for effect in inner_box {
            match effect {
                Outgoing::Send { to, msg } => {
                    self.outbox.push(Outgoing::Send { to, msg: wrap(msg) })
                }
                Outgoing::Timer { delay, token } => {
                    self.outbox.push(Outgoing::Timer { delay, token })
                }
            }
        }
        out
    }
}

/// A dissemination protocol: per-node deterministic state machine.
///
/// Implementations must not use any randomness outside [`Context::rng`] and
/// must not read wall-clock time; this is what makes simulations replayable.
pub trait Protocol: Sized {
    /// The wire message type.
    type Msg: Clone;
    /// External command type (application-level injections such as
    /// "publish" or "subscribe").
    type Cmd: Clone;

    /// Called once when the node starts (also after a rejoin).
    fn on_init(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a message arrives.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg>, token: u64);

    /// Called when an external command is injected for this node.
    fn on_command(&mut self, _ctx: &mut Context<'_, Self::Msg>, _cmd: Self::Cmd) {}

    /// Called when the node crashes (no context: a crashed node cannot act).
    fn on_crash(&mut self, _at: SimTime) {}

    /// Abstract size of a message in bytes, used for byte-level contribution
    /// accounting (the paper's Figure 3 modulates contribution by message
    /// size). The default charges one unit per message.
    fn message_size(_msg: &Self::Msg) -> usize {
        1
    }

    /// Enumerates the application events `msg` carries, for per-event
    /// causal tracing ([`crate::Tracer`]).
    ///
    /// Called only while a tracer is attached, once per network send, on
    /// the sender's side. For every application event the message carries,
    /// the implementation calls `emit(event, topic, bytes, kind)` with the
    /// packed event id, its topic, the bytes that event contributes to the
    /// message, and the protocol's [`crate::HopKind`] classification of
    /// the hop. Control traffic (acks, joins, membership) emits nothing.
    /// The default treats every message as control traffic, so protocols
    /// opt into tracing explicitly.
    fn trace_payload(_msg: &Self::Msg, _emit: &mut dyn FnMut(u64, u32, u32, crate::HopKind)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_basics() {
        let id = NodeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.as_u32(), 7);
        assert_eq!(format!("{id}"), "n7");
        assert_eq!(NodeId::from(3u32), NodeId::new(3));
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn context_queues_effects() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut outbox: Vec<Outgoing<&'static str>> = Vec::new();
        let mut ctx = Context {
            node: NodeId::new(0),
            now: SimTime::from_millis(5),
            n: 10,
            rng: &mut rng,
            outbox: &mut outbox,
        };
        assert_eq!(ctx.id(), NodeId::new(0));
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        assert_eq!(ctx.system_size(), 10);
        let _ = ctx.rng().next_u64();
        ctx.send(NodeId::new(3), "hello");
        ctx.set_timer(SimDuration::from_millis(100), 42);
        assert_eq!(outbox.len(), 2);
        match &outbox[0] {
            Outgoing::Send { to, msg } => {
                assert_eq!(*to, NodeId::new(3));
                assert_eq!(*msg, "hello");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &outbox[1] {
            Outgoing::Timer { delay, token } => {
                assert_eq!(*delay, SimDuration::from_millis(100));
                assert_eq!(*token, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    use fed_util::rng::Rng64;
}
