//! The execution substrate shared by the sequential and sharded engines.
//!
//! [`Simulation`](crate::Simulation) and `fed-cluster`'s sharded runtime
//! run the *same* discrete-event computation; this module holds the pieces
//! both need, factored so results are independent of which engine executes
//! them:
//!
//! * **Canonical event keys.** Every event carries an [`EventKey`] of
//!   `(time, source node, per-source sequence)` assigned by its *producer*,
//!   and events are processed in key order. Because the key never depends
//!   on global queue insertion order, a sharded engine that merges event
//!   streams at time-window barriers pops events in exactly the order the
//!   sequential engine does.
//! * **Per-node random streams.** Each node owns two generators forked
//!   deterministically from the master seed in node-id order
//!   ([`seed_streams`]): one for protocol callbacks, one for sampling the
//!   network fate (loss, latency) of its outgoing messages. No stream is
//!   shared across nodes, so cross-node interleaving cannot perturb them.
//! * **The [`Kernel`].** Node slots, timer incarnations,
//!   [`TransportStats`] accounting and network sampling for a (sub)set of
//!   nodes, with all produced events routed through an [`EffectSink`] —
//!   a heap for the sequential engine, a local-queue/remote-outbox
//!   splitter for a shard.
//!
//! Delivery latency is floored at [`MIN_NETWORK_LATENCY`] (1 µs): the
//! network never delivers in zero virtual time. This gives every network
//! model a positive conservative lookahead
//! ([`NetworkModel::min_latency`]), which is what allows a sharded engine
//! to process a full lookahead-wide window per barrier.

use crate::network::NetworkModel;
use crate::protocol::{Context, Invoke, NodeId, Outgoing, Protocol};
use crate::time::{SimDuration, SimTime};
use fed_util::rng::{Rng64, Xoshiro256StarStar};

/// The minimum virtual-time latency of any delivered message.
///
/// A positive floor guarantees every network model has a usable
/// conservative lookahead; see the module docs.
pub const MIN_NETWORK_LATENCY: SimDuration = SimDuration::from_micros(1);

/// Source id used for externally scheduled events (commands, churn).
///
/// Real nodes have dense ids `0..n`, far below this sentinel.
pub const EXTERNAL_SRC: u32 = u32::MAX;

/// Per-node transport accounting maintained by the engine.
///
/// "Sent" counts every transmission attempt (a lost message still cost the
/// sender its bandwidth — contribution accounting must include it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages handed to the network.
    pub msgs_sent: u64,
    /// Bytes handed to the network (per [`Protocol::message_size`]).
    pub bytes_sent: u64,
    /// Messages delivered to this node.
    pub msgs_received: u64,
    /// Bytes delivered to this node.
    pub bytes_received: u64,
    /// Messages this node sent that the network dropped.
    pub msgs_lost: u64,
}

/// Work counters maintained by an [`EventQueue`], for the profiler.
///
/// `pushes` and `pops` count *external* queue traffic — events handed to
/// the queue and events handed back — never internal reshuffling (a
/// calendar re-base moves events between internal levels without touching
/// either counter). Every event enters exactly one queue exactly once on
/// either engine, so summing `pushes`/`pops` across shards reproduces the
/// sequential engine's counts bit for bit at any shard count.
///
/// `overflow_hits` counts events parked beyond the calendar horizon
/// (including re-parks during a re-base). It depends on per-queue bucket
/// geometry, which sees only the shard's own event density — so it is
/// deterministic for a fixed configuration but **not** partition
/// invariant, and is reported rather than parity-gated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events enqueued (external pushes only).
    pub pushes: u64,
    /// Events dequeued.
    pub pops: u64,
    /// Events that landed beyond the calendar horizon.
    pub overflow_hits: u64,
}

impl QueueStats {
    /// Adds `other`'s counts into `self` (exact, associative,
    /// commutative).
    pub fn merge(&mut self, other: &QueueStats) {
        self.pushes += other.pushes;
        self.pops += other.pops;
        self.overflow_hits += other.overflow_hits;
    }
}

/// The canonical total order on events.
///
/// `(time, src, seq)`: virtual time first, then producing node, then that
/// producer's monotone sequence number. Two engines that process the same
/// event set in key order per receiving node produce identical executions,
/// because the key is assigned at production time and never references
/// global queue state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// When the event fires.
    pub time: SimTime,
    /// The producing node ([`EXTERNAL_SRC`] for scheduled inputs).
    pub src: u32,
    /// The producer's sequence number at production time.
    pub seq: u64,
}

/// A simulation event, addressed to one node.
#[derive(Debug, Clone)]
pub enum EventKind<P: Protocol> {
    /// Deliver `msg` from `from` to `to`.
    Deliver {
        /// Destination node.
        to: NodeId,
        /// Sender.
        from: NodeId,
        /// Payload.
        msg: P::Msg,
    },
    /// Fire `on_timer(token)` at `node`, if it is still in `incarnation`.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// Opaque token handed back to the protocol.
        token: u64,
        /// Incarnation that armed the timer; stale timers are dropped.
        incarnation: u32,
    },
    /// Deliver an application command to `node`.
    Command {
        /// Destination node.
        node: NodeId,
        /// The command.
        cmd: P::Cmd,
    },
    /// Crash the node (timers die, state is kept for inspection).
    Crash(NodeId),
    /// (Re)join the node with fresh state from the factory.
    Join(NodeId),
}

impl<P: Protocol> EventKind<P> {
    /// The node this event is addressed to.
    pub fn dest(&self) -> NodeId {
        match self {
            EventKind::Deliver { to, .. } => *to,
            EventKind::Timer { node, .. } | EventKind::Command { node, .. } => *node,
            EventKind::Crash(node) | EventKind::Join(node) => *node,
        }
    }
}

/// Number of calendar buckets (a power of two; the occupancy bitmap below
/// assumes a multiple of 64).
const CAL_BUCKETS: usize = 512;
/// Words in the bucket-occupancy bitmap.
const CAL_WORDS: usize = CAL_BUCKETS / 64;
/// Largest permitted bucket-width exponent: buckets never exceed
/// 2^44 µs (~200 days of virtual time), keeping all index arithmetic
/// comfortably inside `u64`.
const MAX_BUCKET_SHIFT: u32 = 44;
/// Initial bucket-width exponent: 2^12 µs ≈ 4 ms buckets, so the first
/// calendar epoch spans ~2 s — sized for the millisecond-scale latency
/// models the scenarios use. Later epochs re-derive the width from the
/// observed event density.
const INITIAL_BUCKET_SHIFT: u32 = 12;

/// A pending-event queue, popping in [`EventKey`] order.
///
/// Implemented as a two-level calendar ("ladder") queue bucketed by
/// [`SimTime`] instead of a comparison-based heap:
///
/// * **Front rung.** A vector sorted descending by key (pop takes the
///   back) holding every pending event with `time < front_end`. The
///   common pops are O(1); a push landing inside the front range does a
///   binary-search insert.
/// * **Calendar.** `CAL_BUCKETS` (512) unsorted buckets of `2^shift` µs each
///   covering `[base, base + CAL_BUCKETS·2^shift)`. A push into the
///   future appends to its bucket in O(1); when the front drains, the
///   next non-empty bucket (found through an occupancy bitmap) is sorted
///   once and becomes the new front, so each event is sorted exactly once
///   against its near neighbours instead of paying O(log n) full-key
///   comparisons on every heap rotation.
/// * **Overflow.** Events beyond the calendar horizon collect unsorted;
///   when the calendar drains the queue re-bases around the overflow's
///   minimum, re-deriving the bucket width from the observed density
///   (span / bucket count), which keeps push/pop amortized O(1) for any
///   event-time distribution.
///
/// The pop order is exactly the total [`EventKey`] order — identical to
/// the former binary heap — for *any* push pattern, including pushes
/// earlier than events already popped (they land in the front rung and
/// pop next). Internal bucket geometry never affects pop order, so the
/// queue stays bit-compatible across engines and shard counts.
pub struct EventQueue<P: Protocol> {
    /// Sorted descending by key; the back is the earliest pending event.
    /// Holds every pending event with `time < front_end`.
    front: Vec<(EventKey, EventKind<P>)>,
    /// Exclusive upper bound (µs) of the front rung's time range.
    front_end: u64,
    /// Unsorted buckets; bucket `i` spans
    /// `[base + i·2^shift, base + (i+1)·2^shift)`.
    buckets: Vec<Vec<(EventKey, EventKind<P>)>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; CAL_WORDS],
    /// Start (µs) of bucket 0's range.
    base: u64,
    /// Bucket width exponent: each bucket spans `2^shift` µs.
    shift: u32,
    /// Buckets below `cursor` are drained (folded into the front range).
    cursor: usize,
    /// Events at or beyond the calendar horizon, unsorted.
    overflow: Vec<(EventKey, EventKind<P>)>,
    /// Minimum event time (µs) in `overflow`; `u64::MAX` when empty.
    overflow_min: u64,
    /// Cached `(bucket, min time)` of the last bucket probed by a bounded
    /// settle; kept fresh by pushes, so repeated `pop_before` calls that
    /// stop short of the same bucket scan it once, not once per window.
    probed: Option<(usize, u64)>,
    /// Total pending events across front, buckets and overflow.
    len: usize,
    /// Work counters (external pushes/pops, overflow hits).
    stats: QueueStats,
}

impl<P: Protocol> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> EventQueue<P> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            front: Vec::new(),
            front_end: 0,
            buckets: (0..CAL_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; CAL_WORDS],
            base: 0,
            shift: INITIAL_BUCKET_SHIFT,
            cursor: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            probed: None,
            len: 0,
            stats: QueueStats::default(),
        }
    }

    /// This queue's work counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Enqueues an event.
    pub fn push(&mut self, key: EventKey, kind: EventKind<P>) {
        self.len += 1;
        self.stats.pushes += 1;
        let t = key.time.as_micros();
        if t < self.front_end {
            // An empty front lets us retract the front boundary to the
            // event's own bucket instead of paying a sorted insert: this
            // is the hot path for barrier-exchanged batches, which land
            // after the previous window drained the front clean. Bulk
            // bursts then collect in a bucket (O(1) per push) and are
            // sorted once, instead of insertion-sorting into the front
            // one memmove at a time.
            if self.front.is_empty() && t >= self.base {
                let idx = ((t - self.base) >> self.shift) as usize;
                debug_assert!(idx < CAL_BUCKETS, "t < front_end stays inside the calendar");
                self.cursor = idx;
                self.front_end = self.base.saturating_add((idx as u64) << self.shift);
            } else {
                // Descending order: find the first entry not greater
                // than the new key. Conservative windows make these
                // pushes land near the back (the pop point), so the
                // memmove is short.
                let at = self.front.partition_point(|e| e.0 > key);
                self.front.insert(at, (key, kind));
                return;
            }
        }
        let idx = (t - self.base) >> self.shift;
        if idx < CAL_BUCKETS as u64 {
            let idx = idx as usize;
            if let Some((b, m)) = &mut self.probed {
                if *b == idx {
                    *m = (*m).min(t);
                }
            }
            self.buckets[idx].push((key, kind));
            self.occupied[idx / 64] |= 1 << (idx % 64);
        } else {
            self.stats.overflow_hits += 1;
            self.overflow_min = self.overflow_min.min(t);
            self.overflow.push((key, kind));
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(EventKey, EventKind<P>)> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        self.len -= 1;
        self.stats.pops += 1;
        self.front.pop()
    }

    /// Removes the earliest event only if it fires strictly before `end`.
    ///
    /// One key comparison against the (already sorted) front rung, then an
    /// O(1) pop — no second peek. Settling is bounded by `end`: buckets
    /// that start at or past the cutoff are left untouched, so the front
    /// boundary never runs ahead of the caller's window (which would turn
    /// the next batch of pushes into sorted front inserts).
    pub fn pop_before(&mut self, end: SimTime) -> Option<(EventKey, EventKind<P>)> {
        if self.len == 0 {
            return None;
        }
        self.settle_before(end.as_micros());
        if self.front.last()?.0.time < end {
            self.len -= 1;
            self.stats.pops += 1;
            self.front.pop()
        } else {
            None
        }
    }

    /// The firing time of the earliest pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        if let Some(e) = self.front.last() {
            return Some(e.0.time);
        }
        if let Some(i) = self.next_occupied(self.cursor) {
            // Buckets before `i` are empty and overflow lies beyond the
            // calendar horizon, so the earliest event is in bucket `i` —
            // whose minimum a bounded settle usually just probed.
            if let Some((b, m)) = self.probed {
                if b == i {
                    return Some(SimTime::from_micros(m));
                }
            }
            return self.buckets[i].iter().map(|e| e.0.time).min();
        }
        if !self.overflow.is_empty() {
            return Some(SimTime::from_micros(self.overflow_min));
        }
        None
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of the first non-empty bucket at or after `from`, if any.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= CAL_BUCKETS {
            return None;
        }
        let mut w = from / 64;
        let mut bits = self.occupied[w] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w >= CAL_WORDS {
                return None;
            }
            bits = self.occupied[w];
        }
    }

    /// Refills the front rung from the calendar (re-basing around the
    /// overflow when the calendar is drained) until it holds the earliest
    /// pending event. No-op when the front is non-empty or the queue is
    /// empty.
    fn settle(&mut self) {
        while self.front.is_empty() && self.len > 0 {
            match self.next_occupied(self.cursor) {
                Some(i) => self.drain_bucket(i),
                None => self.rebase(),
            }
        }
    }

    /// [`EventQueue::settle`], but never touches a bucket (or the
    /// overflow) whose time range starts at or past `cutoff` µs — their
    /// entries cannot fire before the cutoff, so leaving them unsorted
    /// keeps later pushes below the front boundary O(1).
    fn settle_before(&mut self, cutoff: u64) {
        while self.front.is_empty() && self.len > 0 {
            match self.next_occupied(self.cursor) {
                Some(i) => {
                    let bucket_start = self.base.saturating_add((i as u64) << self.shift);
                    if bucket_start >= cutoff {
                        return;
                    }
                    // The bucket's range straddles the cutoff; drain it
                    // only if something in it actually fires this early.
                    // Pre-sorting a next-window burst into the front
                    // would turn that window's inbound pushes into
                    // quadratic sorted inserts.
                    let min = match self.probed {
                        Some((b, m)) if b == i => m,
                        _ => {
                            let m = self.buckets[i]
                                .iter()
                                .map(|e| e.0.time.as_micros())
                                .min()
                                .expect("occupied bucket is non-empty");
                            self.probed = Some((i, m));
                            m
                        }
                    };
                    if min >= cutoff {
                        return;
                    }
                    self.drain_bucket(i);
                }
                // Everything left is in the overflow; it cannot hold
                // anything firing before the cutoff, so skip the re-base.
                None if self.overflow_min >= cutoff => return,
                None => self.rebase(),
            }
        }
    }

    /// Moves bucket `i`'s entries into the front rung, sorted descending.
    fn drain_bucket(&mut self, i: usize) {
        self.probed = None;
        let mut entries = std::mem::take(&mut self.buckets[i]);
        self.occupied[i / 64] &= !(1 << (i % 64));
        entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
        self.front = entries;
        self.cursor = i + 1;
        self.front_end = self.base.saturating_add((i as u64 + 1) << self.shift);
    }

    /// Rebuilds the calendar around the overflow's minimum, re-deriving
    /// the bucket width from the overflow's observed time span.
    fn rebase(&mut self) {
        assert!(
            !self.overflow.is_empty(),
            "pending events unaccounted for: len says {} remain",
            self.len
        );
        self.probed = None; // bucket geometry changes below
        let entries = std::mem::take(&mut self.overflow);
        let min = self.overflow_min;
        let max = entries
            .iter()
            .map(|e| e.0.time.as_micros())
            .max()
            .expect("non-empty overflow");
        // Width ≈ span / buckets, rounded up to a power of two so every
        // entry fits the new horizon (entries of a span wider than the
        // largest bucket geometry simply re-overflow; the minimum always
        // lands in bucket 0, so each rebase makes progress).
        let width = (max - min) / CAL_BUCKETS as u64 + 1;
        self.shift = if width > 1 << MAX_BUCKET_SHIFT {
            MAX_BUCKET_SHIFT
        } else {
            width.next_power_of_two().trailing_zeros()
        };
        self.base = min;
        self.cursor = 0;
        self.front_end = min;
        self.overflow_min = u64::MAX;
        // Re-pushed below: neither `len` nor the external push counter may
        // double-count them (overflow hits *are* re-counted — a re-park is
        // another hit on the overflow level).
        self.len -= entries.len();
        self.stats.pushes -= entries.len() as u64;
        for (key, kind) in entries {
            self.push(key, kind);
        }
    }
}

impl<P: Protocol> EffectSink<P> for EventQueue<P> {
    fn emit(&mut self, key: EventKey, kind: EventKind<P>) {
        self.push(key, kind);
    }
}

/// Receives the events a [`Kernel`] produces while dispatching.
///
/// The sequential engine's sink is its own [`EventQueue`]; a shard's sink
/// pushes locally-addressed events onto its queue and stages cross-shard
/// deliveries in an outbox drained at the next window barrier.
pub trait EffectSink<P: Protocol> {
    /// Accepts one produced event.
    fn emit(&mut self, key: EventKey, kind: EventKind<P>);
}

/// Fate of one message handed to the network, as seen by a [`Probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// The network accepted the message and will deliver it at `at`
    /// (already floored at [`MIN_NETWORK_LATENCY`]).
    Delivered {
        /// The scheduled delivery instant.
        at: SimTime,
    },
    /// The network dropped the message.
    Lost,
}

/// Passive observation hooks over the execution substrate.
///
/// A probe watches the kernel work without being able to influence it:
/// every hook receives copies of values the kernel already computed, so
/// attaching a probe can never perturb the virtual-world outcome. Both
/// engines thread an *optional* probe through
/// [`Kernel::dispatch`] — when none is attached the per-event cost is a
/// skipped `Option` branch, which is what makes telemetry free when
/// disabled.
///
/// On a sharded engine each worker owns its own probe and only observes
/// the nodes its kernel owns; a probe implementation that wants global
/// aggregates must therefore be mergeable across shards (see the
/// `fed-telemetry` crate, the primary implementor).
///
/// All hooks default to no-ops so implementors subscribe only to what
/// they need.
pub trait Probe {
    /// One event is about to be dispatched at virtual time `now`.
    ///
    /// Fires once per processed event, before any effect of the event —
    /// matching the engines' `events_processed` accounting exactly.
    fn on_event(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Owned node `node` handed a `bytes`-sized message to the network at
    /// `now` (counted whether or not the network drops it — a lost
    /// message still cost the sender its bandwidth).
    fn on_send(&mut self, now: SimTime, node: NodeId, bytes: u64, fate: SendFate) {
        let _ = (now, node, bytes, fate);
    }

    /// A `bytes`-sized message was delivered to alive owned node `node`.
    fn on_receive(&mut self, now: SimTime, node: NodeId, bytes: u64) {
        let _ = (now, node, bytes);
    }

    /// Owned node `node` crashed (`alive == false`) or (re)joined
    /// (`alive == true`). Fires only on actual transitions — duplicate
    /// crash/join events are no-ops and stay invisible.
    fn on_liveness(&mut self, now: SimTime, node: NodeId, alive: bool) {
        let _ = (now, node, alive);
    }
}

/// The disabled probe: every hook is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Reborrows an optional probe for one more use.
///
/// `Option::as_deref_mut` cannot shorten the trait-object lifetime of
/// `&mut dyn Probe` inside a dispatch loop (the `dyn` lifetime is
/// invariant behind `&mut`), so the engines reborrow explicitly.
pub(crate) fn reborrow<'a>(probe: &'a mut Option<&mut dyn Probe>) -> Option<&'a mut dyn Probe> {
    match probe {
        Some(p) => Some(&mut **p),
        None => None,
    }
}

/// An engine phase wall-clock time can be attributed to.
///
/// Virtual-world results never depend on these — they classify where the
/// *host* spends real time, for the `fed-profile` subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProfilePhase {
    /// Popping and dispatching events.
    Execute,
    /// Exchanging cross-shard mailbox batches: pushing absorbed events
    /// into the local queue and staging/sending outbound batches.
    Exchange,
    /// Blocked absorbing a peer's next-window batch that is still in
    /// flight — pipeline fill, not a straggler stall: the shard finished
    /// its own window and folded, and is overlapping the slower shards'
    /// execution by pre-merging their outbound batches.
    Fill,
    /// Waiting at a barrier for the next window decision — the genuine
    /// straggler stall: the reduction completes only when the slowest
    /// shard folds its summary.
    Barrier,
    /// Waiting at a barrier with no local work pending (the preceding
    /// window executed zero events on this shard).
    Idle,
}

/// One conservative window's work, as one shard saw it.
///
/// `events` and `end` are deterministic; the wall-clock fields are host
/// measurements and vary run to run.
#[derive(Debug, Clone, Copy)]
pub struct WindowWork {
    /// Exclusive virtual-time end of the window for this shard.
    pub end: SimTime,
    /// Events this shard executed inside the window.
    pub events: u64,
    /// Wall nanoseconds spent popping/dispatching.
    pub execute_ns: u64,
    /// Wall nanoseconds spent draining/sending mailbox batches (the
    /// non-blocking part of the exchange: queue pushes and channel
    /// sends).
    pub exchange_ns: u64,
    /// Wall nanoseconds blocked absorbing peers' next-window batches
    /// still in flight (pipeline fill — overlaps straggler execution).
    /// Zero on windows whose batches had already arrived.
    pub fill_ns: u64,
    /// Wall nanoseconds spent waiting for the window to be issued (the
    /// straggler stall at the reduction barrier).
    pub wait_ns: u64,
}

/// Profiling hooks over the execution substrate, beside [`Probe`].
///
/// Where a probe observes the *virtual world* (sends, deliveries,
/// liveness), a profiler observes the *engine*: events dispatched, phase
/// wall clocks, conservative windows, mailbox traffic. Both engines
/// thread an optional profiler through [`Kernel::dispatch`]; when none is
/// attached the per-event cost is a skipped `Option` branch, so profiling
/// is free when off.
///
/// Deterministic hooks ([`Profiler::on_event`]) fire identically on both
/// engines; wall-clock hooks ([`Profiler::on_phase`],
/// [`Profiler::on_window`]) are host measurements. The `fed-profile`
/// crate's collector is the primary implementor and keeps the two
/// strictly separated.
pub trait Profiler {
    /// One event is about to be dispatched at virtual time `now`
    /// (deterministic; fires exactly like [`Probe::on_event`]).
    fn on_event(&mut self, now: SimTime) {
        let _ = now;
    }

    /// `nanos` of wall clock attributed to `phase`.
    fn on_phase(&mut self, phase: ProfilePhase, nanos: u64) {
        let _ = (phase, nanos);
    }

    /// One conservative window completed on this shard.
    fn on_window(&mut self, work: WindowWork) {
        let _ = work;
    }

    /// This shard staged `msgs` cross-shard mailbox messages totalling
    /// `bytes` payload bytes during the last window.
    fn on_mailbox(&mut self, msgs: u64, bytes: u64) {
        let _ = (msgs, bytes);
    }
}

/// The disabled profiler: every hook is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProfiler;

impl Profiler for NullProfiler {}

/// Reborrows an optional profiler so it can be handed to a callee without
/// giving it away (mirrors [`reborrow`] for probes).
pub(crate) fn reborrow_profiler<'a>(
    profiler: &'a mut Option<&mut dyn Profiler>,
) -> Option<&'a mut dyn Profiler> {
    match profiler {
        Some(p) => Some(&mut **p),
        None => None,
    }
}

/// Protocol-assigned classification of one traced hop.
///
/// Every [`Protocol`] tags the hops it produces via
/// [`Protocol::trace_payload`], so a trace can distinguish a broker relay
/// from a gossip forward from a tree edge without knowing which
/// architecture produced it. Variants carry stable `u8` tags (see
/// [`HopKind::tag`]) so serialized traces stay comparable across builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum HopKind {
    /// An epidemic push carrying application events (gossip round or
    /// publisher seed).
    GossipPush = 0,
    /// A handoff bridging a publisher into a group it is not part of.
    GossipHandoff = 1,
    /// A client submitting a publication to a broker hub.
    BrokerIngress = 2,
    /// A broker hub notifying one subscriber.
    BrokerNotify = 3,
    /// A hop routing an event toward a rendezvous/tree root.
    TreeToRoot = 4,
    /// A multicast-tree edge from parent to child.
    TreeEdge = 5,
    /// A DHT routing hop toward an index node.
    DhtRoute = 6,
    /// An infect-and-die flood inside a topic group.
    GroupFlood = 7,
    /// A stripe publication routed toward its stripe root.
    StripeToRoot = 8,
    /// A stripe-tree edge from parent to child.
    StripeEdge = 9,
}

impl HopKind {
    /// Stable serialization tag of this kind.
    pub const fn tag(self) -> u8 {
        self as u8
    }

    /// Short lowercase name, for tables and JSON export.
    pub const fn name(self) -> &'static str {
        match self {
            HopKind::GossipPush => "gossip-push",
            HopKind::GossipHandoff => "gossip-handoff",
            HopKind::BrokerIngress => "broker-ingress",
            HopKind::BrokerNotify => "broker-notify",
            HopKind::TreeToRoot => "tree-to-root",
            HopKind::TreeEdge => "tree-edge",
            HopKind::DhtRoute => "dht-route",
            HopKind::GroupFlood => "group-flood",
            HopKind::StripeToRoot => "stripe-to-root",
            HopKind::StripeEdge => "stripe-edge",
        }
    }
}

/// One application event's passage over one network hop.
///
/// Recorded on the *sender's* side at transmission time, so on a sharded
/// engine each hop is recorded exactly once — on the shard owning the
/// sender — regardless of where the receiver lives. Every field is
/// deterministic (virtual times, ids, sizes), so trace buffers are
/// partition-invariant and merge byte-identically across engines.
///
/// The derived `Ord` is the canonical trace order used to merge
/// shard-local buffers: `(send_time, from, to, event, kind, …)` — fully
/// identical records (possible when one callback retransmits the same
/// payload) compare equal and are interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HopRecord {
    /// Virtual time the sender handed the message to the network.
    pub send_time: SimTime,
    /// Sending node.
    pub from: u32,
    /// Destination node.
    pub to: u32,
    /// Packed application event id (publisher in the high word, the
    /// publisher's sequence number in the low word).
    pub event: u64,
    /// Topic the event belongs to.
    pub topic: u32,
    /// Protocol-assigned hop classification.
    pub kind: HopKind,
    /// Bytes this event contributed to the carrying message.
    pub bytes: u32,
    /// Scheduled delivery instant; `None` when the network dropped the
    /// message.
    pub deliver_time: Option<SimTime>,
}

/// Per-event causal tracing hooks over the execution substrate, beside
/// [`Probe`] and [`Profiler`].
///
/// A tracer observes application events crossing network hops: whenever a
/// traced node hands a message to the network, the kernel asks the
/// protocol to enumerate the application events it carries
/// ([`Protocol::trace_payload`]) and reports one [`HopRecord`] per event.
/// Everything a tracer sees is deterministic, so attaching one can never
/// perturb the virtual-world outcome; when none is attached the per-send
/// cost is a skipped `Option` branch, which keeps tracing free when off.
///
/// Time-zero `on_init` effects run before any tracer can be attached
/// (mirroring probes), so they are consistently unobserved on every
/// engine; a *rejoin*'s init effects happen during dispatch and are
/// traced.
pub trait Tracer {
    /// One application event crossed (or was dropped on) one hop.
    fn on_hop(&mut self, hop: HopRecord) {
        let _ = hop;
    }
}

/// The disabled tracer: every hook is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {}

/// Reborrows an optional tracer (mirrors [`reborrow`] for probes).
pub(crate) fn reborrow_tracer<'a>(
    tracer: &'a mut Option<&mut dyn Tracer>,
) -> Option<&'a mut dyn Tracer> {
    match tracer {
        Some(t) => Some(&mut **t),
        None => None,
    }
}

/// Enumerates `msg`'s application payload via [`Protocol::trace_payload`]
/// and reports one [`HopRecord`] per carried event.
fn trace_send<P: Protocol>(
    tracer: &mut dyn Tracer,
    msg: &P::Msg,
    from: NodeId,
    to: NodeId,
    send_time: SimTime,
    deliver_time: Option<SimTime>,
) {
    P::trace_payload(msg, &mut |event, topic, bytes, kind| {
        tracer.on_hop(HopRecord {
            send_time,
            from: from.as_u32(),
            to: to.as_u32(),
            event,
            topic,
            kind,
            bytes,
            deliver_time,
        });
    });
}

/// The deterministic random streams of one node.
#[derive(Debug, Clone)]
pub struct NodeStreams {
    /// Stream consumed by the node's protocol callbacks.
    pub rng: Xoshiro256StarStar,
    /// Stream consumed to decide the fate of the node's outgoing messages.
    pub net_rng: Xoshiro256StarStar,
}

/// Forks the per-node random streams for an `n`-node simulation.
///
/// Both engines call this with the full population so node `i`'s streams
/// depend only on `(seed, i)` — never on how nodes are partitioned into
/// shards.
pub fn seed_streams(seed: u64, n: usize) -> Vec<NodeStreams> {
    let mut root = Xoshiro256StarStar::seed_from_u64(seed);
    let mut net_master = root.fork();
    let rngs: Vec<Xoshiro256StarStar> = (0..n).map(|_| root.fork()).collect();
    rngs.into_iter()
        .map(|rng| NodeStreams {
            rng,
            net_rng: net_master.fork(),
        })
        .collect()
}

struct Slot<P> {
    state: Option<P>,
    rng: Xoshiro256StarStar,
    net_rng: Xoshiro256StarStar,
    alive: bool,
    incarnation: u32,
    /// Sequence counter stamped on events this node produces.
    next_seq: u64,
}

/// Node slots, transport accounting and network sampling for a (sub)set of
/// the simulated population.
///
/// The kernel executes protocol callbacks for the nodes it owns and turns
/// their side effects into keyed events emitted through an
/// [`EffectSink`]; it never owns an event queue, which is what makes it
/// reusable by both the sequential and the sharded engine.
pub struct Kernel<P: Protocol> {
    n_global: usize,
    owned: Vec<u32>,
    /// Global id → local slot index; `u32::MAX` when not owned.
    local: Vec<u32>,
    slots: Vec<Slot<P>>,
    stats: Vec<TransportStats>,
    net: NetworkModel,
    scratch: Vec<Outgoing<P::Msg>>,
}

impl<P: Protocol> Kernel<P> {
    /// Builds a kernel owning `owned` (ascending global ids out of
    /// `0..n_global`), constructs each owned node via `factory` and runs
    /// its `on_init` at time zero, emitting init effects into `sink`.
    ///
    /// `streams` must hold one entry per owned node, in the same order,
    /// taken from [`seed_streams`] of the full population.
    ///
    /// # Panics
    ///
    /// Panics if `owned` and `streams` disagree in length or an id is out
    /// of range.
    pub fn new(
        n_global: usize,
        owned: Vec<u32>,
        streams: Vec<NodeStreams>,
        net: NetworkModel,
        factory: &mut dyn FnMut(NodeId, &mut Xoshiro256StarStar) -> P,
        sink: &mut dyn EffectSink<P>,
    ) -> Self {
        assert_eq!(owned.len(), streams.len(), "one stream pair per owned node");
        let mut local = vec![u32::MAX; n_global];
        let mut slots = Vec::with_capacity(owned.len());
        for (li, (&id, s)) in owned.iter().zip(streams).enumerate() {
            assert!((id as usize) < n_global, "owned id {id} out of range");
            local[id as usize] = li as u32;
            let mut rng = s.rng;
            let state = factory(NodeId::new(id), &mut rng);
            slots.push(Slot {
                state: Some(state),
                rng,
                net_rng: s.net_rng,
                alive: true,
                incarnation: 0,
                next_seq: 0,
            });
        }
        let mut kernel = Kernel {
            n_global,
            stats: vec![TransportStats::default(); owned.len()],
            owned,
            local,
            slots,
            net,
            scratch: Vec::new(),
        };
        // Time-zero init effects run before any probe can be attached
        // (both engines attach probes per run call), so they are
        // consistently unobserved on every engine.
        for i in 0..kernel.owned.len() {
            let id = NodeId::new(kernel.owned[i]);
            kernel.invoke(id, Invoke::Init, SimTime::ZERO, sink, None, None);
        }
        kernel
    }

    /// Total population size (across all shards).
    pub fn n_global(&self) -> usize {
        self.n_global
    }

    /// The global ids this kernel owns, ascending.
    pub fn owned_ids(&self) -> &[u32] {
        &self.owned
    }

    /// Whether this kernel owns `id`.
    pub fn owns(&self, id: NodeId) -> bool {
        self.local.get(id.index()).is_some_and(|&li| li != u32::MAX)
    }

    fn local_of(&self, id: NodeId) -> Option<usize> {
        match self.local.get(id.index()) {
            Some(&li) if li != u32::MAX => Some(li as usize),
            _ => None,
        }
    }

    /// Shared access to an owned node's protocol state (alive or crashed).
    pub fn node(&self, id: NodeId) -> Option<&P> {
        self.slots
            .get(self.local_of(id)?)
            .and_then(|s| s.state.as_ref())
    }

    /// Exclusive access to an owned node's protocol state.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut P> {
        let li = self.local_of(id)?;
        self.slots.get_mut(li).and_then(|s| s.state.as_mut())
    }

    /// Iterates over `(id, state)` of every owned node that has state.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.owned
            .iter()
            .zip(&self.slots)
            .filter_map(|(&id, s)| s.state.as_ref().map(|p| (NodeId::new(id), p)))
    }

    /// Whether owned node `id` is currently alive.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.local_of(id)
            .map(|li| self.slots[li].alive)
            .unwrap_or(false)
    }

    /// Transport statistics of an owned node.
    pub fn stats_of(&self, id: NodeId) -> Option<TransportStats> {
        self.local_of(id).map(|li| self.stats[li])
    }

    /// Transport statistics of owned nodes, in `owned_ids` order.
    pub fn stats_slice(&self) -> &[TransportStats] {
        &self.stats
    }

    /// Resets all transport statistics to zero.
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = TransportStats::default();
        }
    }

    /// The network model.
    pub fn net(&self) -> &NetworkModel {
        &self.net
    }

    /// Mutates the network model mid-run (partitions, healing).
    pub fn net_mut(&mut self) -> &mut NetworkModel {
        &mut self.net
    }

    /// Executes one event addressed to an owned node, emitting any produced
    /// events into `sink`. `factory` rebuilds protocol state on
    /// [`EventKind::Join`]; `probe` (when attached) observes the event and
    /// its effects without being able to influence them.
    ///
    /// Events for nodes this kernel does not own are ignored (the router
    /// upstream is responsible for addressing).
    #[allow(clippy::too_many_arguments)] // one slot per instrumentation hook
    pub fn dispatch(
        &mut self,
        key: EventKey,
        kind: EventKind<P>,
        factory: &mut dyn FnMut(NodeId, &mut Xoshiro256StarStar) -> P,
        sink: &mut dyn EffectSink<P>,
        mut probe: Option<&mut dyn Probe>,
        profiler: Option<&mut dyn Profiler>,
        tracer: Option<&mut dyn Tracer>,
    ) {
        let now = key.time;
        if let Some(p) = reborrow(&mut probe) {
            p.on_event(now);
        }
        if let Some(pr) = profiler {
            pr.on_event(now);
        }
        match kind {
            EventKind::Deliver { to, from, msg } => {
                let Some(li) = self.local_of(to) else { return };
                if !self.slots[li].alive {
                    return;
                }
                let size = P::message_size(&msg) as u64;
                self.stats[li].msgs_received += 1;
                self.stats[li].bytes_received += size;
                if let Some(p) = reborrow(&mut probe) {
                    p.on_receive(now, to, size);
                }
                self.invoke(to, Invoke::Message { from, msg }, now, sink, probe, tracer);
            }
            EventKind::Timer {
                node,
                token,
                incarnation,
            } => {
                let Some(li) = self.local_of(node) else {
                    return;
                };
                if !self.slots[li].alive || self.slots[li].incarnation != incarnation {
                    return; // stale timer from a previous incarnation
                }
                self.invoke(node, Invoke::Timer(token), now, sink, probe, tracer);
            }
            EventKind::Command { node, cmd } => {
                let Some(li) = self.local_of(node) else {
                    return;
                };
                if !self.slots[li].alive {
                    return;
                }
                self.invoke(node, Invoke::Command(cmd), now, sink, probe, tracer);
            }
            EventKind::Crash(node) => {
                let Some(li) = self.local_of(node) else {
                    return;
                };
                if !self.slots[li].alive {
                    return;
                }
                self.slots[li].alive = false;
                if let Some(state) = self.slots[li].state.as_mut() {
                    state.on_crash(now);
                }
                if let Some(p) = reborrow(&mut probe) {
                    p.on_liveness(now, node, false);
                }
            }
            EventKind::Join(node) => {
                let Some(li) = self.local_of(node) else {
                    return;
                };
                if self.slots[li].alive {
                    return;
                }
                let slot = &mut self.slots[li];
                slot.alive = true;
                slot.incarnation = slot.incarnation.wrapping_add(1);
                let state = factory(node, &mut slot.rng);
                slot.state = Some(state);
                if let Some(p) = reborrow(&mut probe) {
                    p.on_liveness(now, node, true);
                }
                self.invoke(node, Invoke::Init, now, sink, probe, tracer);
            }
        }
    }

    fn invoke(
        &mut self,
        node: NodeId,
        what: Invoke<P>,
        now: SimTime,
        sink: &mut dyn EffectSink<P>,
        mut probe: Option<&mut dyn Probe>,
        mut tracer: Option<&mut dyn Tracer>,
    ) {
        debug_assert!(self.scratch.is_empty());
        let Some(li) = self.local_of(node) else {
            return;
        };
        let n = self.n_global;
        let mut effects = std::mem::take(&mut self.scratch);
        {
            let slot = &mut self.slots[li];
            let Some(state) = slot.state.as_mut() else {
                self.scratch = effects;
                return;
            };
            let mut ctx = Context {
                node,
                now,
                n,
                rng: &mut slot.rng,
                outbox: &mut effects,
            };
            match what {
                Invoke::Init => state.on_init(&mut ctx),
                Invoke::Message { from, msg } => state.on_message(&mut ctx, from, msg),
                Invoke::Timer(token) => state.on_timer(&mut ctx, token),
                Invoke::Command(cmd) => state.on_command(&mut ctx, cmd),
            }
        }
        let incarnation = self.slots[li].incarnation;
        for effect in effects.drain(..) {
            match effect {
                Outgoing::Send { to, msg } => {
                    let size = P::message_size(&msg) as u64;
                    self.stats[li].msgs_sent += 1;
                    self.stats[li].bytes_sent += size;
                    let slot = &mut self.slots[li];
                    match self
                        .net
                        .transmit(&mut slot.net_rng, now, node.index(), to.index())
                    {
                        Some(latency) => {
                            let at = now + latency.max(MIN_NETWORK_LATENCY);
                            if let Some(p) = reborrow(&mut probe) {
                                p.on_send(now, node, size, SendFate::Delivered { at });
                            }
                            if let Some(t) = reborrow_tracer(&mut tracer) {
                                trace_send::<P>(t, &msg, node, to, now, Some(at));
                            }
                            let seq = slot.next_seq;
                            slot.next_seq += 1;
                            sink.emit(
                                EventKey {
                                    time: at,
                                    src: node.as_u32(),
                                    seq,
                                },
                                EventKind::Deliver {
                                    to,
                                    from: node,
                                    msg,
                                },
                            );
                        }
                        None => {
                            self.stats[li].msgs_lost += 1;
                            if let Some(p) = reborrow(&mut probe) {
                                p.on_send(now, node, size, SendFate::Lost);
                            }
                            if let Some(t) = reborrow_tracer(&mut tracer) {
                                trace_send::<P>(t, &msg, node, to, now, None);
                            }
                        }
                    }
                }
                Outgoing::Timer { delay, token } => {
                    let slot = &mut self.slots[li];
                    let seq = slot.next_seq;
                    slot.next_seq += 1;
                    sink.emit(
                        EventKey {
                            time: now + delay,
                            src: node.as_u32(),
                            seq,
                        },
                        EventKind::Timer {
                            node,
                            token,
                            incarnation,
                        },
                    );
                }
            }
        }
        self.scratch = effects;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal protocol for queue-only tests.
    struct Nop;
    impl Protocol for Nop {
        type Msg = ();
        type Cmd = u64;
        fn on_init(&mut self, _ctx: &mut Context<'_, ()>) {}
        fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _msg: ()) {}
        fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _token: u64) {}
    }

    fn cmd(key: EventKey, tag: u64) -> (EventKey, EventKind<Nop>) {
        (
            key,
            EventKind::Command {
                node: NodeId::new(0),
                cmd: tag,
            },
        )
    }

    fn tag_of(kind: &EventKind<Nop>) -> u64 {
        match kind {
            EventKind::Command { cmd, .. } => *cmd,
            _ => panic!("expected command"),
        }
    }

    /// The heap's reversed comparator must pop events earliest-time-first
    /// even though `BinaryHeap` itself is a max-heap.
    #[test]
    fn queue_pops_earliest_time_first() {
        let mut q: EventQueue<Nop> = EventQueue::new();
        for (i, ms) in [30u64, 10, 20, 40, 5].iter().enumerate() {
            let key = EventKey {
                time: SimTime::from_millis(*ms),
                src: EXTERNAL_SRC,
                seq: i as u64,
            };
            let (key, kind) = cmd(key, *ms);
            q.push(key, kind);
        }
        let mut popped = Vec::new();
        while let Some((key, kind)) = q.pop() {
            popped.push((key.time.as_millis(), tag_of(&kind)));
        }
        assert_eq!(popped, vec![(5, 5), (10, 10), (20, 20), (30, 30), (40, 40)]);
    }

    /// Equal-time events from one producer pop in insertion (sequence)
    /// order — the property the old global-seq comparator provided and the
    /// canonical key must preserve.
    #[test]
    fn queue_preserves_insertion_order_at_equal_times() {
        let mut q: EventQueue<Nop> = EventQueue::new();
        let t = SimTime::from_millis(7);
        for seq in [3u64, 0, 2, 1] {
            let key = EventKey {
                time: t,
                src: EXTERNAL_SRC,
                seq,
            };
            let (key, kind) = cmd(key, seq);
            q.push(key, kind);
        }
        let mut tags = Vec::new();
        while let Some((_, kind)) = q.pop() {
            tags.push(tag_of(&kind));
        }
        assert_eq!(tags, vec![0, 1, 2, 3], "per-source seq breaks time ties");
    }

    /// At equal times, lower-numbered producers win, and only then the
    /// per-producer sequence — the full canonical `(time, src, seq)` order.
    #[test]
    fn queue_orders_sources_before_sequences() {
        let mut q: EventQueue<Nop> = EventQueue::new();
        let t = SimTime::from_millis(1);
        let entries = [(2u32, 0u64, 20u64), (1, 1, 11), (1, 0, 10), (2, 1, 21)];
        for (src, seq, tag) in entries {
            let key = EventKey { time: t, src, seq };
            let (key, kind) = cmd(key, tag);
            q.push(key, kind);
        }
        let mut tags = Vec::new();
        while let Some((_, kind)) = q.pop() {
            tags.push(tag_of(&kind));
        }
        assert_eq!(tags, vec![10, 11, 20, 21]);
    }

    /// Far-future events overflow the initial calendar epoch and force a
    /// re-base (possibly several); pop order must remain the exact key
    /// order across every epoch boundary.
    #[test]
    fn far_future_rollover_preserves_order() {
        let mut q: EventQueue<Nop> = EventQueue::new();
        // Times spanning twelve orders of magnitude: same epoch,
        // next-epoch, and far beyond the widest bucket geometry.
        let times: [u64; 9] = [
            0,
            1,
            4_095,
            4_096,
            3_000_000,
            2_200_000_000,
            2_200_000_001,
            10_u64.pow(13),
            u64::MAX - 1,
        ];
        for (seq, us) in times.iter().rev().enumerate() {
            let key = EventKey {
                time: SimTime::from_micros(*us),
                src: EXTERNAL_SRC,
                seq: seq as u64,
            };
            let (key, kind) = cmd(key, *us);
            q.push(key, kind);
        }
        let mut popped = Vec::new();
        while let Some((key, _)) = q.pop() {
            popped.push(key.time.as_micros());
        }
        assert_eq!(popped, times.to_vec());
    }

    /// A push earlier than the queue's current front range (allowed by the
    /// API, like the old heap) still pops first.
    #[test]
    fn push_into_the_past_pops_first() {
        let mut q: EventQueue<Nop> = EventQueue::new();
        for (seq, us) in [50_000u64, 60_000].iter().enumerate() {
            let key = EventKey {
                time: SimTime::from_micros(*us),
                src: EXTERNAL_SRC,
                seq: seq as u64,
            };
            let (key, kind) = cmd(key, *us);
            q.push(key, kind);
        }
        // Advance the front past 50ms...
        let (key, _) = q.pop().expect("first event");
        assert_eq!(key.time.as_micros(), 50_000);
        // ...then push an event behind the pop point.
        let key = EventKey {
            time: SimTime::from_micros(10),
            src: EXTERNAL_SRC,
            seq: 9,
        };
        let (key, kind) = cmd(key, 10);
        q.push(key, kind);
        let (key, _) = q.pop().expect("past event");
        assert_eq!(key.time.as_micros(), 10, "past push must pop next");
        let (key, _) = q.pop().expect("last event");
        assert_eq!(key.time.as_micros(), 60_000);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_before_respects_exclusive_bound() {
        let mut q: EventQueue<Nop> = EventQueue::new();
        let key = EventKey {
            time: SimTime::from_millis(10),
            src: EXTERNAL_SRC,
            seq: 0,
        };
        let (key, kind) = cmd(key, 1);
        q.push(key, kind);
        assert!(
            q.pop_before(SimTime::from_millis(10)).is_none(),
            "exclusive"
        );
        assert!(q.pop_before(SimTime::from_micros(10_001)).is_some());
        assert!(q.is_empty());
    }

    /// An event exactly at a window's (exclusive) end boundary belongs to
    /// the *next* window: popping `[5, 10)` then `[10, 15)` partitions
    /// events at 9, 10 and 11 ms with no loss and no duplication.
    #[test]
    fn window_boundary_event_lands_in_next_window() {
        let mut q: EventQueue<Nop> = EventQueue::new();
        for (seq, ms) in [9u64, 10, 11].iter().enumerate() {
            let key = EventKey {
                time: SimTime::from_millis(*ms),
                src: EXTERNAL_SRC,
                seq: seq as u64,
            };
            let (key, kind) = cmd(key, *ms);
            q.push(key, kind);
        }
        let mut first = Vec::new();
        while let Some((key, _)) = q.pop_before(SimTime::from_millis(10)) {
            first.push(key.time.as_millis());
        }
        assert_eq!(first, vec![9], "boundary event must not leak backwards");
        let mut second = Vec::new();
        while let Some((key, _)) = q.pop_before(SimTime::from_millis(15)) {
            second.push(key.time.as_millis());
        }
        assert_eq!(second, vec![10, 11]);
        assert!(q.is_empty(), "windows cover the event set exactly once");
    }

    /// `pop_before` at or below the head's time repeatedly returns `None`
    /// without consuming anything — a stalled window makes no progress
    /// but also loses no events.
    #[test]
    fn pop_before_never_consumes_on_refusal() {
        let mut q: EventQueue<Nop> = EventQueue::new();
        let key = EventKey {
            time: SimTime::from_millis(5),
            src: 3,
            seq: 0,
        };
        let (key, kind) = cmd(key, 1);
        q.push(key, kind);
        for _ in 0..3 {
            assert!(q.pop_before(SimTime::from_millis(5)).is_none());
            assert_eq!(q.len(), 1, "refused pop must not consume");
        }
        assert_eq!(q.next_time(), Some(SimTime::from_millis(5)));
    }

    /// A zero-latency network still yields a positive conservative
    /// lookahead: `min_latency` floors at [`MIN_NETWORK_LATENCY`], so a
    /// window `[W, W + lookahead)` always has positive width and a
    /// sharded engine can always make progress.
    #[test]
    fn zero_latency_model_has_positive_lookahead() {
        use crate::network::LatencyModel;
        let zero = NetworkModel::reliable(LatencyModel::Constant(SimDuration::ZERO));
        assert_eq!(zero.min_latency(), MIN_NETWORK_LATENCY);
        assert!(zero.min_latency() > SimDuration::ZERO);
        // Heavy-tailed models with no positive infimum get the same floor.
        let heavy = NetworkModel::reliable(LatencyModel::LogNormalMs {
            median_ms: 10.0,
            sigma: 1.0,
            floor: SimDuration::ZERO,
        });
        assert_eq!(heavy.min_latency(), MIN_NETWORK_LATENCY);
    }

    /// The kernel floors zero-sampled delivery latencies at
    /// [`MIN_NETWORK_LATENCY`]: nothing is delivered in zero virtual
    /// time, so an in-window send can never be due inside its own window.
    #[test]
    fn kernel_floors_zero_latency_deliveries() {
        use crate::network::LatencyModel;

        /// Sends one message to node 1 on init.
        struct SendOnce;
        impl Protocol for SendOnce {
            type Msg = ();
            type Cmd = ();
            fn on_init(&mut self, ctx: &mut Context<'_, ()>) {
                if ctx.id() == NodeId::new(0) {
                    ctx.send(NodeId::new(1), ());
                }
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _msg: ()) {}
            fn on_timer(&mut self, _ctx: &mut Context<'_, ()>, _token: u64) {}
        }

        let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::ZERO));
        let mut queue: EventQueue<SendOnce> = EventQueue::new();
        let mut factory = |_: NodeId, _: &mut Xoshiro256StarStar| SendOnce;
        let _kernel = Kernel::new(
            2,
            vec![0, 1],
            seed_streams(1, 2),
            net,
            &mut factory,
            &mut queue,
        );
        let (key, kind) = queue.pop().expect("init produced one send");
        assert!(matches!(kind, EventKind::Deliver { .. }));
        assert_eq!(
            key.time,
            SimTime::ZERO + MIN_NETWORK_LATENCY,
            "zero-latency delivery must be floored, not instantaneous"
        );
        assert!(queue.is_empty());
    }

    #[test]
    fn seed_streams_are_partition_independent() {
        let all = seed_streams(9, 8);
        let again = seed_streams(9, 8);
        for (a, b) in all.iter().zip(&again) {
            assert_eq!(a.rng.state(), b.rng.state());
            assert_eq!(a.net_rng.state(), b.net_rng.state());
        }
        // Distinct nodes get distinct streams.
        assert_ne!(all[0].rng.state(), all[1].rng.state());
        assert_ne!(all[0].net_rng.state(), all[1].net_rng.state());
    }
}
