//! # fed-profile
//!
//! A low-overhead scheduler profiler for both simulation engines: where
//! `fed-telemetry` measures the *virtual world* (deliveries, load,
//! fairness), this crate measures the *engines themselves* — which
//! phase each shard spends its wall clock in, which shard's pending work
//! bounded each conservative window (stall attribution), and how much
//! raw work (events, queue traffic, mailbox traffic) the run performed.
//!
//! ## Deterministic vs wall-clock
//!
//! Everything this crate records falls in exactly one of two classes,
//! and the split is load-bearing:
//!
//! * **Deterministic work counters** ([`WorkCounters`]) are integers
//!   derived from the event streams only. They are *partition-invariant*:
//!   merged across shards they are byte-identical to a sequential run of
//!   the same seed and workload, at any shard count, placement or window
//!   policy — the same guarantee the engines give for results, extended
//!   to the profiler, and gated by the same parity suites.
//! * **Wall-clock measurements** ([`PhaseTimes`], per-window
//!   `wall_ns`) are host timings. They vary run to run and are never
//!   compared for equality; they exist to show *where the time went*.
//!
//! A third group ([`SchedCounters`]) is deterministic for a fixed
//! configuration but *not* partition-invariant — calendar-queue overflow
//! hits depend on per-shard queue geometry, mailbox traffic only exists
//! when shards do — so it is reported but not parity-gated.
//!
//! ## Pieces
//!
//! * [`ShardProfile`] implements [`fed_sim::exec::Profiler`] — attach one
//!   per shard (or one to a sequential run) and it accumulates phases,
//!   windows and counters.
//! * [`CountingProbe`] wraps any [`Probe`] and counts its hook
//!   invocations — the `probe_calls` work counter.
//! * [`RunProfile`] assembles the per-shard profiles plus engine-level
//!   counters into the run-level report; [`chrome_trace_json`] renders it
//!   as Chrome Trace Event JSON loadable in Perfetto or
//!   `chrome://tracing`.
//! * [`json`] is the minimal JSON reader used by trace validation and the
//!   `bench-diff` tool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use fed_sim::exec::{Probe, ProfilePhase, Profiler, QueueStats, SendFate, WindowWork};
use fed_sim::protocol::NodeId;
use fed_sim::time::SimTime;

/// Profiling configuration, as carried by a scenario's `[profile]`
/// section.
///
/// Presence of the section (even empty) turns profiling on for a
/// scenario run; the fields tune what gets written.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSpec {
    /// Path to write the Chrome Trace Event JSON to. `None` lets the
    /// runner pick a default (`TRACE_<scenario>.json`).
    pub trace: Option<String>,
}

impl ProfileSpec {
    /// Validates a spec, returning it unchanged when sound.
    pub fn checked(spec: ProfileSpec) -> Result<ProfileSpec, String> {
        if let Some(path) = &spec.trace {
            if path.trim().is_empty() {
                return Err("profile trace path must not be empty".to_string());
            }
        }
        Ok(spec)
    }
}

/// Partition-invariant work counters: integers derived from the event
/// streams only, byte-identical sequential-vs-sharded at any shard
/// count (see the crate docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// Events dispatched.
    pub events: u64,
    /// Events pushed into event queues (external traffic only — internal
    /// calendar re-parks are not counted; see
    /// [`fed_sim::exec::QueueStats`]).
    pub queue_pushes: u64,
    /// Events popped from event queues.
    pub queue_pops: u64,
    /// Protocol messages sent (including lost ones).
    pub msgs_sent: u64,
    /// Protocol messages received.
    pub msgs_received: u64,
    /// Protocol messages lost in the network model.
    pub msgs_lost: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Telemetry-probe hook invocations (zero when no probe attached).
    pub probe_calls: u64,
}

impl WorkCounters {
    /// Exact merge: sums every counter.
    pub fn merge(&mut self, other: &WorkCounters) {
        self.events += other.events;
        self.queue_pushes += other.queue_pushes;
        self.queue_pops += other.queue_pops;
        self.msgs_sent += other.msgs_sent;
        self.msgs_received += other.msgs_received;
        self.msgs_lost += other.msgs_lost;
        self.bytes_sent += other.bytes_sent;
        self.probe_calls += other.probe_calls;
    }
}

/// Scheduler counters: deterministic for a fixed configuration but
/// **not** partition-invariant — reported, never parity-gated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Calendar-queue overflow-level hits (depends on per-shard queue
    /// geometry).
    pub overflow_hits: u64,
    /// Cross-shard mailbox messages staged (zero on a sequential run).
    pub mailbox_msgs: u64,
    /// Cross-shard mailbox payload bytes staged.
    pub mailbox_bytes: u64,
    /// Conservative windows executed.
    pub windows: u64,
    /// Windows whose start was bounded by the straggler shard — equal to
    /// `windows` on a cluster run (each window has exactly one).
    pub straggler_windows: u64,
}

/// Wall-clock nanoseconds by engine phase; host measurements, never
/// compared across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Popping and dispatching events.
    pub execute_ns: u64,
    /// Draining and sending cross-shard mailbox batches (the
    /// non-blocking queue-push and channel-send work).
    pub exchange_ns: u64,
    /// Blocked at a mid-window absorption point for inbound batches
    /// still in flight — pipeline fill, not a straggler stall: the shard
    /// had already executed everything safe to run ahead of them.
    pub fill_ns: u64,
    /// Waiting at the reduction barrier for the next window decision
    /// after a window that did local work — the genuine straggler stall
    /// (the decision lands when the slowest shard folds).
    pub barrier_ns: u64,
    /// Waiting at barriers after a window with no local work — time the
    /// shard had nothing to do, the conservative-lookahead cost.
    pub idle_ns: u64,
}

impl PhaseTimes {
    /// Sums every phase.
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.execute_ns += other.execute_ns;
        self.exchange_ns += other.exchange_ns;
        self.fill_ns += other.fill_ns;
        self.barrier_ns += other.barrier_ns;
        self.idle_ns += other.idle_ns;
    }

    /// Total attributed wall time.
    pub fn total_ns(&self) -> u64 {
        self.execute_ns + self.exchange_ns + self.fill_ns + self.barrier_ns + self.idle_ns
    }
}

/// One window as one shard experienced it (trimmed copy of
/// [`WindowWork`] kept for trace export).
#[derive(Debug, Clone, Copy)]
pub struct WindowSample {
    /// Exclusive virtual-time end of the window on this shard.
    pub end: SimTime,
    /// Events the shard executed inside it.
    pub events: u64,
    /// Wall nanoseconds dispatching.
    pub execute_ns: u64,
    /// Wall nanoseconds exchanging mailboxes.
    pub exchange_ns: u64,
    /// Wall nanoseconds blocked at the absorption point (pipeline fill).
    pub fill_ns: u64,
    /// Wall nanoseconds waiting for the window.
    pub wait_ns: u64,
}

/// Per-shard profiler: the [`Profiler`] implementation both engines
/// drive.
///
/// Deterministic state (`events`, mailbox counters) and wall-clock state
/// (`phases`, per-window samples) accumulate independently; barrier wait
/// is classified [`PhaseTimes::idle_ns`] when the preceding window
/// executed nothing on this shard.
#[derive(Debug, Clone, Default)]
pub struct ShardProfile {
    /// Events dispatched on this shard (deterministic).
    pub events: u64,
    /// Wall clock by phase.
    pub phases: PhaseTimes,
    /// Every window, in execution order (empty on a sequential run).
    pub windows: Vec<WindowSample>,
    /// Cross-shard mailbox messages staged by this shard.
    pub mailbox_msgs: u64,
    /// Cross-shard mailbox payload bytes staged by this shard.
    pub mailbox_bytes: u64,
}

impl Profiler for ShardProfile {
    fn on_event(&mut self, _now: SimTime) {
        self.events += 1;
    }

    fn on_phase(&mut self, phase: ProfilePhase, nanos: u64) {
        match phase {
            ProfilePhase::Execute => self.phases.execute_ns += nanos,
            ProfilePhase::Exchange => self.phases.exchange_ns += nanos,
            ProfilePhase::Fill => self.phases.fill_ns += nanos,
            ProfilePhase::Barrier => self.phases.barrier_ns += nanos,
            ProfilePhase::Idle => self.phases.idle_ns += nanos,
        }
    }

    fn on_window(&mut self, work: WindowWork) {
        self.phases.execute_ns += work.execute_ns;
        self.phases.exchange_ns += work.exchange_ns;
        self.phases.fill_ns += work.fill_ns;
        if work.events == 0 {
            self.phases.idle_ns += work.wait_ns;
        } else {
            self.phases.barrier_ns += work.wait_ns;
        }
        self.windows.push(WindowSample {
            end: work.end,
            events: work.events,
            execute_ns: work.execute_ns,
            exchange_ns: work.exchange_ns,
            fill_ns: work.fill_ns,
            wait_ns: work.wait_ns,
        });
    }

    fn on_mailbox(&mut self, msgs: u64, bytes: u64) {
        self.mailbox_msgs += msgs;
        self.mailbox_bytes += bytes;
    }
}

/// Wraps a [`Probe`], forwarding every hook while counting invocations —
/// the `probe_calls` work counter. Forwarding changes nothing about what
/// the inner probe observes, so wrapping is itself passive.
#[derive(Debug, Clone, Default)]
pub struct CountingProbe<C> {
    /// The wrapped probe.
    pub inner: C,
    /// Hook invocations so far.
    pub calls: u64,
}

impl<C> CountingProbe<C> {
    /// Wraps `inner`.
    pub fn new(inner: C) -> Self {
        CountingProbe { inner, calls: 0 }
    }
}

impl<C: Probe> Probe for CountingProbe<C> {
    fn on_event(&mut self, now: SimTime) {
        self.calls += 1;
        self.inner.on_event(now);
    }
    fn on_send(&mut self, now: SimTime, node: NodeId, bytes: u64, fate: SendFate) {
        self.calls += 1;
        self.inner.on_send(now, node, bytes, fate);
    }
    fn on_receive(&mut self, now: SimTime, node: NodeId, bytes: u64) {
        self.calls += 1;
        self.inner.on_receive(now, node, bytes);
    }
    fn on_liveness(&mut self, now: SimTime, node: NodeId, alive: bool) {
        self.calls += 1;
        self.inner.on_liveness(now, node, alive);
    }
}

/// One window as the coordinator decided it, in engine-neutral form
/// (converted from `fed_cluster::ScheduleTrace` by the experiment
/// harness, which keeps this crate independent of the cluster runtime).
#[derive(Debug, Clone)]
pub struct WindowSlice {
    /// 1-based window number.
    pub index: u64,
    /// Window start (global minimum pending time), microseconds.
    pub start_us: u64,
    /// Latest conservative end issued to any shard, microseconds.
    pub end_us: u64,
    /// The shard whose pending work bounded the window.
    pub straggler: usize,
    /// Events executed across all shards.
    pub events: u64,
    /// Coordinator wall clock for the window.
    pub wall_ns: u64,
}

/// Coordinator-side schedule summary: window slices plus per-shard
/// straggler counts.
#[derive(Debug, Clone, Default)]
pub struct ScheduleSummary {
    /// Every window, in execution order.
    pub windows: Vec<WindowSlice>,
    /// Windows each shard was the straggler for, indexed by shard.
    pub straggler_windows: Vec<u64>,
}

/// The assembled profile of one run: per-shard work and wall-clock
/// counters plus the coordinator's schedule (cluster runs only).
#[derive(Debug, Clone, Default)]
pub struct RunProfile {
    /// Per-shard work counters (one entry on a sequential run).
    pub work: Vec<WorkCounters>,
    /// Per-shard phase/window profiles.
    pub shards: Vec<ShardProfile>,
    /// Queue counters summed over shards (overflow hits are
    /// geometry-dependent; see [`SchedCounters`]).
    pub queue: QueueStats,
    /// Coordinator schedule; `None` on sequential runs.
    pub schedule: Option<ScheduleSummary>,
    /// Whole-run wall clock as the harness measured it.
    pub wall_ns: u64,
}

impl RunProfile {
    /// The merged, partition-invariant work counters — the quantity the
    /// parity suites gate byte-identical across engines.
    pub fn merged_work(&self) -> WorkCounters {
        let mut total = WorkCounters::default();
        for w in &self.work {
            total.merge(w);
        }
        total.queue_pushes = self.queue.pushes;
        total.queue_pops = self.queue.pops;
        total
    }

    /// The scheduler counters (reported, not parity-gated).
    pub fn sched(&self) -> SchedCounters {
        let windows = self
            .schedule
            .as_ref()
            .map(|s| s.windows.len() as u64)
            .unwrap_or(0);
        SchedCounters {
            overflow_hits: self.queue.overflow_hits,
            mailbox_msgs: self.shards.iter().map(|s| s.mailbox_msgs).sum(),
            mailbox_bytes: self.shards.iter().map(|s| s.mailbox_bytes).sum(),
            windows,
            straggler_windows: self
                .schedule
                .as_ref()
                .map(|s| s.straggler_windows.iter().sum())
                .unwrap_or(0),
        }
    }

    /// Phase totals summed over shards.
    pub fn phases(&self) -> PhaseTimes {
        let mut total = PhaseTimes::default();
        for s in &self.shards {
            total.merge(&s.phases);
        }
        total
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`RunProfile`] as Chrome Trace Event JSON (object format,
/// `{"traceEvents": [...]}`) on the **virtual-time** microsecond
/// timeline: slices show what each shard did per window of simulated
/// time, with the wall-clock phase breakdown attached as slice `args`.
/// The result loads in Perfetto (<https://ui.perfetto.dev>) and
/// `chrome://tracing`.
///
/// Track layout: tid 0 is the coordinator (one slice per conservative
/// window, annotated with the straggler shard); tid `s + 1` is shard
/// `s`. Sequential runs have no windows and render a single summary
/// slice on the shard track.
pub fn chrome_trace_json(profile: &RunProfile, name: &str) -> String {
    let mut ev: Vec<String> = Vec::new();
    ev.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        esc(name)
    ));
    ev.push(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\",\
         \"args\":{\"name\":\"coordinator\"}}"
            .to_string(),
    );
    for s in 0..profile.shards.len() {
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"shard {s}\"}}}}",
            s + 1
        ));
    }
    if let Some(schedule) = &profile.schedule {
        for w in &schedule.windows {
            let dur = w.end_us.saturating_sub(w.start_us).max(1);
            ev.push(format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"window {}\",\
                 \"ts\":{},\"dur\":{dur},\"args\":{{\"straggler\":\"shard {}\",\
                 \"events\":{},\"wall_us\":{}}}}}",
                w.index,
                w.start_us,
                w.straggler,
                w.events,
                w.wall_ns / 1_000
            ));
        }
    }
    for (s, shard) in profile.shards.iter().enumerate() {
        let tid = s + 1;
        if shard.windows.is_empty() {
            // Sequential run: one summary slice covering the whole
            // execute phase (virtual extent unknown — use wall µs).
            ev.push(format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"name\":\"execute\",\
                 \"ts\":0,\"dur\":{},\"args\":{{\"events\":{},\
                 \"execute_ns\":{}}}}}",
                (shard.phases.execute_ns / 1_000).max(1),
                shard.events,
                shard.phases.execute_ns
            ));
            continue;
        }
        let mut prev_end = 0u64;
        for w in &shard.windows {
            let end = w.end.as_micros();
            let start = prev_end.min(end);
            let dur = end.saturating_sub(start).max(1);
            let label = if w.events == 0 { "idle" } else { "execute" };
            ev.push(format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"name\":\"{label}\",\
                 \"ts\":{start},\"dur\":{dur},\"args\":{{\"events\":{},\
                 \"execute_ns\":{},\"exchange_ns\":{},\"fill_ns\":{},\"wait_ns\":{}}}}}",
                w.events, w.execute_ns, w.exchange_ns, w.fill_ns, w.wait_ns
            ));
            prev_end = end;
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&ev.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!(
        "\"source\":\"fed-profile\",\"timeline\":\"virtual-us\",\
         \"wall_ns\":{}",
        profile.wall_ns
    ));
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_counters_merge_exactly() {
        let a = WorkCounters {
            events: 1,
            queue_pushes: 2,
            queue_pops: 3,
            msgs_sent: 4,
            msgs_received: 5,
            msgs_lost: 6,
            bytes_sent: 7,
            probe_calls: 8,
        };
        let mut m = a;
        m.merge(&a);
        assert_eq!(
            m,
            WorkCounters {
                events: 2,
                queue_pushes: 4,
                queue_pops: 6,
                msgs_sent: 8,
                msgs_received: 10,
                msgs_lost: 12,
                bytes_sent: 14,
                probe_calls: 16,
            }
        );
    }

    #[test]
    fn shard_profile_classifies_idle_windows() {
        let mut p = ShardProfile::default();
        p.on_window(WindowWork {
            end: SimTime::from_millis(1),
            events: 5,
            execute_ns: 100,
            exchange_ns: 20,
            fill_ns: 40,
            wait_ns: 30,
        });
        p.on_window(WindowWork {
            end: SimTime::from_millis(2),
            events: 0,
            execute_ns: 0,
            exchange_ns: 10,
            fill_ns: 0,
            wait_ns: 50,
        });
        assert_eq!(p.phases.execute_ns, 100);
        assert_eq!(p.phases.exchange_ns, 30);
        assert_eq!(p.phases.fill_ns, 40, "absorption wait is pipeline fill");
        assert_eq!(p.phases.barrier_ns, 30, "busy window's wait is barrier");
        assert_eq!(p.phases.idle_ns, 50, "empty window's wait is idle");
        assert_eq!(p.windows.len(), 2);
        assert_eq!(p.phases.total_ns(), 250);
    }

    #[test]
    fn counting_probe_counts_and_forwards() {
        #[derive(Default)]
        struct Tape {
            events: u64,
            liveness: u64,
        }
        impl Probe for Tape {
            fn on_event(&mut self, _now: SimTime) {
                self.events += 1;
            }
            fn on_liveness(&mut self, _now: SimTime, _node: NodeId, _alive: bool) {
                self.liveness += 1;
            }
        }
        let mut p = CountingProbe::new(Tape::default());
        p.on_event(SimTime::ZERO);
        p.on_receive(SimTime::ZERO, NodeId::new(0), 8);
        p.on_liveness(SimTime::ZERO, NodeId::new(0), true);
        assert_eq!(p.calls, 3);
        assert_eq!(p.inner.events, 1);
        assert_eq!(p.inner.liveness, 1);
    }

    fn sample_profile() -> RunProfile {
        let mut shard = ShardProfile::default();
        shard.on_event(SimTime::ZERO);
        shard.on_window(WindowWork {
            end: SimTime::from_millis(10),
            events: 1,
            execute_ns: 1_000,
            exchange_ns: 200,
            fill_ns: 50,
            wait_ns: 300,
        });
        shard.on_mailbox(2, 64);
        RunProfile {
            work: vec![WorkCounters {
                events: 1,
                ..WorkCounters::default()
            }],
            shards: vec![shard],
            queue: QueueStats {
                pushes: 4,
                pops: 3,
                overflow_hits: 1,
            },
            schedule: Some(ScheduleSummary {
                windows: vec![WindowSlice {
                    index: 1,
                    start_us: 0,
                    end_us: 10_000,
                    straggler: 0,
                    events: 1,
                    wall_ns: 1_500,
                }],
                straggler_windows: vec![1],
            }),
            wall_ns: 2_000,
        }
    }

    #[test]
    fn run_profile_aggregates() {
        let p = sample_profile();
        let work = p.merged_work();
        assert_eq!(work.events, 1);
        assert_eq!(work.queue_pushes, 4);
        assert_eq!(work.queue_pops, 3);
        let sched = p.sched();
        assert_eq!(sched.overflow_hits, 1);
        assert_eq!(sched.mailbox_msgs, 2);
        assert_eq!(sched.mailbox_bytes, 64);
        assert_eq!(sched.windows, 1);
        assert_eq!(sched.straggler_windows, 1);
        assert_eq!(p.phases().total_ns(), 1_550);
    }

    #[test]
    fn chrome_trace_is_wellformed_json_with_expected_tracks() {
        let p = sample_profile();
        let text = chrome_trace_json(&p, "unit-test");
        let v = json::parse(&text).expect("trace must parse as JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 2 metadata (process + coordinator) + 1 shard metadata
        // + 1 coordinator window + 1 shard window.
        assert_eq!(events.len(), 5);
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert_eq!(names.iter().filter(|&&p| p == "M").count(), 3);
        assert_eq!(names.iter().filter(|&&p| p == "X").count(), 2);
        for e in events {
            if e.get("ph").and_then(|p| p.as_str()) == Some("X") {
                assert!(e.get("dur").and_then(|d| d.as_f64()).unwrap() >= 1.0);
            }
        }
        let straggler = events
            .iter()
            .find_map(|e| e.get("args").and_then(|a| a.get("straggler")))
            .and_then(|s| s.as_str())
            .expect("coordinator slice carries straggler attribution");
        assert_eq!(straggler, "shard 0");
    }

    #[test]
    fn trace_name_is_escaped() {
        let p = RunProfile::default();
        let text = chrome_trace_json(&p, "we\"ird\\name");
        let v = json::parse(&text).expect("escaped trace must parse");
        let name = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .and_then(|a| a.first())
            .and_then(|e| e.get("args"))
            .and_then(|a| a.get("name"))
            .and_then(|n| n.as_str())
            .unwrap();
        assert_eq!(name, "we\"ird\\name");
    }

    #[test]
    fn profile_spec_checked() {
        assert!(ProfileSpec::checked(ProfileSpec::default()).is_ok());
        assert!(ProfileSpec::checked(ProfileSpec {
            trace: Some("trace.json".into())
        })
        .is_ok());
        assert!(ProfileSpec::checked(ProfileSpec {
            trace: Some("   ".into())
        })
        .is_err());
    }
}
