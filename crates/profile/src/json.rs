//! A minimal JSON reader — just enough to validate emitted traces and to
//! let `bench-diff` read the hand-rolled `BENCH_*.json` files without an
//! external dependency.
//!
//! Full JSON value grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null); numbers are read as `f64`, which is exact
//! for every integer the bench records emit (< 2⁵³).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved, duplicate keys kept.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The truth value, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writers;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Num(-1250.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::Str("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"rows": [{"k": "v", "n": 3}, {}], "ok": true}"#).unwrap();
        let rows = v.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("k").and_then(|k| k.as_str()), Some("v"));
        assert_eq!(rows[0].get("n").and_then(|n| n.as_f64()), Some(3.0));
        assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(true));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "12 34", "\"open", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn utf8_passthrough() {
        let v = parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
    }
}
