//! Regenerates and times the paper's four figures (FIG1–FIG4).
//!
//! Each benchmark prints its measured table once (so `cargo bench`
//! reproduces the paper artifacts), then times the underlying simulation
//! at a reduced size.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

static PRINT: Once = Once::new();

fn print_tables_once() {
    PRINT.call_once(|| {
        println!("\n===== paper figure tables (seed 42) =====");
        let f1 = fed_experiments::fig1::run(128, 42);
        println!("{}", f1.table);
        let f2 = fed_experiments::fig2::run(96, 42);
        println!("{}", f2.table);
        let f3 = fed_experiments::fig3::run(96, 42);
        println!("{}", f3.table);
        let f4 = fed_experiments::fig4::run(96, &[32, 64, 128, 256], 42);
        println!("{}", f4.fanout_table);
        println!("{}", f4.scale_table);
        println!("===== end of figure tables =====\n");
    });
}

fn bench_fig1(c: &mut Criterion) {
    print_tables_once();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig1_ratio_n64", |b| {
        b.iter(|| black_box(fed_experiments::fig1::run(64, 42)))
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    print_tables_once();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2_topic_n48", |b| {
        b.iter(|| black_box(fed_experiments::fig2::run(48, 42)))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    print_tables_once();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig3_expressive_n48", |b| {
        b.iter(|| black_box(fed_experiments::fig3::run(48, 42)))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    print_tables_once();
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig4_basic_n64", |b| {
        b.iter(|| black_box(fed_experiments::fig4::run(64, &[32, 64], 42)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig1, bench_fig2, bench_fig3, bench_fig4);
criterion_main!(benches);
