//! Regenerates and times the survey/system experiments: T-ARCH, E-CHURN,
//! E-SUBS, E-CONV, E-ROBUST and E-BIAS.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Once;

static PRINT: Once = Once::new();

fn print_tables_once() {
    PRINT.call_once(|| {
        println!("\n===== paper claim tables (seed 42) =====");
        let arch = fed_experiments::arch::run(96, 42);
        println!("{}", arch.table);
        let churn = fed_experiments::churn::run(96, 15.0, 42);
        println!("{}", churn.table);
        let subs = fed_experiments::subs::run(96, 42);
        println!("{}", subs.table);
        let conv = fed_experiments::conv::run(96, 42);
        println!("{}", conv.table);
        println!(
            "E-CONV: converged in {} rounds ({:.1} -> {:.1} fanout)\n",
            conv.rounds_to_converge, conv.fanout_before, conv.fanout_after
        );
        let robust = fed_experiments::robust::run(64, 42);
        println!("{}", robust.loss_table);
        println!("{}", robust.crash_table);
        let bias = fed_experiments::bias::run(96, 42);
        println!("{}", bias.table);
        println!("===== end of claim tables =====\n");
    });
}

fn bench_arch(c: &mut Criterion) {
    print_tables_once();
    let mut g = c.benchmark_group("systems");
    g.sample_size(10);
    g.bench_function("arch_comparison_n48", |b| {
        b.iter(|| black_box(fed_experiments::arch::run(48, 42)))
    });
    g.finish();
}

fn bench_churn(c: &mut Criterion) {
    print_tables_once();
    let mut g = c.benchmark_group("systems");
    g.sample_size(10);
    g.bench_function("churn_feedback_n48", |b| {
        b.iter(|| black_box(fed_experiments::churn::run(48, 15.0, 42)))
    });
    g.finish();
}

fn bench_subs(c: &mut Criterion) {
    print_tables_once();
    let mut g = c.benchmark_group("systems");
    g.sample_size(10);
    g.bench_function("subscription_cost_n64", |b| {
        b.iter(|| black_box(fed_experiments::subs::run(64, 42)))
    });
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    print_tables_once();
    let mut g = c.benchmark_group("systems");
    g.sample_size(10);
    g.bench_function("convergence_n48", |b| {
        b.iter(|| black_box(fed_experiments::conv::run(48, 42)))
    });
    g.finish();
}

fn bench_robust(c: &mut Criterion) {
    print_tables_once();
    let mut g = c.benchmark_group("systems");
    g.sample_size(10);
    g.bench_function("robustness_n48", |b| {
        b.iter(|| black_box(fed_experiments::robust::run(48, 42)))
    });
    g.finish();
}

fn bench_bias(c: &mut Criterion) {
    print_tables_once();
    let mut g = c.benchmark_group("systems");
    g.sample_size(10);
    g.bench_function("bias_resistance_n64", |b| {
        b.iter(|| black_box(fed_experiments::bias::run(64, 42)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_arch,
    bench_churn,
    bench_subs,
    bench_conv,
    bench_robust,
    bench_bias
);
criterion_main!(benches);
