//! Micro-benchmarks of the protocol hot paths: ledger accounting,
//! controller updates, filter matching and whole gossip rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fed_core::adaptive::{Controller, ControllerConfig, GlobalRateEstimator, RateSample};
use fed_core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed_core::ledger::{FairnessLedger, RatioSpec};
use fed_membership::FullMembership;
use fed_pubsub::{parse_filter, Event, EventId, TopicId};
use fed_sim::network::NetworkModel;
use fed_sim::{NodeId, SimDuration, SimTime, Simulation};
use std::hint::black_box;

fn bench_ledger(c: &mut Criterion) {
    let mut g = c.benchmark_group("ledger");
    g.bench_function("record_forward", |b| {
        let mut ledger = FairnessLedger::new();
        b.iter(|| {
            ledger.record_forward(black_box(512));
        })
    });
    g.bench_function("ratio_topic_based", |b| {
        let mut ledger = FairnessLedger::new();
        for _ in 0..100 {
            ledger.record_forward(256);
            ledger.record_delivery();
        }
        ledger.set_active_filters(4);
        let spec = RatioSpec::topic_based();
        b.iter(|| black_box(ledger.ratio(&spec)))
    });
    g.finish();
}

fn bench_controllers(c: &mut Criterion) {
    let mut g = c.benchmark_group("adaptive");
    g.bench_function("controller_update", |b| {
        let mut ctl = Controller::new(ControllerConfig::new(8.0, 0.0, 32.0, 0.5));
        b.iter(|| black_box(ctl.update(black_box(3.0), black_box(2.0))))
    });
    g.bench_function("estimator_observe", |b| {
        let mut est = GlobalRateEstimator::new(0.05, 0.0);
        let sample = RateSample {
            benefit_rate: 2.0,
            contribution_rate: 8.0,
            benefit_total: 500.0,
            contribution_total: 2_000.0,
        };
        b.iter(|| est.observe(black_box(sample)))
    });
    g.finish();
}

fn bench_filters(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter");
    let filter =
        parse_filter(r#"(symbol == "FED" && price > 100) || (volume > 9000 && !(region == "EU"))"#)
            .expect("benchmark filter parses");
    let event = Event::builder(EventId::new(0, 0), TopicId::new(0))
        .attr("symbol", "FED")
        .attr("price", 150i64)
        .attr("volume", 100i64)
        .attr("region", "US")
        .build();
    g.bench_function("match_compound", |b| {
        b.iter(|| black_box(filter.matches(black_box(&event))))
    });
    g.bench_function("parse_compound", |b| {
        b.iter(|| {
            black_box(
                parse_filter(
                    r#"(symbol == "FED" && price > 100) || (volume > 9000 && !(region == "EU"))"#,
                )
                .expect("parses"),
            )
        })
    });
    g.finish();
}

fn bench_gossip_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("gossip_sim");
    g.sample_size(10);
    for &n in &[64usize, 256] {
        g.bench_with_input(BenchmarkId::new("one_second_fair", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = GossipConfig::fair(8, 16, SimDuration::from_millis(100));
                let mut sim = Simulation::new(n, NetworkModel::default(), 7, move |id, _| {
                    GossipNode::new(id, cfg.clone(), FullMembership::new(id, n))
                });
                let topic = TopicId::new(0);
                for i in 0..n as u32 {
                    sim.schedule_command(
                        SimTime::ZERO,
                        NodeId::new(i),
                        GossipCmd::SubscribeTopic(topic),
                    );
                }
                for k in 0..10u32 {
                    sim.schedule_command(
                        SimTime::from_millis(50 * k as u64),
                        NodeId::new(0),
                        GossipCmd::Publish(Event::bare(EventId::new(0, k), topic)),
                    );
                }
                sim.run_until(SimTime::from_secs(1));
                black_box(sim.events_processed())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ledger,
    bench_controllers,
    bench_filters,
    bench_gossip_rounds
);
criterion_main!(benches);
