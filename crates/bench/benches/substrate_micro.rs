//! Micro-benchmarks of the substrates: PRNG, distributions, DHT routing,
//! Cyclon shuffles and raw event-queue throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fed_dht::{DhtId, DhtNetwork};
use fed_membership::CyclonState;
use fed_sim::network::NetworkModel;
use fed_sim::{Context, NodeId, Protocol, SimDuration, SimTime, Simulation};
use fed_util::dist::Zipf;
use fed_util::rng::{Rng64, Xoshiro256StarStar};
use std::hint::black_box;

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("xoshiro_next_u64", |b| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.bench_function("sample_indices_8_of_1024", |b| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        b.iter(|| black_box(rng.sample_indices(1024, 8)))
    });
    g.bench_function("zipf_sample_10k_ranks", |b| {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let zipf = Zipf::new(10_000, 1.0).expect("valid");
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
    g.finish();
}

fn bench_dht(c: &mut Criterion) {
    let mut g = c.benchmark_group("dht");
    g.sample_size(20);
    for &n in &[256usize, 1024] {
        let net = DhtNetwork::build(n);
        g.bench_with_input(BenchmarkId::new("route_path", n), &n, |b, _| {
            let mut k = 0usize;
            b.iter(|| {
                k = (k + 1) % n;
                black_box(
                    net.route_path(k, DhtId::of_topic(k % 32))
                        .expect("valid start"),
                )
            })
        });
    }
    g.bench_function("build_n512", |b| {
        b.iter(|| black_box(DhtNetwork::build(512)))
    });
    g.finish();
}

fn bench_cyclon(c: &mut Criterion) {
    let mut g = c.benchmark_group("cyclon");
    g.bench_function("shuffle_exchange", |b| {
        let mut a = CyclonState::new(NodeId::new(0), 16, 8);
        let mut peer = CyclonState::new(NodeId::new(1), 16, 8);
        a.bootstrap((1..17).map(NodeId::new));
        peer.bootstrap((2..18).map(NodeId::new));
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        b.iter(|| {
            if let Some((q, batch)) = a.start_shuffle(&mut rng) {
                let reply = peer.handle_request(NodeId::new(0), &batch, &mut rng);
                a.handle_response(q, &reply);
            }
        })
    });
    g.finish();
}

/// A deliberately chatty protocol to stress the event queue.
struct Chatter;

impl Protocol for Chatter {
    type Msg = u64;
    type Cmd = ();
    fn on_init(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }
    fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: NodeId, _msg: u64) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, _token: u64) {
        let n = ctx.system_size() as u32;
        let to = NodeId::new(ctx.rng().next_u64() as u32 % n);
        ctx.send(to, 42);
        ctx.set_timer(SimDuration::from_millis(1), 0);
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("throughput_100k_events", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(64, NetworkModel::default(), 3, |_, _| Chatter);
            sim.run_until(SimTime::from_millis(780)); // ~100k events
            black_box(sim.events_processed())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_rng, bench_dht, bench_cyclon, bench_engine);
criterion_main!(benches);
