//! Scaling benchmark of the `fed-cluster` sharded runtime.
//!
//! Sweeps shard counts over the same scenario for every sweep
//! architecture — fair gossip, broker, Scribe, DKS, DAM, SplitStream —
//! at 1 k and 10 k nodes, plus a 100 k-node group on a deliberately
//! light publication plan. The virtual-world outcome is bit-identical at
//! every shard count (asserted by the cross-engine tests); what changes
//! is wall-clock time. On multi-core hardware the larger populations
//! show the parallel speedup (>2x at 4 shards is the target); on a
//! single core the sharded rows measure pure barrier overhead.
//!
//! The record pass at the end also measures the telemetry overhead:
//! every 100 k smoke scenario runs with and without a `fed-telemetry`
//! probe attached, and both rows land in `BENCH_cluster.json`
//! (`"telemetry": true/false`) — the acceptance bar is < 10 % events/s.
//! Set `FED_BENCH_RECORDS_ONLY=1` to skip the timed criterion groups and
//! regenerate only the JSON records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fed_experiments::bench_json::{append_bench_json, BenchRecord};
use fed_experiments::harness::{run_architecture, EngineKind};
use fed_experiments::scale::scale_spec;
use fed_sim::SimTime;
use fed_telemetry::TelemetrySpec;
use fed_workload::pubs::PubPlan;
use fed_workload::scenario::{Architecture, Placement, ScenarioSpec};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Whether to skip the timed criterion groups (JSON record pass only).
fn records_only() -> bool {
    std::env::var_os("FED_BENCH_RECORDS_ONLY").is_some()
}

fn sweep(c: &mut Criterion, group_name: &str, n: usize) {
    if records_only() {
        return;
    }
    let mut g = c.benchmark_group(group_name);
    g.sample_size(10);
    for arch in Architecture::SWEEP {
        for shards in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(arch.name(), shards),
                &shards,
                |b, &shards| {
                    b.iter(|| {
                        let spec = scale_spec(n, 42).with_arch(arch).with_shards(shards);
                        let outcome = run_architecture(&spec, EngineKind::Cluster);
                        black_box(outcome.events)
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_cluster_1k(c: &mut Criterion) {
    sweep(c, "cluster_1k", 1_000);
}

fn bench_cluster_10k(c: &mut Criterion) {
    sweep(c, "cluster_10k", 10_000);
}

/// 100 k nodes: a handful of publications, one shard count per
/// architecture, tight time budget — a liveness-at-scale measurement,
/// not a statistics run.
fn bench_cluster_100k(c: &mut Criterion) {
    if records_only() {
        return;
    }
    let mut g = c.benchmark_group("cluster_100k");
    g.sample_size(10);
    // One 100 k iteration runs ~0.5-1 s in release; a couple of
    // iterations per architecture is plenty for a liveness measurement.
    g.measurement_time(Duration::from_secs(2));
    for arch in Architecture::SWEEP {
        g.bench_with_input(BenchmarkId::new(arch.name(), 8), &8usize, |b, &shards| {
            b.iter(|| {
                let mut spec = ScenarioSpec::standard(arch, 100_000, 42).with_shards(shards);
                spec.plan = PubPlan {
                    rate_per_sec: 5.0,
                    duration: SimTime::from_secs(2),
                    topic_zipf_s: 1.0,
                    payload_bytes: 64,
                    warmup: SimTime::from_secs(1),
                    flash: None,
                };
                let outcome = run_architecture(&spec, EngineKind::Cluster);
                black_box(outcome.events)
            })
        });
    }
    g.finish();
}

/// The 100 k-node smoke scenario shared by the bench group and the
/// record pass.
fn smoke_spec_100k(arch: Architecture) -> ScenarioSpec {
    let mut spec = ScenarioSpec::standard(arch, 100_000, 42).with_shards(8);
    spec.plan = PubPlan {
        rate_per_sec: 5.0,
        duration: SimTime::from_secs(2),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: None,
    };
    spec
}

/// Scheduler-knob sweep: placement × window policy at 10 k nodes on
/// 8 shards, for a uniform-load architecture (fair gossip) and the
/// id-hotspot one (broker, where placement matters most).
fn bench_sched_knobs(c: &mut Criterion) {
    if records_only() {
        return;
    }
    let mut g = c.benchmark_group("cluster_sched_10k");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for arch in [Architecture::FairGossip, Architecture::Broker] {
        for placement in Placement::ALL {
            for adaptive in [false, true] {
                let label = format!(
                    "{}/{}/{}",
                    arch.name(),
                    placement.name(),
                    if adaptive { "adaptive" } else { "fixed" }
                );
                g.bench_with_input(
                    BenchmarkId::new(label, 8),
                    &(placement, adaptive),
                    |b, &(placement, adaptive)| {
                        b.iter(|| {
                            let spec = scale_spec(10_000, 42)
                                .with_arch(arch)
                                .with_shards(8)
                                .with_placement(placement)
                                .with_adaptive_window(adaptive);
                            let outcome = run_architecture(&spec, EngineKind::Cluster);
                            black_box(outcome.events)
                        })
                    },
                );
            }
        }
    }
    g.finish();
}

/// Telemetry-overhead group: the 10 k scenario with and without a
/// telemetry probe attached, timed side by side.
fn bench_telemetry_overhead(c: &mut Criterion) {
    if records_only() {
        return;
    }
    let mut g = c.benchmark_group("cluster_telemetry_10k");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    for telemetry in [false, true] {
        let label = if telemetry { "telemetry" } else { "baseline" };
        g.bench_with_input(BenchmarkId::new(label, 8), &telemetry, |b, &telemetry| {
            b.iter(|| {
                let mut spec = scale_spec(10_000, 42)
                    .with_arch(Architecture::FairGossip)
                    .with_shards(8);
                if telemetry {
                    spec = spec.with_telemetry(TelemetrySpec::default());
                }
                let outcome = run_architecture(&spec, EngineKind::Cluster);
                black_box(outcome.events)
            })
        });
    }
    g.finish();
}

/// One timed run per configuration, appended to the repo-root
/// `BENCH_cluster.json` so the scheduler's events/sec trajectory is
/// tracked across PRs: the 10 k knob sweep plus the 100 k-node smoke
/// scenario for every sweep architecture at the default knobs — each
/// 100 k smoke measured twice, without and with streaming telemetry, so
/// the observability overhead is recorded next to the baseline.
///
/// This pass runs ~24 full simulations (minutes at 100 k); set
/// `FED_BENCH_SKIP_JSON=1` to skip it when iterating on the timed
/// groups above.
fn write_bench_records(_c: &mut Criterion) {
    if std::env::var_os("FED_BENCH_SKIP_JSON").is_some() {
        println!("FED_BENCH_SKIP_JSON set: skipping the BENCH_cluster.json record pass");
        return;
    }
    // Cargo runs bench executables from the owning package directory;
    // anchor the output at the repo root where the file is committed.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../", "BENCH_cluster.json");
    let mut records = Vec::new();
    // Best of three runs per configuration: single-run wall times at
    // 100 k vary by tens of percent on shared machines, which would
    // drown the < 10 % telemetry-overhead bar these records gate.
    const REPEATS: u32 = 3;
    let mut measure = |spec: &ScenarioSpec| {
        let mut best: Option<BenchRecord> = None;
        for _ in 0..REPEATS {
            let start = Instant::now();
            let outcome = run_architecture(spec, EngineKind::Cluster);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            if best.as_ref().is_none_or(|b| wall_ms < b.wall_ms) {
                best = Some(BenchRecord {
                    suite: "cluster_scale".into(),
                    arch: spec.arch.name().into(),
                    n: spec.n,
                    shards: outcome.shards,
                    placement: spec.placement.name().into(),
                    adaptive_window: spec.adaptive_window,
                    telemetry: spec.telemetry.is_some(),
                    events: outcome.events,
                    windows: outcome.windows,
                    wall_ms,
                    events_per_sec: outcome.events as f64 / (wall_ms / 1e3).max(1e-9),
                });
            }
        }
        records.push(best.expect("at least one repeat"));
    };
    for arch in [Architecture::FairGossip, Architecture::Broker] {
        for placement in Placement::ALL {
            for adaptive in [false, true] {
                let spec = scale_spec(10_000, 42)
                    .with_arch(arch)
                    .with_shards(8)
                    .with_placement(placement)
                    .with_adaptive_window(adaptive);
                measure(&spec);
            }
        }
    }
    for arch in Architecture::SWEEP {
        // Telemetry off, then on: adjacent rows measure the overhead.
        let spec = smoke_spec_100k(arch);
        measure(&spec);
        measure(&spec.with_telemetry(TelemetrySpec::default()));
    }
    match append_bench_json(path, &records) {
        Ok(()) => println!("appended {} records to {path}", records.len()),
        Err(e) => eprintln!("could not append to {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_cluster_1k,
    bench_cluster_10k,
    bench_cluster_100k,
    bench_sched_knobs,
    bench_telemetry_overhead,
    write_bench_records
);
criterion_main!(benches);
