//! Scaling benchmark of the `fed-cluster` sharded runtime.
//!
//! Sweeps shard counts over the same scenario for all five sweep
//! architectures — fair gossip, broker, Scribe, DKS, SplitStream — at
//! 1 k and 10 k nodes, plus a 100 k-node group on a deliberately light
//! publication plan. The virtual-world outcome is bit-identical at every
//! shard count (asserted by the cross-engine tests); what changes is
//! wall-clock time. On multi-core hardware the larger populations show
//! the parallel speedup (>2x at 4 shards is the target); on a single
//! core the sharded rows measure pure barrier overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fed_experiments::harness::{run_architecture, EngineKind};
use fed_experiments::scale::scale_spec;
use fed_sim::SimTime;
use fed_workload::pubs::PubPlan;
use fed_workload::scenario::{Architecture, ScenarioSpec};
use std::hint::black_box;
use std::time::Duration;

fn sweep(c: &mut Criterion, group_name: &str, n: usize) {
    let mut g = c.benchmark_group(group_name);
    g.sample_size(10);
    for arch in Architecture::SWEEP {
        for shards in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(arch.name(), shards),
                &shards,
                |b, &shards| {
                    b.iter(|| {
                        let spec = scale_spec(n, 42).with_arch(arch).with_shards(shards);
                        let outcome = run_architecture(&spec, EngineKind::Cluster);
                        black_box(outcome.events)
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_cluster_1k(c: &mut Criterion) {
    sweep(c, "cluster_1k", 1_000);
}

fn bench_cluster_10k(c: &mut Criterion) {
    sweep(c, "cluster_10k", 10_000);
}

/// 100 k nodes: a handful of publications, one shard count per
/// architecture, tight time budget — a liveness-at-scale measurement,
/// not a statistics run.
fn bench_cluster_100k(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_100k");
    g.sample_size(10);
    // One 100 k iteration runs ~0.5-1 s in release; a couple of
    // iterations per architecture is plenty for a liveness measurement.
    g.measurement_time(Duration::from_secs(2));
    for arch in Architecture::SWEEP {
        g.bench_with_input(BenchmarkId::new(arch.name(), 8), &8usize, |b, &shards| {
            b.iter(|| {
                let mut spec = ScenarioSpec::standard(arch, 100_000, 42).with_shards(shards);
                spec.plan = PubPlan {
                    rate_per_sec: 5.0,
                    duration: SimTime::from_secs(2),
                    topic_zipf_s: 1.0,
                    payload_bytes: 64,
                    warmup: SimTime::from_secs(1),
                };
                let outcome = run_architecture(&spec, EngineKind::Cluster);
                black_box(outcome.events)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cluster_1k,
    bench_cluster_10k,
    bench_cluster_100k
);
criterion_main!(benches);
