//! Scaling benchmark of the `fed-cluster` sharded runtime.
//!
//! Sweeps shard counts over the same fair-gossip scenario at 1 k and 10 k
//! nodes. The virtual-world outcome is bit-identical at every shard count
//! (asserted by the fed-cluster tests); what changes is wall-clock time.
//! On multi-core hardware the 10 k-node scenario shows the parallel
//! speedup (>2x at 4 shards is the target); on a single core the sharded
//! rows measure pure barrier overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_experiments::harness::build_gossip_cluster;
use fed_experiments::scale::scale_spec;
use fed_sim::SimDuration;
use std::hint::black_box;

fn config() -> GossipConfig {
    GossipConfig::fair(4, 16, SimDuration::from_millis(100))
}

fn sweep(c: &mut Criterion, group_name: &str, n: usize) {
    let mut g = c.benchmark_group(group_name);
    g.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("fair_gossip", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let spec = scale_spec(n, 42).with_shards(shards);
                    let mut run = build_gossip_cluster(&spec, config(), |_| Behavior::Honest);
                    run.run();
                    black_box(run.sim.events_processed())
                })
            },
        );
    }
    g.finish();
}

fn bench_cluster_1k(c: &mut Criterion) {
    sweep(c, "cluster_1k", 1_000);
}

fn bench_cluster_10k(c: &mut Criterion) {
    sweep(c, "cluster_10k", 10_000);
}

criterion_group!(benches, bench_cluster_1k, bench_cluster_10k);
criterion_main!(benches);
