//! # fed-bench
//!
//! Criterion benchmark harness. The `benches/` targets regenerate every
//! paper figure/table (printing each table once per run, then timing the
//! underlying simulation) plus micro-benchmarks of the hot paths:
//!
//! * `figures` — FIG1..FIG4 experiment benchmarks.
//! * `architectures` — T-ARCH, E-CHURN, E-SUBS, E-CONV, E-ROBUST, E-BIAS.
//! * `protocol_micro` — ledger updates, controllers, filter matching,
//!   full gossip rounds.
//! * `substrate_micro` — PRNG, distributions, DHT routing, Cyclon
//!   shuffles, event-queue throughput.
//!
//! Run with `cargo bench --workspace`.

#![forbid(unsafe_code)]
