//! Property-based tests for fed-util invariants.

use fed_util::dist::{Exponential, Geometric, WeightedIndex, Zipf};
use fed_util::fairness::{gini_coefficient, jain_index, max_min_ratio, normalized_entropy};
use fed_util::rng::{Rng64, SplitMix64, Xoshiro256StarStar};
use fed_util::stats::{OnlineStats, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn rng_range_always_below_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(rng.range_u64(bound) < bound);
        }
    }

    #[test]
    fn rng_f64_in_unit_interval(seed in any::<u64>()) {
        let mut rng = SplitMix64::seed_from_u64(seed);
        for _ in 0..64 {
            let x = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn rng_same_seed_same_stream(seed in any::<u64>()) {
        let mut a = Xoshiro256StarStar::seed_from_u64(seed);
        let mut b = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in prop::collection::vec(0u32..100, 0..64)) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut original = v.clone();
        rng.shuffle(&mut v);
        original.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(original, v);
    }

    #[test]
    fn sample_indices_distinct(seed in any::<u64>(), n in 0usize..300, k in 0usize..350) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn zipf_samples_in_range(seed in any::<u64>(), n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn zipf_pmf_normalized(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exponential_non_negative(seed in any::<u64>(), lambda in 0.001f64..100.0) {
        let e = Exponential::new(lambda).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..32 {
            let x = e.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn geometric_finite(seed in any::<u64>(), p in 0.01f64..1.0) {
        let g = Geometric::new(p).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..16 {
            let _ = g.sample(&mut rng); // must terminate and not panic
        }
    }

    #[test]
    fn weighted_index_never_picks_zero_weight(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..20),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let w = WeightedIndex::new(&weights).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        for _ in 0..64 {
            let i = w.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "picked zero-weight index {}", i);
        }
    }

    #[test]
    fn jain_in_bounds(values in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let j = jain_index(&values);
        let n = values.len() as f64;
        prop_assert!(j <= 1.0 + 1e-9);
        prop_assert!(j >= 1.0 / n - 1e-9);
    }

    #[test]
    fn gini_in_bounds(values in prop::collection::vec(0.0f64..1e6, 1..100)) {
        let g = gini_coefficient(&values);
        prop_assert!((-1e-9..=1.0).contains(&g));
    }

    #[test]
    fn entropy_in_bounds(values in prop::collection::vec(0.0f64..1e6, 2..100)) {
        let h = normalized_entropy(&values);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&h));
    }

    #[test]
    fn max_min_at_least_one(values in prop::collection::vec(0.1f64..1e6, 1..100)) {
        prop_assert!(max_min_ratio(&values) >= 1.0 - 1e-12);
    }

    #[test]
    fn indices_perfect_on_constant(x in 0.1f64..1e6, n in 1usize..64) {
        let v = vec![x; n];
        prop_assert!((jain_index(&v) - 1.0).abs() < 1e-9);
        prop_assert!(gini_coefficient(&v).abs() < 1e-9);
        prop_assert!((max_min_ratio(&v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_match_naive(values in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let s: OnlineStats = values.iter().copied().collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6);
        prop_assert!((s.variance() - var).abs() < 1e-4);
    }

    #[test]
    fn online_merge_associative(
        a in prop::collection::vec(-1e4f64..1e4, 0..50),
        b in prop::collection::vec(-1e4f64..1e4, 0..50),
    ) {
        let mut merged: OnlineStats = a.iter().copied().collect();
        let sb: OnlineStats = b.iter().copied().collect();
        merged.merge(&sb);
        let joint: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.len(), joint.len());
        prop_assert!((merged.mean() - joint.mean()).abs() < 1e-6);
        prop_assert!((merged.variance() - joint.variance()).abs() < 1e-3);
    }

    #[test]
    fn summary_percentiles_monotone(values in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let s = Summary::from_values(values);
        let p25 = s.percentile(25.0).unwrap();
        let p50 = s.percentile(50.0).unwrap();
        let p75 = s.percentile(75.0).unwrap();
        prop_assert!(p25 <= p50 && p50 <= p75);
        prop_assert!(s.min().unwrap() <= p25);
        prop_assert!(p75 <= s.max().unwrap());
    }
}
