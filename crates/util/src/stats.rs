//! Streaming and batch statistics.
//!
//! [`OnlineStats`] accumulates mean/variance/extrema in one pass (Welford's
//! algorithm); [`Summary`] computes batch percentiles. Fairness-specific
//! indices (Jain, Gini, …) live in [`crate::fairness`].

/// One-pass accumulator for count, mean, variance, min and max.
///
/// Uses Welford's numerically stable update. `Default` starts empty.
///
/// # Examples
///
/// ```
/// use fed_util::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// Non-finite values are ignored (they would poison every aggregate).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of (finite) observations.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Returns `true` if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; `0.0` with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (`std_dev / mean`); `0.0` when the mean is 0.
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Batch summary with exact percentiles.
///
/// Construction sorts a copy of the data (`O(n log n)`); queries are `O(1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    stats: OnlineStats,
}

impl Summary {
    /// Builds a summary from any iterator of values.
    ///
    /// Non-finite values are dropped.
    pub fn from_values<I: IntoIterator<Item = f64>>(values: I) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let stats = sorted.iter().copied().collect();
        Summary { sorted, stats }
    }

    /// Number of retained values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if no values were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The one-pass statistics over the same data.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Mean of the values; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Percentile in `[0, 100]` by the nearest-rank method.
    ///
    /// Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or NaN.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.sorted.is_empty() {
            return None;
        }
        if p == 0.0 {
            return self.sorted.first().copied();
        }
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        Some(self.sorted[rank.saturating_sub(1).min(self.sorted.len() - 1)])
    }

    /// The median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Smallest value.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest value.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Borrow of the sorted data.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Summary::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_empty() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.cov(), 0.0);
    }

    #[test]
    fn online_known_values() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.cov() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn online_ignores_non_finite() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(3.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn online_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: OnlineStats = data.iter().copied().collect();
        let mut a: OnlineStats = data[..37].iter().copied().collect();
        let b: OnlineStats = data[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.len(), seq.len());
        assert!((a.mean() - seq.mean()).abs() < 1e-9);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn online_merge_with_empty() {
        let mut a = OnlineStats::new();
        let b: OnlineStats = [1.0, 2.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 2);
        let mut c: OnlineStats = [1.0, 2.0].into_iter().collect();
        c.merge(&OnlineStats::new());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn summary_percentiles() {
        let s = Summary::from_values((1..=100).map(|i| i as f64));
        assert_eq!(s.len(), 100);
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.percentile(99.0), Some(99.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.median(), Some(50.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(100.0));
    }

    #[test]
    fn summary_empty() {
        let s = Summary::from_values(std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.median(), None);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::from_values([7.5]);
        assert_eq!(s.percentile(0.0), Some(7.5));
        assert_eq!(s.percentile(100.0), Some(7.5));
        assert_eq!(s.mean(), 7.5);
    }

    #[test]
    fn summary_drops_non_finite() {
        let s = Summary::from_values([1.0, f64::NAN, 2.0, f64::NEG_INFINITY]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.sorted_values(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn summary_rejects_bad_percentile() {
        let s = Summary::from_values([1.0]);
        let _ = s.percentile(101.0);
    }
}
