//! # fed-util
//!
//! Foundation utilities for the `fed` (fair event dissemination) workspace:
//! deterministic pseudo-randomness, probability distributions, streaming
//! statistics and the fairness indices used throughout the experiments.
//!
//! The whole workspace is built around **deterministic replay**: a single
//! `u64` seed fixes every stochastic choice, so any experiment, test failure
//! or benchmark can be reproduced bit-for-bit. For that reason the crate
//! ships its own small PRNGs ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`])
//! instead of depending on an external generator whose stream could change
//! between versions.
//!
//! ## Examples
//!
//! ```
//! use fed_util::rng::{Rng64, Xoshiro256StarStar};
//! use fed_util::dist::Zipf;
//! use fed_util::fairness::jain_index;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(7);
//! let zipf = Zipf::new(10, 1.0)?;
//! let mut hits = vec![0.0; 10];
//! for _ in 0..1000 {
//!     hits[zipf.sample(&mut rng)] += 1.0;
//! }
//! // Zipf traffic is unfair by design: Jain's index well below 1.
//! assert!(jain_index(&hits) < 0.9);
//! # Ok::<(), fed_util::dist::InvalidDistribution>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod fairness;
pub mod histogram;
pub mod rng;
pub mod stats;

pub use fairness::FairnessReport;
pub use rng::{Rng64, SplitMix64, Xoshiro256StarStar};
pub use stats::{OnlineStats, Summary};
