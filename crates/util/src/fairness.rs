//! Fairness indices over per-peer quantities.
//!
//! The paper's definition (its Figures 1–3) is that a system is fair when the
//! `contribution / benefit` ratio is equal across peers. Given the vector of
//! per-peer ratios, this module quantifies *how* equal they are:
//!
//! * [`jain_index`] — Jain's fairness index, `1.0` = perfectly fair,
//!   `1/n` = maximally unfair (one peer does everything).
//! * [`gini_coefficient`] — `0.0` = perfect equality, `→1.0` = inequality.
//! * [`max_min_ratio`] — worst-peer over best-peer ratio.
//! * [`normalized_entropy`] — entropy of the share distribution.
//!
//! All functions ignore non-finite inputs and treat negative values as
//! invalid (returning the conventional degenerate result on empty input).

/// Jain's fairness index: `(Σx)² / (n · Σx²)`.
///
/// Equals `1.0` when all values are identical, `1/n` when a single value
/// carries everything. Returns `1.0` for empty or all-zero input (an empty
/// system is vacuously fair).
///
/// # Examples
///
/// ```
/// use fed_util::fairness::jain_index;
///
/// assert_eq!(jain_index(&[3.0, 3.0, 3.0]), 1.0);
/// assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
/// ```
pub fn jain_index(values: &[f64]) -> f64 {
    let vals: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if vals.is_empty() {
        return 1.0;
    }
    let sum: f64 = vals.iter().sum();
    let sq: f64 = vals.iter().map(|v| v * v).sum();
    if sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (vals.len() as f64 * sq)
}

/// Gini coefficient of a non-negative distribution.
///
/// `0.0` means perfect equality; values approach `1.0` as one peer
/// concentrates everything. Negative inputs are clamped to zero (a
/// contribution cannot be negative). Returns `0.0` for empty or all-zero
/// input.
pub fn gini_coefficient(values: &[f64]) -> f64 {
    let mut vals: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite())
        .map(|v| v.max(0.0))
        .collect();
    let n = vals.len();
    if n == 0 {
        return 0.0;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let sum: f64 = vals.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    // G = (2 Σ_i i·x_i) / (n Σ x) - (n+1)/n  with 1-based i over sorted x.
    let weighted: f64 = vals
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * sum) - (n as f64 + 1.0) / n as f64
}

/// Ratio of the largest to the smallest value, a "worst-case" fairness view.
///
/// Returns `1.0` for empty input and `f64::INFINITY` when the minimum is zero
/// but the maximum is not.
pub fn max_min_ratio(values: &[f64]) -> f64 {
    let vals: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if vals.is_empty() {
        return 1.0;
    }
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    if min == 0.0 {
        if max == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        max / min
    }
}

/// Normalized Shannon entropy of the share distribution `x_i / Σx`.
///
/// `1.0` means every peer holds an equal share; `0.0` means one peer holds
/// everything. Returns `1.0` for empty, single-element, or all-zero input.
pub fn normalized_entropy(values: &[f64]) -> f64 {
    let vals: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    let n_total = values.iter().filter(|v| v.is_finite()).count();
    if n_total <= 1 {
        return 1.0;
    }
    let sum: f64 = vals.iter().sum();
    if sum == 0.0 {
        return 1.0;
    }
    let h: f64 = vals
        .iter()
        .map(|&x| {
            let p = x / sum;
            -p * p.ln()
        })
        .sum();
    h / (n_total as f64).ln()
}

/// A compact, displayable bundle of every fairness index over one vector.
///
/// This is what experiment tables print per system/configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessReport {
    /// Jain's index in `(0, 1]`.
    pub jain: f64,
    /// Gini coefficient in `[0, 1)`.
    pub gini: f64,
    /// Max/min ratio in `[1, ∞]`.
    pub max_min: f64,
    /// Normalized entropy in `[0, 1]`.
    pub entropy: f64,
    /// Number of peers measured.
    pub n: usize,
    /// Mean of the measured values.
    pub mean: f64,
}

impl FairnessReport {
    /// Computes every index over `values`.
    pub fn from_values(values: &[f64]) -> Self {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        let mean = if finite.is_empty() {
            0.0
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        };
        FairnessReport {
            jain: jain_index(values),
            gini: gini_coefficient(values),
            max_min: max_min_ratio(values),
            entropy: normalized_entropy(values),
            n: finite.len(),
            mean,
        }
    }
}

impl std::fmt::Display for FairnessReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "jain={:.4} gini={:.4} max/min={:.2} entropy={:.4} (n={}, mean={:.3})",
            self.jain, self.gini, self.max_min, self.entropy, self.n, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_perfect_fairness() {
        assert_eq!(jain_index(&[5.0; 10]), 1.0);
    }

    #[test]
    fn jain_single_contributor() {
        let mut v = vec![0.0; 9];
        v.push(10.0);
        assert!((jain_index(&v) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn jain_empty_and_zero() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((jain_index(&a) - jain_index(&b)).abs() < 1e-12);
    }

    #[test]
    fn gini_equality_and_concentration() {
        assert_eq!(gini_coefficient(&[4.0; 8]), 0.0);
        let mut v = vec![0.0; 99];
        v.push(1.0);
        let g = gini_coefficient(&v);
        assert!(g > 0.95, "g={g}");
    }

    #[test]
    fn gini_known_value() {
        // For [1, 2, 3, 4]: G = (2*(1*1+2*2+3*3+4*4))/(4*10) - 5/4 = 60/40 - 1.25 = 0.25
        let g = gini_coefficient(&[1.0, 2.0, 3.0, 4.0]);
        assert!((g - 0.25).abs() < 1e-12, "g={g}");
    }

    #[test]
    fn gini_empty_and_negative() {
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0.0, 0.0]), 0.0);
        // negatives are clamped
        let g = gini_coefficient(&[-1.0, 1.0]);
        assert!(g > 0.0);
    }

    #[test]
    fn max_min_basic() {
        assert_eq!(max_min_ratio(&[2.0, 8.0]), 4.0);
        assert_eq!(max_min_ratio(&[3.0, 3.0]), 1.0);
        assert_eq!(max_min_ratio(&[]), 1.0);
        assert_eq!(max_min_ratio(&[0.0, 0.0]), 1.0);
        assert_eq!(max_min_ratio(&[0.0, 5.0]), f64::INFINITY);
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(normalized_entropy(&[1.0; 16]), 1.0);
        let mut v = vec![0.0; 15];
        v.push(1.0);
        assert_eq!(normalized_entropy(&v), 0.0);
        assert_eq!(normalized_entropy(&[]), 1.0);
        assert_eq!(normalized_entropy(&[7.0]), 1.0);
    }

    #[test]
    fn entropy_monotone_in_skew() {
        let even = normalized_entropy(&[1.0, 1.0, 1.0, 1.0]);
        let skew = normalized_entropy(&[10.0, 1.0, 1.0, 1.0]);
        let worse = normalized_entropy(&[100.0, 1.0, 1.0, 1.0]);
        assert!(even > skew && skew > worse);
    }

    #[test]
    fn report_aggregates_and_displays() {
        let r = FairnessReport::from_values(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(r.jain, 1.0);
        assert_eq!(r.gini, 0.0);
        assert_eq!(r.max_min, 1.0);
        assert_eq!(r.n, 4);
        assert_eq!(r.mean, 1.0);
        let s = format!("{r}");
        assert!(s.contains("jain=1.0000"));
        assert!(s.contains("n=4"));
    }

    #[test]
    fn report_ignores_non_finite() {
        let r = FairnessReport::from_values(&[1.0, f64::NAN, 3.0]);
        assert_eq!(r.n, 2);
        assert_eq!(r.mean, 2.0);
    }

    #[test]
    fn indices_agree_on_direction() {
        // As inequality rises, jain falls, gini rises.
        let fair = [5.0, 5.0, 5.0, 5.0];
        let unfair = [17.0, 1.0, 1.0, 1.0];
        assert!(jain_index(&fair) > jain_index(&unfair));
        assert!(gini_coefficient(&fair) < gini_coefficient(&unfair));
        assert!(max_min_ratio(&fair) < max_min_ratio(&unfair));
    }
}
