//! Deterministic pseudo-random number generation.
//!
//! Every stochastic decision in the workspace flows through [`Rng64`] so that
//! an experiment seeded with the same `u64` replays the exact same trace on
//! any platform. Two generators are provided:
//!
//! * [`SplitMix64`] — tiny, used for seeding and cheap per-entity streams.
//! * [`Xoshiro256StarStar`] — the workhorse generator (period `2^256 - 1`),
//!   used by the simulator and workload generators.
//!
//! Neither generator is cryptographically secure; they are simulation-grade
//! generators chosen for speed and reproducibility.
//!
//! # Examples
//!
//! ```
//! use fed_util::rng::{Rng64, Xoshiro256StarStar};
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let a = rng.next_u64();
//! let mut rng2 = Xoshiro256StarStar::seed_from_u64(42);
//! assert_eq!(a, rng2.next_u64()); // fully deterministic
//! ```

/// A deterministic 64-bit random number source.
///
/// All derived helpers (`next_f64`, `range_u64`, `shuffle`, …) are default
/// methods expressed in terms of [`Rng64::next_u64`], so every implementor
/// automatically produces identical derived streams for identical raw
/// streams.
pub trait Rng64 {
    /// Returns the next raw 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    ///
    /// Uses the top 53 bits of the next raw value, the standard way of
    /// producing doubles with full mantissa entropy.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 2^53), then scale.
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        ((self.next_u64() >> 11) as f64) * SCALE
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range_u64 bound must be positive");
        // Lemire's method: unbiased and fast.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn range_usize(&mut self, bound: usize) -> usize {
        self.range_u64(bound as u64) as usize
    }

    /// Returns a uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "range_f64 requires lo < hi");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Shuffles `slice` in place with the Fisher–Yates algorithm.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Returns a reference to a uniformly chosen element, or `None` if the
    /// slice is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range_usize(slice.len())])
        }
    }

    /// Samples `k` distinct indices from `[0, n)` uniformly at random.
    ///
    /// Returns fewer than `k` indices when `k > n`. Order of the returned
    /// indices is random. Uses a partial Fisher–Yates walk over an index
    /// array for small `n`, and Floyd's algorithm for large `n` with small
    /// `k` to avoid the `O(n)` allocation.
    fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        // Floyd's algorithm when the index array would dominate.
        if n > 4096 && k * 8 < n {
            let mut chosen: Vec<usize> = Vec::with_capacity(k);
            for j in (n - k)..n {
                let t = self.range_usize(j + 1);
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            self.shuffle(&mut chosen);
            return chosen;
        }
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.range_usize(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Forks a new independent stream seeded from this stream.
    ///
    /// Useful to give each simulated node its own generator while preserving
    /// overall determinism.
    fn fork(&mut self) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(self.next_u64())
    }
}

/// The SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`], and as a cheap dedicated stream where statistical
/// quality demands are modest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256** generator (Blackman, Vigna 2018).
///
/// Fast, equidistributed in all 64-bit sub-sequences and with period
/// `2^256 - 1`; the default generator of several language runtimes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding `seed` through [`SplitMix64`], the
    /// seeding procedure recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot emit
        // four zeros in a row, but guard anyway for manual construction.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Creates a generator from raw state words.
    ///
    /// # Panics
    ///
    /// Panics if all four words are zero (the sole invalid state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro256** state must be non-zero");
        Xoshiro256StarStar { s }
    }

    /// Returns the raw state words (for checkpointing a simulation).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl Rng64 for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // SplitMix64 reference implementation.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        let v: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(v[0], 6457827717110365317);
        assert_eq!(v[1], 3203168211198807973);
        assert_eq!(v[2], 9817491932198370423);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_seeds() {
        let mut a = Xoshiro256StarStar::seed_from_u64(7);
        let mut b = Xoshiro256StarStar::seed_from_u64(7);
        let mut c = Xoshiro256StarStar::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn range_u64_respects_bound_and_covers() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = rng.range_u64(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn range_u64_zero_bound_panics() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let _ = rng.range_u64(0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-0.5));
        assert!(rng.bernoulli(1.5));
    }

    #[test]
    fn bernoulli_frequency_close_to_p() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<u32>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(77);
        for &(n, k) in &[
            (10usize, 3usize),
            (10, 10),
            (10, 20),
            (0, 5),
            (5000, 8),
            (8192, 4),
        ] {
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k.min(n));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), s.len(), "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_indices_floyd_path_uniformity() {
        // Large n, small k triggers Floyd's algorithm; check rough uniformity
        // of the first index over many draws.
        let mut rng = Xoshiro256StarStar::seed_from_u64(123);
        let n = 10_000;
        let mut low = 0usize;
        let trials = 2_000;
        for _ in 0..trials {
            let s = rng.sample_indices(n, 2);
            if s[0] < n / 2 {
                low += 1;
            }
        }
        let frac = low as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Xoshiro256StarStar::seed_from_u64(2024);
        let mut a = root.fork();
        let mut b = root.fork();
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn from_state_roundtrip() {
        let rng = Xoshiro256StarStar::seed_from_u64(5);
        let st = rng.state();
        let mut x = Xoshiro256StarStar::from_state(st);
        let mut y = rng.clone();
        assert_eq!(x.next_u64(), y.next_u64());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn from_state_rejects_zero() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }
}
