//! Fixed-bucket histograms for latency/round distributions.

use std::fmt;

/// A histogram over `[lo, hi)` with equal-width buckets plus underflow and
/// overflow counters.
///
/// # Examples
///
/// ```
/// use fed_util::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.record(3.0);
/// h.record(3.5);
/// h.record(42.0); // overflow
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

/// Error returned by [`Histogram::new`] on invalid bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidHistogram;

impl fmt::Display for InvalidHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram requires finite lo < hi and at least one bucket"
        )
    }
}

impl std::error::Error for InvalidHistogram {}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `buckets` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidHistogram`] if `lo >= hi`, either bound is
    /// non-finite, or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Result<Self, InvalidHistogram> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi || buckets == 0 {
            return Err(InvalidHistogram);
        }
        Ok(Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
        })
    }

    /// Records one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts, low to high.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// The `[start, end)` range of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.buckets.len(), "bucket index out of range");
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Approximate quantile from bucket midpoints; `None` when empty or the
    /// quantile falls in under/overflow.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return None; // inside underflow region
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                let (a, b) = self.bucket_range(i);
                return Some((a + b) / 2.0);
            }
        }
        None // inside overflow region
    }

    /// Lower bound of the histogram's range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Exclusive upper bound of the histogram's range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Merges another histogram into this one, bucket by bucket.
    ///
    /// Merging is exact (counts are integers), associative and
    /// commutative, which is what makes per-shard histograms usable as
    /// streaming sketches: shards record locally and the merged result is
    /// identical to a single histogram that saw every observation.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidHistogram`] when the two histograms disagree on
    /// bounds or bucket count.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), InvalidHistogram> {
        if self.lo != other.lo || self.hi != other.hi || self.buckets.len() != other.buckets.len() {
            return Err(InvalidHistogram);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        Ok(())
    }

    /// Renders a compact ASCII bar chart (one line per bucket) for reports.
    pub fn render(&self, width: usize) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.buckets.iter().enumerate() {
            let (a, b) = self.bucket_range(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{a:>10.3}, {b:>10.3}) {c:>8} {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 4).is_ok());
    }

    #[test]
    fn records_land_in_right_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.bucket_counts(), &[1; 10]);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(-0.1);
        h.record(1.0); // hi is exclusive
        h.record(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn ignores_nan() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn bucket_range_math() {
        let h = Histogram::new(0.0, 100.0, 4).unwrap();
        assert_eq!(h.bucket_range(0), (0.0, 25.0));
        assert_eq!(h.bucket_range(3), (75.0, 100.0));
    }

    #[test]
    fn quantile_midpoints() {
        let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
        for i in 0..100 {
            h.record(i as f64);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 45.0).abs() <= 10.0, "median~{med}");
        assert!(h.quantile(1.0).is_some());
        assert!(Histogram::new(0.0, 1.0, 2).unwrap().quantile(0.5).is_none());
    }

    #[test]
    fn merge_is_exact_and_geometry_checked() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        let mut b = Histogram::new(0.0, 10.0, 5).unwrap();
        let mut whole = Histogram::new(0.0, 10.0, 5).unwrap();
        for (i, x) in [0.5, 3.0, 9.9, -1.0, 42.0, 5.0].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*x);
            } else {
                b.record(*x);
            }
            whole.record(*x);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, whole, "merged shards must equal the single histogram");
        // Merging is commutative: b + a gives the same result.
        let mut a2 = Histogram::new(0.0, 10.0, 5).unwrap();
        let mut b2 = Histogram::new(0.0, 10.0, 5).unwrap();
        for (i, x) in [0.5, 3.0, 9.9, -1.0, 42.0, 5.0].iter().enumerate() {
            if i % 2 == 0 {
                a2.record(*x);
            } else {
                b2.record(*x);
            }
        }
        b2.merge(&a2).unwrap();
        assert_eq!(b2, whole);
        // Geometry mismatches are rejected.
        let mut narrow = Histogram::new(0.0, 5.0, 5).unwrap();
        assert!(narrow.merge(&whole).is_err());
        let mut coarse = Histogram::new(0.0, 10.0, 2).unwrap();
        assert!(coarse.merge(&whole).is_err());
    }

    #[test]
    fn bounds_accessors() {
        let h = Histogram::new(-1.0, 3.0, 4).unwrap();
        assert_eq!(h.lo(), -1.0);
        assert_eq!(h.hi(), 3.0);
    }

    #[test]
    fn render_shows_all_buckets() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.record(0.5);
        h.record(0.6);
        h.record(3.2);
        let s = h.render(20);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }
}
