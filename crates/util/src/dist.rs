//! Random distributions used by the workload generators and network models.
//!
//! All distributions sample through the [`Rng64`] trait so streams stay
//! deterministic. The set covers what the gossip-dissemination literature
//! needs: Zipf topic popularity, exponential/Poisson event processes,
//! log-normal network latency and geometric retry counts.
//!
//! # Examples
//!
//! ```
//! use fed_util::rng::{Rng64, Xoshiro256StarStar};
//! use fed_util::dist::Zipf;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(1);
//! let zipf = Zipf::new(100, 1.0).unwrap();
//! let topic = zipf.sample(&mut rng); // in 0..100, skewed toward 0
//! assert!(topic < 100);
//! ```

use crate::rng::Rng64;
use std::fmt;

/// Error raised when a distribution is constructed with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidDistribution {
    what: String,
}

impl InvalidDistribution {
    fn new(what: impl Into<String>) -> Self {
        InvalidDistribution { what: what.into() }
    }
}

impl fmt::Display for InvalidDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for InvalidDistribution {}

/// Zipf distribution over ranks `0..n` with exponent `s >= 0`.
///
/// Rank `k` has probability proportional to `1 / (k+1)^s`. The exponent `0`
/// degenerates to the uniform distribution. Sampling is by binary search in
/// a precomputed CDF (`O(log n)` per sample), which is exact and fast for the
/// `n <= 10^6` range the experiments use.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistribution`] if `n == 0`, or `s` is negative or
    /// non-finite.
    pub fn new(n: usize, s: f64) -> Result<Self, InvalidDistribution> {
        if n == 0 {
            return Err(InvalidDistribution::new("Zipf requires n > 0"));
        }
        if !s.is_finite() || s < 0.0 {
            return Err(InvalidDistribution::new("Zipf requires finite s >= 0"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point never quite reaching 1.0.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Ok(Zipf { cdf, s })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false // constructor guarantees n > 0; kept for clippy convention
    }

    /// The exponent the distribution was built with.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Probability of rank `k`, or `0.0` when out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        let hi = self.cdf[k];
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        hi - lo
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        // partition_point returns the first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used for inter-arrival times of publications and churn events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistribution`] if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Result<Self, InvalidDistribution> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(InvalidDistribution::new("Exponential requires lambda > 0"));
        }
        Ok(Exponential { lambda })
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.lambda
    }

    /// The mean `1 / lambda`.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Samples by inversion; always finite and non-negative.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        // 1 - u in (0, 1] avoids ln(0).
        let u = 1.0 - rng.next_f64();
        -u.ln() / self.lambda
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Sampling uses Knuth's product method for `lambda < 30` and a normal
/// approximation with continuity correction above, which is accurate to well
/// under a percent for the workloads simulated here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistribution`] if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Result<Self, InvalidDistribution> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(InvalidDistribution::new("Poisson requires lambda > 0"));
        }
        Ok(Poisson { lambda })
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Samples a count.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            let limit = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            let n = StandardNormal.sample(rng);
            let x = self.lambda + self.lambda.sqrt() * n + 0.5;
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }
}

/// Standard normal distribution sampled via the Marsaglia polar method.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardNormal;

impl StandardNormal {
    /// Samples one standard-normal variate.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u = rng.range_f64(-1.0, 1.0);
            let v = rng.range_f64(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

/// Log-normal distribution, parameterised by the `mu`/`sigma` of the
/// underlying normal.
///
/// The classic model for wide-area network latency: most links are fast,
/// a heavy tail is slow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistribution`] if `sigma` is negative or either
    /// parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, InvalidDistribution> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(InvalidDistribution::new(
                "LogNormal requires finite mu and sigma >= 0",
            ));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a log-normal with a given median and shape `sigma`.
    ///
    /// The median of a log-normal is `exp(mu)`, so this is a convenient way
    /// to say "median latency 50 ms, tail shape 0.4".
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistribution`] if `median <= 0` or `sigma < 0`.
    pub fn from_median(median: f64, sigma: f64) -> Result<Self, InvalidDistribution> {
        if !median.is_finite() || median <= 0.0 {
            return Err(InvalidDistribution::new("LogNormal median must be > 0"));
        }
        Self::new(median.ln(), sigma)
    }

    /// Samples a positive value.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * StandardNormal.sample(rng)).exp()
    }
}

/// Geometric distribution on `{0, 1, 2, ...}` with success probability `p`:
/// the number of failures before the first success.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistribution`] unless `0 < p <= 1`.
    pub fn new(p: f64) -> Result<Self, InvalidDistribution> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(InvalidDistribution::new("Geometric requires 0 < p <= 1"));
        }
        Ok(Geometric { p })
    }

    /// Samples the number of failures before the first success.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let u = 1.0 - rng.next_f64(); // in (0, 1]
        (u.ln() / (1.0 - self.p).ln()).floor() as u64
    }
}

/// Discrete distribution over `0..n` given by explicit non-negative weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cdf: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the distribution from weights.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistribution`] if `weights` is empty, any weight is
    /// negative or non-finite, or all weights are zero.
    pub fn new(weights: &[f64]) -> Result<Self, InvalidDistribution> {
        if weights.is_empty() {
            return Err(InvalidDistribution::new("WeightedIndex requires weights"));
        }
        let mut acc = 0.0;
        let mut cdf = Vec::with_capacity(weights.len());
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(InvalidDistribution::new(
                    "WeightedIndex weights must be finite and non-negative",
                ));
            }
            acc += w;
            cdf.push(acc);
        }
        if acc <= 0.0 {
            return Err(InvalidDistribution::new(
                "WeightedIndex requires a positive total weight",
            ));
        }
        for c in &mut cdf {
            *c /= acc;
        }
        *cdf.last_mut().expect("non-empty") = 1.0;
        Ok(WeightedIndex { cdf })
    }

    /// Samples an index in `0..weights.len()`.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(0xFED)
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, 0.0).is_ok());
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(50, 1.2).unwrap();
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12, "pmf not monotone at {k}");
        }
        assert_eq!(z.pmf(50), 0.0);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = Zipf::new(20, 1.0).unwrap();
        let mut r = rng();
        let n = 200_000;
        let mut counts = [0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: emp={emp} pmf={}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let e = Exponential::new(0.5).unwrap();
        assert_eq!(e.mean(), 2.0);
        let mut r = rng();
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| e.sample(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn poisson_small_lambda_mean_and_variance() {
        let p = Poisson::new(3.5).unwrap();
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<u64> = (0..n).map(|_| p.sample(&mut r)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean={mean}");
        assert!((var - 3.5).abs() < 0.15, "var={var}");
    }

    #[test]
    fn poisson_large_lambda_normal_path() {
        let p = Poisson::new(100.0).unwrap();
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| p.sample(&mut r)).sum::<u64>() as f64 / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn normal_mean_zero_var_one() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| StandardNormal.sample(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn lognormal_median() {
        let ln = LogNormal::from_median(50.0, 0.5).unwrap();
        let mut r = rng();
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| ln.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 50.0).abs() < 2.0, "median={median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::new(0.0, -0.1).is_err());
        assert!(LogNormal::from_median(0.0, 0.5).is_err());
        assert!(LogNormal::from_median(-3.0, 0.5).is_err());
    }

    #[test]
    fn geometric_mean() {
        let g = Geometric::new(0.25).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| g.sample(&mut r)).sum::<u64>() as f64 / n as f64;
        // mean of failures-before-success = (1-p)/p = 3
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
        assert_eq!(Geometric::new(1.0).unwrap().sample(&mut r), 0);
    }

    #[test]
    fn geometric_rejects_bad_p() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let f0 = counts[0] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        assert!((f0 - 0.25).abs() < 0.01);
        assert!((f2 - 0.75).abs() < 0.01);
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(&[]).is_err());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&[1.0, -2.0]).is_err());
        assert!(WeightedIndex::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn error_display() {
        let err = Zipf::new(0, 1.0).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("invalid distribution parameter"));
    }
}
