//! Sweep reductions: per-run summaries, Pareto frontiers and the
//! `BENCH_sweep.json` record format.
//!
//! A *sweep* runs many generated scenarios (see
//! `fed_workload::generate`) across every architecture and summarizes
//! each run into a [`RunSummary`] — fairness (Jain index over per-node
//! forwarding contribution), delivery latency (p95) and forwarding cost
//! (messages sent per delivery). This crate reduces those summaries:
//! [`pareto_frontier`] keeps the non-dominated set per architecture
//! (maximize fairness, minimize latency, minimize cost), and the
//! record constructors render frontier and aggregate rows as flat JSON
//! objects for the committed `BENCH_sweep.json` artifact that
//! `bench-diff` tracks across commits.
//!
//! Everything here is pure data over already-deterministic inputs: the
//! summaries come from virtual-world outcomes (no wall clock), so the
//! reduced artifact is byte-identical for the same sweep seed on both
//! engines at any shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One run of one generated workload on one architecture, reduced to
/// the three axes the paper trades off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Index of the generated workload in the sweep.
    pub index: u64,
    /// Jain fairness index over per-node forwarding contribution
    /// (1 = perfectly fair; higher is better).
    pub jain: f64,
    /// 95th-percentile delivery latency in milliseconds (lower is
    /// better).
    pub latency_p95_ms: f64,
    /// Messages sent per event delivered — the forwarding cost of the
    /// dissemination (lower is better).
    pub msgs_per_delivery: f64,
    /// Fraction of expected deliveries that arrived (context, not a
    /// frontier axis: lossy/partitioned workloads cap it for every
    /// architecture alike).
    pub reliability: f64,
}

impl RunSummary {
    /// `true` when `self` Pareto-dominates `other`: at least as good on
    /// every axis (fairness up, latency down, cost down) and strictly
    /// better on at least one.
    pub fn dominates(&self, other: &RunSummary) -> bool {
        let ge = self.jain >= other.jain
            && self.latency_p95_ms <= other.latency_p95_ms
            && self.msgs_per_delivery <= other.msgs_per_delivery;
        let strict = self.jain > other.jain
            || self.latency_p95_ms < other.latency_p95_ms
            || self.msgs_per_delivery < other.msgs_per_delivery;
        ge && strict
    }
}

/// The non-dominated subset of `runs`, in a deterministic order:
/// ascending latency, then ascending cost, then descending fairness,
/// then workload index.
///
/// Duplicate points (identical on all three axes) are kept once, by
/// lowest workload index — so the frontier depends only on the *set*
/// of summaries, not on their arrival order.
pub fn pareto_frontier(runs: &[RunSummary]) -> Vec<RunSummary> {
    let mut frontier: Vec<RunSummary> = Vec::new();
    for candidate in runs {
        if !candidate.jain.is_finite()
            || !candidate.latency_p95_ms.is_finite()
            || !candidate.msgs_per_delivery.is_finite()
        {
            continue;
        }
        if frontier.iter().any(|kept| {
            kept.dominates(candidate)
                || (kept.jain == candidate.jain
                    && kept.latency_p95_ms == candidate.latency_p95_ms
                    && kept.msgs_per_delivery == candidate.msgs_per_delivery
                    && kept.index <= candidate.index)
        }) {
            continue;
        }
        frontier.retain(|kept| {
            !(candidate.dominates(kept)
                || (kept.jain == candidate.jain
                    && kept.latency_p95_ms == candidate.latency_p95_ms
                    && kept.msgs_per_delivery == candidate.msgs_per_delivery
                    && candidate.index < kept.index))
        });
        frontier.push(*candidate);
    }
    frontier.sort_by(|a, b| {
        a.latency_p95_ms
            .total_cmp(&b.latency_p95_ms)
            .then(a.msgs_per_delivery.total_cmp(&b.msgs_per_delivery))
            .then(b.jain.total_cmp(&a.jain))
            .then(a.index.cmp(&b.index))
    });
    frontier
}

/// Mean of one extracted axis over a run set (0 when empty).
pub fn mean_of(runs: &[RunSummary], axis: impl Fn(&RunSummary) -> f64) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().map(axis).sum::<f64>() / runs.len() as f64
}

/// Deterministic short float rendering for artifact rows.
fn num(x: f64) -> String {
    format!("{x:.6}")
}

/// One frontier row of `BENCH_sweep.json`.
///
/// `suite`, `arch`, `sweep_seed`, `workloads` and `point` (the row's
/// position on the sorted frontier) identify the row for `bench-diff`
/// pairing; the metrics and the originating `workload_index` are
/// measurements.
pub fn frontier_record(
    suite: &str,
    arch: &str,
    sweep_seed: u64,
    workloads: u64,
    point: usize,
    p: &RunSummary,
) -> String {
    format!(
        "{{\"suite\": \"{suite}\", \"arch\": \"{arch}\", \"sweep_seed\": {sweep_seed}, \
         \"workloads\": {workloads}, \"point\": {point}, \"workload_index\": {}, \
         \"jain\": {}, \"latency_p95_ms\": {}, \"msgs_per_delivery\": {}, \
         \"reliability\": {}}}",
        p.index,
        num(p.jain),
        num(p.latency_p95_ms),
        num(p.msgs_per_delivery),
        num(p.reliability),
    )
}

/// One per-architecture aggregate row of `BENCH_sweep.json`: means over
/// *all* runs (not just the frontier) plus the frontier size, so a
/// regression anywhere in the swept space moves a tracked number even
/// when the frontier itself is unchanged.
pub fn summary_record(
    suite: &str,
    arch: &str,
    sweep_seed: u64,
    workloads: u64,
    runs: &[RunSummary],
    frontier_len: usize,
) -> String {
    format!(
        "{{\"suite\": \"{suite}\", \"arch\": \"{arch}\", \"sweep_seed\": {sweep_seed}, \
         \"workloads\": {workloads}, \"jain_mean\": {}, \"latency_p95_mean_ms\": {}, \
         \"msgs_per_delivery_mean\": {}, \"reliability_mean\": {}, \"frontier_points\": {}}}",
        num(mean_of(runs, |r| r.jain)),
        num(mean_of(runs, |r| r.latency_p95_ms)),
        num(mean_of(runs, |r| r.msgs_per_delivery)),
        num(mean_of(runs, |r| r.reliability)),
        frontier_len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(index: u64, jain: f64, lat: f64, cost: f64) -> RunSummary {
        RunSummary {
            index,
            jain,
            latency_p95_ms: lat,
            msgs_per_delivery: cost,
            reliability: 1.0,
        }
    }

    #[test]
    fn dominated_points_are_excluded() {
        let runs = [
            p(0, 0.9, 10.0, 5.0),
            p(1, 0.8, 12.0, 6.0), // dominated by 0
            p(2, 0.95, 20.0, 4.0),
        ];
        let f = pareto_frontier(&runs);
        assert_eq!(f.iter().map(|r| r.index).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn incomparable_points_all_survive() {
        // A classic trade-off chain: each is better on one axis, worse
        // on another.
        let runs = [
            p(0, 0.5, 5.0, 10.0),
            p(1, 0.7, 10.0, 8.0),
            p(2, 0.9, 20.0, 6.0),
        ];
        assert_eq!(pareto_frontier(&runs).len(), 3);
    }

    #[test]
    fn frontier_is_order_invariant() {
        let mut runs = vec![
            p(0, 0.9, 10.0, 5.0),
            p(1, 0.8, 12.0, 6.0),
            p(2, 0.95, 20.0, 4.0),
            p(3, 0.6, 9.0, 7.0),
            p(4, 0.9, 10.0, 5.0), // duplicate of 0, higher index
        ];
        let forward = pareto_frontier(&runs);
        runs.reverse();
        let backward = pareto_frontier(&runs);
        assert_eq!(forward, backward);
        // The duplicate kept is the lowest-index one.
        assert!(forward.iter().any(|r| r.index == 0));
        assert!(!forward.iter().any(|r| r.index == 4));
    }

    #[test]
    fn non_finite_summaries_are_skipped() {
        let runs = [p(0, f64::NAN, 10.0, 5.0), p(1, 0.5, 10.0, 5.0)];
        let f = pareto_frontier(&runs);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].index, 1);
    }

    #[test]
    fn records_render_flat_json() {
        let r = frontier_record("sweep", "fair-gossip", 42, 48, 0, &p(7, 0.5, 10.0, 5.0));
        assert!(r.starts_with('{') && r.ends_with('}'), "{r}");
        assert!(r.contains("\"suite\": \"sweep\""), "{r}");
        assert!(r.contains("\"point\": 0"), "{r}");
        assert!(r.contains("\"workload_index\": 7"), "{r}");
        assert!(r.contains("\"jain\": 0.500000"), "{r}");
        let s = summary_record("sweep", "broker", 42, 48, &[p(0, 0.5, 10.0, 5.0)], 3);
        assert!(s.contains("\"frontier_points\": 3"), "{s}");
        assert!(s.contains("\"latency_p95_mean_ms\": 10.000000"), "{s}");
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean_of(&[], |r| r.jain), 0.0);
    }
}
