//! Property-based tests of view and shuffle invariants.

use fed_membership::{CyclonState, PartialView, PeerSampler, ViewEntry};
use fed_sim::NodeId;
use fed_util::rng::Xoshiro256StarStar;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum ViewOp {
    Insert(u32),
    InsertAged(u32, u32),
    ReplaceOldest(u32, u32),
    Remove(u32),
    Age,
}

fn view_op() -> impl Strategy<Value = ViewOp> {
    prop_oneof![
        (0u32..64).prop_map(ViewOp::Insert),
        (0u32..64, 0u32..100).prop_map(|(id, age)| ViewOp::InsertAged(id, age)),
        (0u32..64, 0u32..100).prop_map(|(id, age)| ViewOp::ReplaceOldest(id, age)),
        (0u32..64).prop_map(ViewOp::Remove),
        Just(ViewOp::Age),
    ]
}

proptest! {
    /// Under any operation sequence a view never contains its owner, never
    /// holds duplicates and never exceeds capacity.
    #[test]
    fn view_invariants(
        owner in 0u32..64,
        capacity in 1usize..24,
        ops in prop::collection::vec(view_op(), 0..200),
    ) {
        let mut view = PartialView::new(NodeId::new(owner), capacity);
        for op in ops {
            match op {
                ViewOp::Insert(id) => {
                    view.insert(NodeId::new(id));
                }
                ViewOp::InsertAged(id, age) => {
                    view.insert_entry(ViewEntry { id: NodeId::new(id), age });
                }
                ViewOp::ReplaceOldest(id, age) => {
                    view.insert_or_replace_oldest(ViewEntry { id: NodeId::new(id), age });
                }
                ViewOp::Remove(id) => {
                    view.remove(NodeId::new(id));
                }
                ViewOp::Age => view.increment_ages(),
            }
            prop_assert!(view.len() <= capacity);
            prop_assert!(!view.contains(NodeId::new(owner)));
            let mut ids = view.ids();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicate entries");
        }
    }

    /// Cyclon shuffles preserve the invariants on both sides and never
    /// leak the owner into its own view.
    #[test]
    fn cyclon_shuffle_invariants(
        seed in any::<u64>(),
        capacity in 2usize..16,
        shuffle_len in 1usize..8,
        rounds in 1usize..40,
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut a = CyclonState::new(NodeId::new(0), capacity, shuffle_len);
        let mut b = CyclonState::new(NodeId::new(1), capacity, shuffle_len);
        a.bootstrap((1..=capacity as u32).map(NodeId::new));
        b.bootstrap((2..=capacity as u32 + 1).map(NodeId::new));
        for _ in 0..rounds {
            if let Some((q, batch)) = a.start_shuffle(&mut rng) {
                // In this two-party harness, deliver to b regardless of q
                // (the network would route it; invariants must hold anyway).
                let reply = b.handle_request(NodeId::new(0), &batch, &mut rng);
                a.handle_response(q, &reply);
            }
            for (state, owner) in [(&a, 0u32), (&b, 1u32)] {
                prop_assert!(state.view().len() <= capacity);
                prop_assert!(!state.view().contains(NodeId::new(owner)));
                let mut ids = state.view().ids();
                ids.sort_unstable();
                let before = ids.len();
                ids.dedup();
                prop_assert_eq!(ids.len(), before);
            }
        }
    }

    /// Samples drawn through the PeerSampler interface are distinct, never
    /// the owner, and always members of the view.
    #[test]
    fn cyclon_sampling_sound(
        seed in any::<u64>(),
        peers in prop::collection::btree_set(1u32..200, 1..20),
        k in 0usize..32,
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut state = CyclonState::new(NodeId::new(0), 32, 4);
        state.bootstrap(peers.iter().map(|&p| NodeId::new(p)));
        let sample = state.sample_peers(&mut rng, k);
        prop_assert!(sample.len() <= k);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sample.len());
        for p in &sample {
            prop_assert!(peers.contains(&p.as_u32()));
            prop_assert!(*p != NodeId::new(0));
        }
    }
}
