//! Property-based tests of view, shuffle and failure-detector invariants.

use fed_membership::swim::{SwimConfig, SwimState, SwimStatus, SwimUpdate};
use fed_membership::{CyclonState, PartialView, PeerSampler, ViewEntry};
use fed_sim::{NodeId, SimTime};
use fed_util::rng::Xoshiro256StarStar;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum ViewOp {
    Insert(u32),
    InsertAged(u32, u32),
    ReplaceOldest(u32, u32),
    Remove(u32),
    Age,
}

fn view_op() -> impl Strategy<Value = ViewOp> {
    prop_oneof![
        (0u32..64).prop_map(ViewOp::Insert),
        (0u32..64, 0u32..100).prop_map(|(id, age)| ViewOp::InsertAged(id, age)),
        (0u32..64, 0u32..100).prop_map(|(id, age)| ViewOp::ReplaceOldest(id, age)),
        (0u32..64).prop_map(ViewOp::Remove),
        Just(ViewOp::Age),
    ]
}

proptest! {
    /// Under any operation sequence a view never contains its owner, never
    /// holds duplicates and never exceeds capacity.
    #[test]
    fn view_invariants(
        owner in 0u32..64,
        capacity in 1usize..24,
        ops in prop::collection::vec(view_op(), 0..200),
    ) {
        let mut view = PartialView::new(NodeId::new(owner), capacity);
        for op in ops {
            match op {
                ViewOp::Insert(id) => {
                    view.insert(NodeId::new(id));
                }
                ViewOp::InsertAged(id, age) => {
                    view.insert_entry(ViewEntry { id: NodeId::new(id), age });
                }
                ViewOp::ReplaceOldest(id, age) => {
                    view.insert_or_replace_oldest(ViewEntry { id: NodeId::new(id), age });
                }
                ViewOp::Remove(id) => {
                    view.remove(NodeId::new(id));
                }
                ViewOp::Age => view.increment_ages(),
            }
            prop_assert!(view.len() <= capacity);
            prop_assert!(!view.contains(NodeId::new(owner)));
            let mut ids = view.ids();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicate entries");
        }
    }

    /// Cyclon shuffles preserve the invariants on both sides and never
    /// leak the owner into its own view.
    #[test]
    fn cyclon_shuffle_invariants(
        seed in any::<u64>(),
        capacity in 2usize..16,
        shuffle_len in 1usize..8,
        rounds in 1usize..40,
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut a = CyclonState::new(NodeId::new(0), capacity, shuffle_len);
        let mut b = CyclonState::new(NodeId::new(1), capacity, shuffle_len);
        a.bootstrap((1..=capacity as u32).map(NodeId::new));
        b.bootstrap((2..=capacity as u32 + 1).map(NodeId::new));
        for _ in 0..rounds {
            if let Some((q, batch)) = a.start_shuffle(&mut rng) {
                // In this two-party harness, deliver to b regardless of q
                // (the network would route it; invariants must hold anyway).
                let reply = b.handle_request(NodeId::new(0), &batch, &mut rng);
                a.handle_response(q, &reply);
            }
            for (state, owner) in [(&a, 0u32), (&b, 1u32)] {
                prop_assert!(state.view().len() <= capacity);
                prop_assert!(!state.view().contains(NodeId::new(owner)));
                let mut ids = state.view().ids();
                ids.sort_unstable();
                let before = ids.len();
                ids.dedup();
                prop_assert_eq!(ids.len(), before);
            }
        }
    }

    /// Samples drawn through the PeerSampler interface are distinct, never
    /// the owner, and always members of the view.
    #[test]
    fn cyclon_sampling_sound(
        seed in any::<u64>(),
        peers in prop::collection::btree_set(1u32..200, 1..20),
        k in 0usize..32,
    ) {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut state = CyclonState::new(NodeId::new(0), 32, 4);
        state.bootstrap(peers.iter().map(|&p| NodeId::new(p)));
        let sample = state.sample_peers(&mut rng, k);
        prop_assert!(sample.len() <= k);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sample.len());
        for p in &sample {
            prop_assert!(peers.contains(&p.as_u32()));
            prop_assert!(*p != NodeId::new(0));
        }
    }
}

/// One externally-driven step of a SWIM detector, phrased entirely over
/// its public API.
#[derive(Debug, Clone)]
enum SwimOp {
    /// Absorb a piggybacked claim `(from, subject, incarnation, status)`.
    Absorb(u32, u32, u64, SwimStatus),
    /// Advance one protocol period (tick at the next period boundary).
    Tick,
    /// Fire the direct-probe timeout of the in-flight probe, if any.
    ProbeTimeout,
    /// Fire the indirect timeout of the in-flight probe, if any.
    IndirectTimeout,
    /// Direct contact from a peer.
    Contact(u32),
}

fn swim_op(n: u32) -> impl Strategy<Value = SwimOp> {
    let status = prop_oneof![
        Just(SwimStatus::Alive),
        Just(SwimStatus::Suspect),
        Just(SwimStatus::Dead),
    ];
    prop_oneof![
        (0..n, 0..n, 0u64..6, status).prop_map(|(f, s, i, st)| SwimOp::Absorb(f, s, i, st)),
        Just(SwimOp::Tick),
        Just(SwimOp::ProbeTimeout),
        Just(SwimOp::IndirectTimeout),
        (0..n).prop_map(SwimOp::Contact),
    ]
}

/// Replays an op sequence against a fresh detector, returning the final
/// state (time advances one probe period per op so suspicions can
/// expire).
fn drive_swim(me: u32, n: usize, seed: u64, ops: &[SwimOp]) -> SwimState {
    let config = SwimConfig::standard();
    let period = config.probe_period;
    let mut s = SwimState::new(NodeId::new(me), n, config);
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut now = SimTime::ZERO;
    let mut probe = None;
    for op in ops {
        now += period;
        match *op {
            SwimOp::Absorb(from, subject, incarnation, status) => {
                s.absorb_piggyback(
                    now,
                    NodeId::new(from),
                    &[SwimUpdate {
                        subject: NodeId::new(subject),
                        incarnation,
                        status,
                    }],
                );
            }
            SwimOp::Tick => {
                probe = s.on_tick(now, &mut rng).probe_seq;
            }
            SwimOp::ProbeTimeout => {
                if let Some(seq) = probe {
                    let _ = s.on_probe_timeout(now, &mut rng, seq);
                }
            }
            SwimOp::IndirectTimeout => {
                if let Some(seq) = probe.take() {
                    s.on_indirect_timeout(now, seq);
                }
            }
            SwimOp::Contact(from) => s.contact(now, NodeId::new(from)),
        }
    }
    s
}

/// `true` when `state`'s view holds `j` neither suspected nor dead.
fn cleared(state: &SwimState, j: NodeId) -> bool {
    !state.is_suspect(j) && !state.is_dead(j)
}

proptest! {
    /// Liveness verdicts partition the membership: under any externally
    /// driven history a member is never simultaneously suspected and
    /// confirmed dead, the alive count is exactly the complement of the
    /// suspected-or-dead set, and a node never holds *itself* suspect or
    /// dead (self-claims are refuted by incarnation bump instead).
    #[test]
    fn swim_verdicts_partition_the_membership(
        seed in any::<u64>(),
        me in 0u32..6,
        ops in prop::collection::vec(swim_op(6), 0..120),
    ) {
        let n = 6usize;
        let s = drive_swim(me, n, seed, &ops);
        let mut alive = 0;
        for j in 0..n as u32 {
            let j = NodeId::new(j);
            prop_assert!(
                !(s.is_suspect(j) && s.is_dead(j)),
                "{j:?} both suspect and dead"
            );
            if cleared(&s, j) {
                alive += 1;
            }
        }
        prop_assert_eq!(s.alive_count(), alive);
        let me = NodeId::new(me);
        prop_assert!(cleared(&s, me), "a node never convicts itself");
    }

    /// Refutation is monotone in the incarnation number: if an `Alive`
    /// claim at incarnation `i` clears a member's suspicion/death, then
    /// so does any claim at `i' > i`; if it does not clear it, no claim
    /// at `i' < i` does either. (Checked on clones, so each candidate
    /// incarnation is applied to the same accumulated history.)
    #[test]
    fn swim_refutation_monotone_in_incarnation(
        seed in any::<u64>(),
        ops in prop::collection::vec(swim_op(6), 0..120),
        subject in 1u32..6,
        incs in prop::collection::btree_set(0u64..10, 2..6),
    ) {
        let s = drive_swim(0, 6, seed, &ops);
        let j = NodeId::new(subject);
        let from = NodeId::new(if subject == 5 { 4 } else { 5 });
        let t = SimTime::from_secs(3_600);
        let clears: Vec<(u64, bool)> = incs
            .iter()
            .map(|&incarnation| {
                let mut probe = s.clone();
                probe.absorb_piggyback(
                    t,
                    from,
                    &[SwimUpdate {
                        subject: j,
                        incarnation,
                        status: SwimStatus::Alive,
                    }],
                );
                // `absorb_piggyback` notes contact with `from`, which may
                // revive *from* but never touches `j` (j != from).
                (incarnation, cleared(&probe, j))
            })
            .collect();
        // btree_set iterates in increasing incarnation order: once an
        // incarnation clears the member, every higher one must too.
        let mut seen_clear = false;
        for (incarnation, c) in clears {
            if seen_clear {
                prop_assert!(c, "refutation not monotone: inc {incarnation} failed to clear");
            }
            seen_clear |= c;
        }
    }

    /// A confirmed death never un-confirms without evidence: only a
    /// strictly-higher-incarnation Alive claim or direct contact revives
    /// a dead member; suspicions and stale Alive claims do not.
    #[test]
    fn swim_dead_stays_dead_without_refutation(
        seed in any::<u64>(),
        dead_inc in 0u64..6,
        stale_delta in 0u64..3,
    ) {
        let mut s = drive_swim(0, 4, seed, &[]);
        let j = NodeId::new(1);
        let from = NodeId::new(2);
        let t = SimTime::from_secs(10);
        s.absorb_piggyback(t, from, &[SwimUpdate {
            subject: j,
            incarnation: dead_inc,
            status: SwimStatus::Dead,
        }]);
        prop_assert!(s.is_dead(j));
        // Suspect at any incarnation never un-deads.
        s.absorb_piggyback(t, from, &[SwimUpdate {
            subject: j,
            incarnation: dead_inc + 10,
            status: SwimStatus::Suspect,
        }]);
        prop_assert!(s.is_dead(j));
        // Alive at or below the death's incarnation is stale.
        s.absorb_piggyback(t, from, &[SwimUpdate {
            subject: j,
            incarnation: dead_inc.saturating_sub(stale_delta),
            status: SwimStatus::Alive,
        }]);
        prop_assert!(s.is_dead(j));
        // Strictly higher incarnation revives.
        s.absorb_piggyback(t, from, &[SwimUpdate {
            subject: j,
            incarnation: dead_inc + 11,
            status: SwimStatus::Alive,
        }]);
        prop_assert!(!s.is_dead(j));
    }
}
