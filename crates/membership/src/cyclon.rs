//! Cyclon-style view shuffling (Voulgaris, Gavidia, van Steen 2005).
//!
//! The paper relies on the peer-sampling literature (its refs [2, 11, 12,
//! 13, 15]) for maintaining "well distributed partial views to support
//! random communication partner selection". Cyclon is the canonical
//! representative: periodically each node swaps a few view entries with its
//! oldest neighbour, which keeps the overlay connected, keeps in-degrees
//! balanced and retires dead descriptors by age.
//!
//! [`CyclonState`] is embeddable protocol logic (the fair-gossip core and
//! baselines drive it with their own timers); [`CyclonNode`] wraps it into
//! a standalone [`fed_sim::Protocol`] for testing and measurement.

use crate::sampler::PeerSampler;
use crate::view::{PartialView, ViewEntry};
use fed_sim::{Context, NodeId, Protocol, SimDuration};
use fed_util::rng::Rng64;

/// The shuffle state machine of one node.
#[derive(Debug, Clone)]
pub struct CyclonState {
    view: PartialView,
    shuffle_len: usize,
    /// Entries sent in the currently outstanding shuffle request.
    pending: Option<(NodeId, Vec<ViewEntry>)>,
}

impl CyclonState {
    /// Creates a state with a view of `capacity` entries, exchanging
    /// `shuffle_len` entries per shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `shuffle_len == 0`.
    pub fn new(owner: NodeId, capacity: usize, shuffle_len: usize) -> Self {
        assert!(shuffle_len > 0, "shuffle length must be positive");
        CyclonState {
            view: PartialView::new(owner, capacity),
            shuffle_len: shuffle_len.min(capacity),
            pending: None,
        }
    }

    /// Seeds the view with initial contacts (typically ring successors).
    pub fn bootstrap<I: IntoIterator<Item = NodeId>>(&mut self, peers: I) {
        for p in peers {
            if self.view.is_full() {
                break;
            }
            self.view.insert(p);
        }
    }

    /// Read access to the view.
    pub fn view(&self) -> &PartialView {
        &self.view
    }

    /// The node owning this state.
    pub fn owner(&self) -> NodeId {
        self.view.owner()
    }

    /// Begins a shuffle: ages the view, removes the oldest peer `q` and
    /// returns `(q, entries-to-send)`. Returns `None` on an empty view.
    ///
    /// The sent batch always contains a fresh descriptor of the owner, plus
    /// up to `shuffle_len - 1` random other entries.
    pub fn start_shuffle<R: Rng64>(&mut self, rng: &mut R) -> Option<(NodeId, Vec<ViewEntry>)> {
        self.view.increment_ages();
        let oldest = self.view.oldest()?;
        self.view.remove(oldest.id);
        let mut batch = self.view.sample_entries(rng, self.shuffle_len - 1);
        batch.push(ViewEntry::fresh(self.owner()));
        self.pending = Some((oldest.id, batch.clone()));
        Some((oldest.id, batch))
    }

    /// Handles an incoming shuffle request from `from`; returns the entries
    /// to send back.
    pub fn handle_request<R: Rng64>(
        &mut self,
        from: NodeId,
        incoming: &[ViewEntry],
        rng: &mut R,
    ) -> Vec<ViewEntry> {
        let reply = self.view.sample_entries(rng, self.shuffle_len);
        self.merge(incoming, &reply);
        // Knowing `from` is alive is free information: keep a fresh
        // descriptor if there is room.
        self.view.insert(from);
        reply
    }

    /// Handles the response to our outstanding request.
    ///
    /// Ignores responses from peers we have no outstanding shuffle with
    /// (stale or duplicated network traffic).
    pub fn handle_response(&mut self, from: NodeId, incoming: &[ViewEntry]) {
        match self.pending.take() {
            Some((q, sent)) if q == from => {
                self.merge(incoming, &sent);
            }
            other => {
                self.pending = other; // not ours: put it back
            }
        }
    }

    /// Cyclon merge rule: insert incoming descriptors into empty slots
    /// first, then into slots occupied by entries we sent away, never
    /// duplicating and never inserting the owner.
    fn merge(&mut self, incoming: &[ViewEntry], sent: &[ViewEntry]) {
        let mut replaceable: Vec<NodeId> = sent.iter().map(|e| e.id).collect();
        for entry in incoming {
            if entry.id == self.owner() || self.view.contains(entry.id) {
                continue;
            }
            if self.view.insert_entry(*entry) {
                continue;
            }
            // View full: evict one of the entries we shipped to the peer.
            let mut inserted = false;
            while let Some(victim) = replaceable.pop() {
                if self.view.remove(victim).is_some() {
                    self.view.insert_entry(*entry);
                    inserted = true;
                    break;
                }
            }
            if !inserted {
                break; // nothing replaceable left
            }
        }
    }

    /// Drops `peer` from the view (e.g. confirmed dead).
    pub fn evict(&mut self, peer: NodeId) {
        self.view.remove(peer);
    }
}

impl PeerSampler for CyclonState {
    fn sample_peers<R: Rng64>(&mut self, rng: &mut R, k: usize) -> Vec<NodeId> {
        self.view.sample(rng, k)
    }

    fn known_peers(&self) -> Vec<NodeId> {
        self.view.ids()
    }

    fn note_peer(&mut self, peer: NodeId) {
        self.view.insert(peer);
    }

    fn note_dead(&mut self, peer: NodeId) {
        self.evict(peer);
    }
}

/// Wire messages of the standalone Cyclon protocol.
#[derive(Debug, Clone)]
pub enum CyclonMsg {
    /// Shuffle request carrying the initiator's batch.
    Request(Vec<ViewEntry>),
    /// Shuffle response carrying the acceptor's batch.
    Response(Vec<ViewEntry>),
}

/// A standalone Cyclon node for simulation (used by membership experiments
/// and as a template for embedding [`CyclonState`] in larger protocols).
#[derive(Debug, Clone)]
pub struct CyclonNode {
    /// The shuffle state (public for post-run analysis).
    pub state: CyclonState,
    period: SimDuration,
}

const SHUFFLE_TIMER: u64 = 1;

impl CyclonNode {
    /// Creates a node that shuffles every `period`, bootstrapped with its
    /// `capacity` ring successors (the conventional simulation bootstrap).
    pub fn new(
        id: NodeId,
        n: usize,
        capacity: usize,
        shuffle_len: usize,
        period: SimDuration,
    ) -> Self {
        let mut state = CyclonState::new(id, capacity, shuffle_len);
        let successors = (1..=capacity).map(|d| NodeId::new(((id.index() + d) % n) as u32));
        state.bootstrap(successors);
        CyclonNode { state, period }
    }
}

impl Protocol for CyclonNode {
    type Msg = CyclonMsg;
    type Cmd = ();

    fn on_init(&mut self, ctx: &mut Context<'_, CyclonMsg>) {
        // Desynchronize: first shuffle after a random fraction of the period.
        let jitter = ctx.rng().range_u64(self.period.as_micros().max(1));
        ctx.set_timer(SimDuration::from_micros(jitter), SHUFFLE_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, CyclonMsg>, from: NodeId, msg: CyclonMsg) {
        match msg {
            CyclonMsg::Request(batch) => {
                let reply = self.state.handle_request(from, &batch, ctx.rng());
                ctx.send(from, CyclonMsg::Response(reply));
            }
            CyclonMsg::Response(batch) => {
                self.state.handle_response(from, &batch);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, CyclonMsg>, token: u64) {
        debug_assert_eq!(token, SHUFFLE_TIMER);
        if let Some((q, batch)) = self.state.start_shuffle(ctx.rng()) {
            ctx.send(q, CyclonMsg::Request(batch));
        }
        ctx.set_timer(self.period, SHUFFLE_TIMER);
    }

    fn message_size(msg: &CyclonMsg) -> usize {
        let entries = match msg {
            CyclonMsg::Request(b) | CyclonMsg::Response(b) => b.len(),
        };
        8 + entries * 8 // header + (id, age) pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_sim::network::{LatencyModel, NetworkModel};
    use fed_sim::{SimTime, Simulation};
    use fed_util::rng::Xoshiro256StarStar;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(99)
    }

    #[test]
    fn start_shuffle_removes_oldest_and_includes_self() {
        let mut s = CyclonState::new(NodeId::new(0), 4, 3);
        s.bootstrap([NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        let mut r = rng();
        let (q, batch) = s.start_shuffle(&mut r).unwrap();
        assert!(!s.view().contains(q), "oldest removed from view");
        assert!(
            batch.iter().any(|e| e.id == NodeId::new(0) && e.age == 0),
            "fresh self descriptor included"
        );
        assert!(batch.len() <= 3);
    }

    #[test]
    fn empty_view_cannot_shuffle() {
        let mut s = CyclonState::new(NodeId::new(0), 4, 2);
        assert!(s.start_shuffle(&mut rng()).is_none());
    }

    #[test]
    fn request_reply_merges_both_sides() {
        let mut a = CyclonState::new(NodeId::new(0), 4, 2);
        a.bootstrap([NodeId::new(1)]);
        let mut b = CyclonState::new(NodeId::new(1), 4, 2);
        b.bootstrap([NodeId::new(3)]);
        let mut r = rng();
        let (q, batch) = a.start_shuffle(&mut r).unwrap();
        assert_eq!(q, NodeId::new(1), "the single view entry is the oldest");
        let reply = b.handle_request(NodeId::new(0), &batch, &mut r);
        a.handle_response(NodeId::new(1), &reply);
        // b must have learned about node 0 (the fresh self descriptor).
        assert!(b.view().contains(NodeId::new(0)));
    }

    #[test]
    fn stale_response_ignored() {
        let mut s = CyclonState::new(NodeId::new(0), 4, 2);
        s.bootstrap([NodeId::new(1)]);
        let before = s.view().clone();
        s.handle_response(NodeId::new(7), &[ViewEntry::fresh(NodeId::new(9))]);
        assert_eq!(s.view(), &before, "response without request is dropped");
    }

    #[test]
    fn merge_never_contains_self_or_duplicates() {
        let mut s = CyclonState::new(NodeId::new(0), 3, 3);
        s.bootstrap([NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        let incoming = vec![
            ViewEntry::fresh(NodeId::new(0)), // self
            ViewEntry::fresh(NodeId::new(2)), // duplicate
            ViewEntry::fresh(NodeId::new(4)),
        ];
        let sent = vec![ViewEntry::fresh(NodeId::new(3))];
        s.merge(&incoming, &sent);
        let ids = s.view().ids();
        assert!(!ids.contains(&NodeId::new(0)));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        assert!(s.view().contains(NodeId::new(4)), "replaced a sent entry");
        assert!(!s.view().contains(NodeId::new(3)), "sent entry evicted");
    }

    #[test]
    fn peer_sampler_impl() {
        let mut s = CyclonState::new(NodeId::new(0), 4, 2);
        s.bootstrap([NodeId::new(1), NodeId::new(2)]);
        let mut r = rng();
        let peers = s.sample_peers(&mut r, 2);
        assert_eq!(peers.len(), 2);
        s.note_peer(NodeId::new(3));
        assert!(s.known_peers().contains(&NodeId::new(3)));
        s.note_dead(NodeId::new(3));
        assert!(!s.known_peers().contains(&NodeId::new(3)));
    }

    /// End-to-end: after shuffling for a while the overlay stays connected
    /// and in-degrees stay balanced — the property gossip correctness
    /// depends on.
    #[test]
    fn simulated_overlay_converges() {
        let n = 64;
        let cap = 8;
        let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(20)));
        let mut sim = Simulation::new(n, net, 1234, move |id, _| {
            CyclonNode::new(id, n, cap, 4, SimDuration::from_millis(200))
        });
        sim.run_until(SimTime::from_secs(20));

        // In-degree distribution.
        let mut indeg = vec![0usize; n];
        for (_, node) in sim.nodes() {
            for peer in node.state.view().ids() {
                indeg[peer.index()] += 1;
            }
        }
        let zero_indeg = indeg.iter().filter(|&&d| d == 0).count();
        assert_eq!(zero_indeg, 0, "every node must be known by someone");
        let max = *indeg.iter().max().unwrap();
        assert!(max <= cap * 4, "in-degree {max} explodes beyond balance");

        // Weak connectivity via union of directed edges.
        let mut adj = vec![Vec::new(); n];
        for (id, node) in sim.nodes() {
            for peer in node.state.view().ids() {
                adj[id.index()].push(peer.index());
                adj[peer.index()].push(id.index());
            }
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &w in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "overlay partitioned");
    }

    /// Dead nodes are eventually forgotten (age-based eviction).
    #[test]
    fn dead_nodes_age_out() {
        let n = 32;
        let cap = 6;
        let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(10)));
        let mut sim = Simulation::new(n, net, 77, move |id, _| {
            CyclonNode::new(id, n, cap, 3, SimDuration::from_millis(100))
        });
        sim.run_until(SimTime::from_secs(2));
        // Kill a quarter of the nodes.
        for i in 0..n / 4 {
            sim.schedule_crash(sim.now(), NodeId::new(i as u32));
        }
        sim.run_until(SimTime::from_secs(40));
        let mut dead_refs = 0usize;
        let mut live_nodes = 0usize;
        for (id, node) in sim.nodes() {
            if !sim.is_alive(id) {
                continue;
            }
            live_nodes += 1;
            dead_refs += node
                .state
                .view()
                .ids()
                .iter()
                .filter(|p| !sim.is_alive(**p))
                .count();
        }
        // Cyclon replaces dead descriptors as they become the oldest; after
        // 38s (380 rounds) residual references must be rare.
        let avg = dead_refs as f64 / live_nodes as f64;
        assert!(avg < 1.0, "avg dead refs per live view = {avg}");
    }

    #[test]
    fn message_size_scales_with_batch() {
        let small = CyclonMsg::Request(vec![]);
        let big = CyclonMsg::Request(vec![ViewEntry::fresh(NodeId::new(1)); 5]);
        assert!(CyclonNode::message_size(&big) > CyclonNode::message_size(&small));
    }
}
