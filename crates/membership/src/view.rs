//! Bounded partial views.
//!
//! "It is common for unstructured approaches that each peer keeps knowledge
//! about a number of communication partners, forming its view of the
//! system" (paper §4.2). A [`PartialView`] is that bounded set: entries
//! carry an age used by shuffle protocols (Cyclon) to retire stale peers.

use fed_sim::NodeId;
use fed_util::rng::Rng64;
use std::fmt;

/// One view entry: a peer descriptor with an age counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewEntry {
    /// The peer.
    pub id: NodeId,
    /// Shuffle-rounds since this descriptor was created (0 = freshest).
    pub age: u32,
}

impl ViewEntry {
    /// Creates a fresh (age 0) entry.
    pub fn fresh(id: NodeId) -> Self {
        ViewEntry { id, age: 0 }
    }
}

impl fmt::Display for ViewEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.id, self.age)
    }
}

/// A bounded, duplicate-free set of peer descriptors excluding the owner.
///
/// # Examples
///
/// ```
/// use fed_membership::view::PartialView;
/// use fed_sim::NodeId;
///
/// let mut view = PartialView::new(NodeId::new(0), 4);
/// view.insert(NodeId::new(1));
/// view.insert(NodeId::new(1)); // duplicate ignored
/// view.insert(NodeId::new(0)); // self ignored
/// assert_eq!(view.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialView {
    owner: NodeId,
    capacity: usize,
    entries: Vec<ViewEntry>,
}

impl PartialView {
    /// Creates an empty view owned by `owner` with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        PartialView {
            owner,
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// The owner (never contained in the view).
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the view holds no peers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` when at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Whether `id` is in the view.
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Inserts a fresh entry for `id` if there is room and it is neither the
    /// owner nor already present. Returns `true` when inserted.
    pub fn insert(&mut self, id: NodeId) -> bool {
        self.insert_entry(ViewEntry::fresh(id))
    }

    /// Inserts an aged entry under the same rules as [`PartialView::insert`].
    pub fn insert_entry(&mut self, entry: ViewEntry) -> bool {
        if entry.id == self.owner || self.contains(entry.id) || self.is_full() {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// Inserts, evicting the oldest entry if full. Keeps the freshest age
    /// when the peer is already present.
    pub fn insert_or_replace_oldest(&mut self, entry: ViewEntry) {
        if entry.id == self.owner {
            return;
        }
        if let Some(existing) = self.entries.iter_mut().find(|e| e.id == entry.id) {
            existing.age = existing.age.min(entry.age);
            return;
        }
        if self.is_full() {
            if let Some(idx) = self.oldest_index() {
                self.entries.swap_remove(idx);
            }
        }
        self.entries.push(entry);
    }

    /// Removes `id`, returning its entry if present.
    pub fn remove(&mut self, id: NodeId) -> Option<ViewEntry> {
        let idx = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Increments every entry's age (one shuffle round has passed).
    pub fn increment_ages(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    fn oldest_index(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.age)
            .map(|(i, _)| i)
    }

    /// The entry with the highest age, if any.
    pub fn oldest(&self) -> Option<ViewEntry> {
        self.oldest_index().map(|i| self.entries[i])
    }

    /// All peer ids, in internal order.
    pub fn ids(&self) -> Vec<NodeId> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// All entries, in internal order.
    pub fn entries(&self) -> &[ViewEntry] {
        &self.entries
    }

    /// Samples up to `k` distinct peers uniformly from the view.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<NodeId> {
        let idx = rng.sample_indices(self.entries.len(), k);
        idx.into_iter().map(|i| self.entries[i].id).collect()
    }

    /// Samples up to `k` distinct entries uniformly from the view.
    pub fn sample_entries<R: Rng64 + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<ViewEntry> {
        let idx = rng.sample_indices(self.entries.len(), k);
        idx.into_iter().map(|i| self.entries[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_util::rng::Xoshiro256StarStar;

    fn view(cap: usize) -> PartialView {
        PartialView::new(NodeId::new(0), cap)
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = view(0);
    }

    #[test]
    fn insert_rules() {
        let mut v = view(2);
        assert!(v.insert(NodeId::new(1)));
        assert!(!v.insert(NodeId::new(1)), "duplicate");
        assert!(!v.insert(NodeId::new(0)), "self");
        assert!(v.insert(NodeId::new(2)));
        assert!(!v.insert(NodeId::new(3)), "full");
        assert_eq!(v.len(), 2);
        assert!(v.is_full());
    }

    #[test]
    fn replace_oldest_evicts() {
        let mut v = view(2);
        v.insert_entry(ViewEntry {
            id: NodeId::new(1),
            age: 5,
        });
        v.insert_entry(ViewEntry {
            id: NodeId::new(2),
            age: 1,
        });
        v.insert_or_replace_oldest(ViewEntry::fresh(NodeId::new(3)));
        assert_eq!(v.len(), 2);
        assert!(!v.contains(NodeId::new(1)), "oldest evicted");
        assert!(v.contains(NodeId::new(2)));
        assert!(v.contains(NodeId::new(3)));
    }

    #[test]
    fn replace_existing_keeps_freshest_age() {
        let mut v = view(2);
        v.insert_entry(ViewEntry {
            id: NodeId::new(1),
            age: 5,
        });
        v.insert_or_replace_oldest(ViewEntry {
            id: NodeId::new(1),
            age: 2,
        });
        assert_eq!(v.entries()[0].age, 2);
        v.insert_or_replace_oldest(ViewEntry {
            id: NodeId::new(1),
            age: 9,
        });
        assert_eq!(v.entries()[0].age, 2, "older descriptor never wins");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn replace_never_inserts_owner() {
        let mut v = view(2);
        v.insert_or_replace_oldest(ViewEntry::fresh(NodeId::new(0)));
        assert!(v.is_empty());
    }

    #[test]
    fn remove_and_ages() {
        let mut v = view(3);
        v.insert(NodeId::new(1));
        v.insert(NodeId::new(2));
        v.increment_ages();
        assert!(v.entries().iter().all(|e| e.age == 1));
        let removed = v.remove(NodeId::new(1)).unwrap();
        assert_eq!(removed.age, 1);
        assert!(v.remove(NodeId::new(9)).is_none());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn oldest_tracks_max_age() {
        let mut v = view(3);
        v.insert_entry(ViewEntry {
            id: NodeId::new(1),
            age: 3,
        });
        v.insert_entry(ViewEntry {
            id: NodeId::new(2),
            age: 7,
        });
        v.insert_entry(ViewEntry {
            id: NodeId::new(3),
            age: 5,
        });
        assert_eq!(v.oldest().unwrap().id, NodeId::new(2));
        assert_eq!(view(1).oldest(), None);
    }

    #[test]
    fn sampling_is_from_view_and_distinct() {
        let mut v = view(8);
        for i in 1..=8 {
            v.insert(NodeId::new(i));
        }
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let s = v.sample(&mut rng, 5);
        assert_eq!(s.len(), 5);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
        assert!(s.iter().all(|id| v.contains(*id)));
        // asking for more than available returns all
        assert_eq!(v.sample(&mut rng, 99).len(), 8);
        assert!(view(1).sample(&mut rng, 3).is_empty());
    }

    #[test]
    fn age_saturates() {
        let mut v = view(1);
        v.insert_entry(ViewEntry {
            id: NodeId::new(1),
            age: u32::MAX,
        });
        v.increment_ages();
        assert_eq!(v.entries()[0].age, u32::MAX);
    }

    #[test]
    fn display() {
        let e = ViewEntry {
            id: NodeId::new(3),
            age: 2,
        };
        assert_eq!(format!("{e}"), "n3@2");
    }
}
