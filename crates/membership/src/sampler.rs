//! Peer sampling abstractions.
//!
//! Gossip needs `SELECTPARTICIPANTS(F)` (paper Figure 4, line 5): pick `F`
//! communication partners. The paper notes that "a uniform random selection
//! of communication partners usually requires full knowledge of the system"
//! and cites the peer-sampling literature for partial-view alternatives.
//! [`PeerSampler`] abstracts over both:
//!
//! * [`FullMembership`] — the idealized oracle (every peer knows everyone).
//! * [`crate::cyclon::CyclonState`] — a realistic shuffling partial view.

use fed_sim::NodeId;
use fed_util::rng::Rng64;

/// A source of gossip partners.
pub trait PeerSampler {
    /// Samples up to `k` distinct peers (never the owner).
    fn sample_peers<R: Rng64>(&mut self, rng: &mut R, k: usize) -> Vec<NodeId>;

    /// All peers this sampler currently knows.
    fn known_peers(&self) -> Vec<NodeId>;

    /// Informs the sampler that `peer` exists (e.g. learned from a message).
    fn note_peer(&mut self, _peer: NodeId) {}

    /// Informs the sampler that `peer` appears dead (e.g. repeated
    /// timeouts); samplers may evict it.
    fn note_dead(&mut self, _peer: NodeId) {}
}

/// The full-knowledge oracle: samples uniformly from all `n` node ids.
///
/// This is the standard analytical assumption for push gossip; dead peers
/// are still sampled (their messages are simply lost), which matches the
/// "no failure detector" model of the paper's Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullMembership {
    owner: NodeId,
    n: usize,
}

impl FullMembership {
    /// Creates the oracle for a system of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(owner: NodeId, n: usize) -> Self {
        assert!(n > 0, "system size must be positive");
        FullMembership { owner, n }
    }

    /// System size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false` (constructor rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl PeerSampler for FullMembership {
    fn sample_peers<R: Rng64>(&mut self, rng: &mut R, k: usize) -> Vec<NodeId> {
        if self.n <= 1 {
            return Vec::new();
        }
        // Sample from 0..n-1 and skip over the owner by shifting.
        let k = k.min(self.n - 1);
        let own = self.owner.index();
        rng.sample_indices(self.n - 1, k)
            .into_iter()
            .map(|i| {
                let idx = if i >= own { i + 1 } else { i };
                NodeId::new(idx as u32)
            })
            .collect()
    }

    fn known_peers(&self) -> Vec<NodeId> {
        (0..self.n)
            .filter(|&i| i != self.owner.index())
            .map(|i| NodeId::new(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_util::rng::Xoshiro256StarStar;

    #[test]
    fn never_samples_self() {
        let mut m = FullMembership::new(NodeId::new(3), 10);
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..500 {
            let peers = m.sample_peers(&mut rng, 4);
            assert_eq!(peers.len(), 4);
            assert!(peers.iter().all(|p| *p != NodeId::new(3)));
            assert!(peers.iter().all(|p| p.index() < 10));
        }
    }

    #[test]
    fn samples_are_distinct() {
        let mut m = FullMembership::new(NodeId::new(0), 6);
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let mut peers = m.sample_peers(&mut rng, 5);
        peers.sort_unstable();
        peers.dedup();
        assert_eq!(peers.len(), 5, "all 5 other nodes, no duplicates");
    }

    #[test]
    fn k_clamped_to_population() {
        let mut m = FullMembership::new(NodeId::new(0), 4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        assert_eq!(m.sample_peers(&mut rng, 100).len(), 3);
        let mut single = FullMembership::new(NodeId::new(0), 1);
        assert!(single.sample_peers(&mut rng, 3).is_empty());
    }

    #[test]
    fn coverage_is_uniformish() {
        let mut m = FullMembership::new(NodeId::new(0), 11);
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        let mut counts = [0u32; 11];
        let trials = 20_000;
        for _ in 0..trials {
            for p in m.sample_peers(&mut rng, 1) {
                counts[p.index()] += 1;
            }
        }
        assert_eq!(counts[0], 0);
        let expect = trials as f64 / 10.0;
        for (i, &c) in counts.iter().enumerate().skip(1) {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.1, "node {i} count {c} deviates {dev}");
        }
    }

    #[test]
    fn known_peers_excludes_owner() {
        let m = FullMembership::new(NodeId::new(2), 4);
        assert_eq!(
            m.known_peers(),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );
        assert_eq!(m.len(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = FullMembership::new(NodeId::new(0), 0);
    }
}
