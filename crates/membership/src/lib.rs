//! # fed-membership
//!
//! Membership and peer sampling for gossip dissemination: bounded partial
//! views, the Cyclon shuffle protocol, and a full-membership oracle — the
//! `SELECTPARTICIPANTS(F)` of the paper's Figure 4.
//!
//! The [`PeerSampler`] trait lets dissemination protocols stay agnostic to
//! how partners are found: the idealized [`FullMembership`] oracle used in
//! gossip analysis, or the realistic [`cyclon::CyclonState`] partial view.
//!
//! Samplers draw only from the node's kernel-provided RNG stream, so
//! partner selection is deterministic per `(seed, node id)` — one of the
//! invariants that keeps the sharded runtime bit-identical to the
//! sequential engine (see `docs/ARCHITECTURE.md`). Uniformity matters
//! for fairness too: the paper's `SELECTPARTICIPANTS(F)` assumes
//! partners are picked uniformly, which is what makes expected
//! forwarding load proportional to fanout and lets the controllers
//! steer it.
//!
//! ## Examples
//!
//! ```
//! use fed_membership::{FullMembership, PeerSampler};
//! use fed_sim::NodeId;
//! use fed_util::rng::Xoshiro256StarStar;
//!
//! let mut sampler = FullMembership::new(NodeId::new(0), 100);
//! let mut rng = Xoshiro256StarStar::seed_from_u64(1);
//! let partners = sampler.sample_peers(&mut rng, 5);
//! assert_eq!(partners.len(), 5);
//! assert!(partners.iter().all(|p| *p != NodeId::new(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cyclon;
pub mod sampler;
pub mod swim;
pub mod view;

pub use cyclon::{CyclonMsg, CyclonNode, CyclonState};
pub use sampler::{FullMembership, PeerSampler};
pub use swim::{
    SwimConfig, SwimMsg, SwimObservation, SwimObservationKind, SwimState, SwimStatus, SwimTick,
    SwimUpdate,
};
pub use view::{PartialView, ViewEntry};
