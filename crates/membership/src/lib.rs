//! # fed-membership
//!
//! Membership and peer sampling for gossip dissemination: bounded partial
//! views, the Cyclon shuffle protocol, and a full-membership oracle — the
//! `SELECTPARTICIPANTS(F)` of the paper's Figure 4.
//!
//! The [`PeerSampler`] trait lets dissemination protocols stay agnostic to
//! how partners are found: the idealized [`FullMembership`] oracle used in
//! gossip analysis, or the realistic [`cyclon::CyclonState`] partial view.
//!
//! ## Examples
//!
//! ```
//! use fed_membership::{FullMembership, PeerSampler};
//! use fed_sim::NodeId;
//! use fed_util::rng::Xoshiro256StarStar;
//!
//! let mut sampler = FullMembership::new(NodeId::new(0), 100);
//! let mut rng = Xoshiro256StarStar::seed_from_u64(1);
//! let partners = sampler.sample_peers(&mut rng, 5);
//! assert_eq!(partners.len(), 5);
//! assert!(partners.iter().all(|p| *p != NodeId::new(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cyclon;
pub mod sampler;
pub mod view;

pub use cyclon::{CyclonMsg, CyclonNode, CyclonState};
pub use sampler::{FullMembership, PeerSampler};
pub use view::{PartialView, ViewEntry};
