//! SWIM-style failure detection as a pure deterministic state machine.
//!
//! The classic SWIM protocol (Das, Gupta, Motivala 2002): every protocol
//! period a member probes one peer (`Ping`); on a missing ack it asks `k`
//! other members to probe indirectly (`PingReq`); a peer that stays silent
//! is marked **suspect**, disseminated as such, and **confirmed** dead when
//! the suspicion times out — unless the accused refutes with a higher
//! *incarnation number*. Membership updates ride piggybacked on all probe
//! traffic (and, in this workspace, on gossip pushes), each update
//! retransmitted a logarithmic number of times via a dissemination counter.
//!
//! [`SwimState`] contains no I/O and no timers of its own: a host protocol
//! (see `fed_core::gossip::GossipNode`) feeds it ticks, timeouts and
//! messages, and forwards the `(destination, message)` pairs it returns.
//! All randomness comes through the caller's [`Rng64`] stream, so the
//! detector inherits the engine's determinism: given the same seed it
//! observes bit-identical histories on the sequential and sharded engines,
//! across shard counts, placements and window policies.
//!
//! Detection history is recorded as [`SwimObservation`]s — the raw
//! material for detection-latency and false-suspicion telemetry.

use fed_sim::{NodeId, SimDuration, SimTime};
use fed_util::rng::Rng64;

/// Configuration of a SWIM failure detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwimConfig {
    /// Protocol period: one direct probe is issued per period.
    pub probe_period: SimDuration,
    /// How long to wait for a direct ack before falling back to
    /// indirect probing.
    pub probe_timeout: SimDuration,
    /// How many members relay an indirect probe (`k` in the paper).
    pub ping_req_fanout: usize,
    /// How long a member stays suspected before it is confirmed dead.
    pub suspect_timeout: SimDuration,
    /// Maximum membership updates piggybacked per message.
    pub max_piggyback: usize,
    /// An update is retransmitted `gossip_multiplier * ceil(log2 n)`
    /// times before leaving the dissemination queue.
    pub gossip_multiplier: u32,
}

impl SwimConfig {
    /// Defaults tuned for the workspace's simulated WAN (10 ms links,
    /// multi-second scenario horizons).
    pub fn standard() -> Self {
        SwimConfig {
            probe_period: SimDuration::from_millis(500),
            probe_timeout: SimDuration::from_millis(120),
            ping_req_fanout: 3,
            suspect_timeout: SimDuration::from_millis(2000),
            max_piggyback: 8,
            gossip_multiplier: 3,
        }
    }
}

/// Liveness verdict carried by a membership update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SwimStatus {
    /// The subject is believed alive.
    Alive,
    /// The subject is suspected dead.
    Suspect,
    /// The subject is confirmed dead.
    Dead,
}

/// One piggybacked membership update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwimUpdate {
    /// Whom the update is about.
    pub subject: NodeId,
    /// The subject's incarnation number the claim refers to.
    pub incarnation: u64,
    /// The claimed status.
    pub status: SwimStatus,
}

/// Wire bytes of one [`SwimUpdate`]: subject (4) + incarnation (8) +
/// status tag (1).
pub const SWIM_UPDATE_BYTES: usize = 13;

/// SWIM wire messages. Probes carry a sequence number so stale timeout
/// timers can be recognized, plus piggybacked updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwimMsg {
    /// Direct or relayed probe; the ack goes to `reply_to` (the original
    /// prober for relayed probes).
    Ping {
        /// Probe sequence number of the originating prober.
        seq: u64,
        /// Where the ack must be sent.
        reply_to: NodeId,
        /// Piggybacked membership updates.
        updates: Vec<SwimUpdate>,
    },
    /// Request to probe `target` on the sender's behalf.
    PingReq {
        /// Probe sequence number of the originating prober.
        seq: u64,
        /// The silent member to probe.
        target: NodeId,
        /// Piggybacked membership updates.
        updates: Vec<SwimUpdate>,
    },
    /// Acknowledgement of a probe.
    Ack {
        /// The probe's sequence number.
        seq: u64,
        /// Piggybacked membership updates.
        updates: Vec<SwimUpdate>,
    },
}

impl SwimMsg {
    /// Abstract wire size in bytes (header + piggyback).
    pub fn wire_size(&self) -> usize {
        let updates = match self {
            SwimMsg::Ping { updates, .. }
            | SwimMsg::PingReq { updates, .. }
            | SwimMsg::Ack { updates, .. } => updates.len(),
        };
        16 + updates * SWIM_UPDATE_BYTES
    }
}

/// What a detector observed about a peer, with its timestamp — the raw
/// series behind detection-latency and false-suspicion telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwimObservation {
    /// When the observation was made (virtual time).
    pub at: SimTime,
    /// Whom it concerns.
    pub subject: NodeId,
    /// What was observed.
    pub kind: SwimObservationKind,
}

/// Kinds of detector observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwimObservationKind {
    /// The subject became suspected (locally or via dissemination).
    Suspect,
    /// The subject was confirmed dead.
    Confirm,
    /// A suspicion/death claim about the subject was refuted (the member
    /// came back alive in this detector's view).
    Refute,
    /// This node refuted a claim about *itself* by bumping its
    /// incarnation.
    SelfRefute,
}

/// Per-member bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemberState {
    Alive,
    Suspect { since: SimTime },
    Dead,
}

#[derive(Debug, Clone)]
struct Member {
    state: MemberState,
    incarnation: u64,
}

/// A queued update with its dissemination counter.
#[derive(Debug, Clone)]
struct Queued {
    update: SwimUpdate,
    sends: u32,
}

/// The in-flight probe of the current protocol period.
#[derive(Debug, Clone, Copy)]
struct Pending {
    target: NodeId,
    seq: u64,
}

/// Result of a protocol tick: messages to send, and the probe sequence
/// number (if a probe was issued) for which the host must arm the direct
/// timeout timer.
#[derive(Debug, Default)]
pub struct SwimTick {
    /// `(destination, message)` pairs to send.
    pub msgs: Vec<(NodeId, SwimMsg)>,
    /// Sequence number of the probe issued this tick, if any.
    pub probe_seq: Option<u64>,
}

/// The deterministic SWIM detector state of one node.
#[derive(Debug, Clone)]
pub struct SwimState {
    id: NodeId,
    config: SwimConfig,
    members: Vec<Member>,
    my_incarnation: u64,
    queue: Vec<Queued>,
    next_seq: u64,
    pending: Option<Pending>,
    observations: Vec<SwimObservation>,
    gossip_limit: u32,
}

impl SwimState {
    /// Creates a detector for a system of `n` nodes; everyone starts
    /// alive at incarnation 0.
    pub fn new(id: NodeId, n: usize, config: SwimConfig) -> Self {
        let gossip_limit = {
            let log2 = usize::BITS - n.max(2).leading_zeros();
            config.gossip_multiplier.max(1) * log2
        };
        SwimState {
            id,
            config,
            members: vec![
                Member {
                    state: MemberState::Alive,
                    incarnation: 0,
                };
                n
            ],
            my_incarnation: 0,
            queue: Vec::new(),
            next_seq: 0,
            pending: None,
            observations: Vec::new(),
            gossip_limit,
        }
    }

    /// The full observation log, in observation order.
    pub fn observations(&self) -> &[SwimObservation] {
        &self.observations
    }

    /// This node's current incarnation number.
    pub fn incarnation(&self) -> u64 {
        self.my_incarnation
    }

    /// Number of members currently considered alive (including self).
    pub fn alive_count(&self) -> usize {
        self.members
            .iter()
            .filter(|m| matches!(m.state, MemberState::Alive))
            .count()
    }

    /// `true` when `node` is confirmed dead in this view.
    pub fn is_dead(&self, node: NodeId) -> bool {
        matches!(self.members[node.index()].state, MemberState::Dead)
    }

    /// `true` when `node` is currently suspected in this view.
    pub fn is_suspect(&self, node: NodeId) -> bool {
        matches!(
            self.members[node.index()].state,
            MemberState::Suspect { .. }
        )
    }

    fn record(&mut self, at: SimTime, subject: NodeId, kind: SwimObservationKind) {
        self.observations
            .push(SwimObservation { at, subject, kind });
    }

    /// Queues `update` for dissemination, replacing any queued update
    /// about the same subject (latest claim wins, counter resets).
    fn enqueue(&mut self, update: SwimUpdate) {
        if let Some(q) = self
            .queue
            .iter_mut()
            .find(|q| q.update.subject == update.subject)
        {
            q.update = update;
            q.sends = 0;
        } else {
            self.queue.push(Queued { update, sends: 0 });
        }
    }

    /// Selects up to `max_piggyback` updates, preferring the least-sent
    /// (ties broken by subject id), incrementing their counters and
    /// retiring exhausted entries. Deterministic by construction.
    fn take_piggyback(&mut self) -> Vec<SwimUpdate> {
        let k = self.config.max_piggyback.min(self.queue.len());
        if k == 0 {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..self.queue.len()).collect();
        order.sort_by_key(|&i| (self.queue[i].sends, self.queue[i].update.subject));
        order.truncate(k);
        let mut out = Vec::with_capacity(k);
        for &i in &order {
            out.push(self.queue[i].update);
            self.queue[i].sends += 1;
        }
        let limit = self.gossip_limit;
        self.queue.retain(|q| q.sends < limit);
        out.sort_by_key(|u| u.subject);
        out
    }

    /// Applies one membership claim, returning `true` when it changed the
    /// local view (and was therefore re-queued for dissemination).
    fn apply(&mut self, now: SimTime, update: SwimUpdate) -> bool {
        let SwimUpdate {
            subject,
            incarnation,
            status,
        } = update;
        if subject == self.id {
            match status {
                SwimStatus::Alive => {
                    if incarnation > self.my_incarnation {
                        self.my_incarnation = incarnation;
                    }
                    return false;
                }
                SwimStatus::Suspect | SwimStatus::Dead => {
                    // Refute: adopt a strictly higher incarnation and
                    // broadcast it. (A live node never accepts its own
                    // death; rejoining nodes converge via the
                    // contact-revival rule below.)
                    if incarnation >= self.my_incarnation {
                        self.my_incarnation = incarnation + 1;
                        self.record(now, self.id, SwimObservationKind::SelfRefute);
                        self.enqueue(SwimUpdate {
                            subject: self.id,
                            incarnation: self.my_incarnation,
                            status: SwimStatus::Alive,
                        });
                        return true;
                    }
                    return false;
                }
            }
        }
        let member = &mut self.members[subject.index()];
        let accepted = match (status, member.state) {
            // Alive refutes suspicion and revives the dead only with a
            // strictly greater incarnation; at the same incarnation
            // suspicion wins (standard SWIM precedence).
            (SwimStatus::Alive, _) => incarnation > member.incarnation,
            // Suspicion outranks Alive at equal incarnation; it never
            // un-deads.
            (SwimStatus::Suspect, MemberState::Alive) => incarnation >= member.incarnation,
            (SwimStatus::Suspect, MemberState::Suspect { .. }) => incarnation > member.incarnation,
            (SwimStatus::Suspect, MemberState::Dead) => false,
            // Death is accepted for any non-dead member unless the member
            // already refuted with a higher incarnation.
            (SwimStatus::Dead, MemberState::Dead) => false,
            (SwimStatus::Dead, _) => incarnation >= member.incarnation,
        };
        if !accepted {
            return false;
        }
        let was = member.state;
        member.incarnation = incarnation;
        member.state = match status {
            SwimStatus::Alive => MemberState::Alive,
            SwimStatus::Suspect => MemberState::Suspect { since: now },
            SwimStatus::Dead => MemberState::Dead,
        };
        match (was, status) {
            (_, SwimStatus::Suspect) => self.record(now, subject, SwimObservationKind::Suspect),
            (_, SwimStatus::Dead) => self.record(now, subject, SwimObservationKind::Confirm),
            (MemberState::Suspect { .. } | MemberState::Dead, SwimStatus::Alive) => {
                self.record(now, subject, SwimObservationKind::Refute)
            }
            (MemberState::Alive, SwimStatus::Alive) => {}
        }
        self.enqueue(update);
        true
    }

    /// Applies a batch of piggybacked updates.
    fn absorb(&mut self, now: SimTime, updates: &[SwimUpdate]) {
        for u in updates {
            self.apply(now, *u);
        }
    }

    /// Notes direct contact with `from` (any received message): a member
    /// we hold dead that demonstrably speaks is revived with a bumped
    /// incarnation, so rejoined nodes converge back into the view.
    pub fn contact(&mut self, now: SimTime, from: NodeId) {
        if from == self.id || from.index() >= self.members.len() {
            return;
        }
        if self.is_dead(from) {
            let inc = self.members[from.index()].incarnation + 1;
            self.apply(
                now,
                SwimUpdate {
                    subject: from,
                    incarnation: inc,
                    status: SwimStatus::Alive,
                },
            );
        }
    }

    /// One protocol period: expire overdue suspicions, then issue one
    /// direct probe to a non-dead peer chosen uniformly at random.
    pub fn on_tick<R: Rng64>(&mut self, now: SimTime, rng: &mut R) -> SwimTick {
        // 1. Confirm suspicions that outlived the suspect timeout.
        let timeout = self.config.suspect_timeout;
        let expired: Vec<(NodeId, u64)> = self
            .members
            .iter()
            .enumerate()
            .filter_map(|(i, m)| match m.state {
                MemberState::Suspect { since } if now >= since + timeout => {
                    Some((NodeId::new(i as u32), m.incarnation))
                }
                _ => None,
            })
            .collect();
        for (subject, incarnation) in expired {
            self.apply(
                now,
                SwimUpdate {
                    subject,
                    incarnation,
                    status: SwimStatus::Dead,
                },
            );
        }
        // 2. A probe that never resolved is abandoned (its timers were
        // stale or the host skipped them); the new period starts clean.
        self.pending = None;
        // 3. Probe one live-or-suspect peer.
        let candidates: Vec<NodeId> = self
            .members
            .iter()
            .enumerate()
            .filter(|&(i, m)| i != self.id.index() && !matches!(m.state, MemberState::Dead))
            .map(|(i, _)| NodeId::new(i as u32))
            .collect();
        let mut tick = SwimTick::default();
        if candidates.is_empty() {
            return tick;
        }
        let target = candidates[rng.range_usize(candidates.len())];
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending = Some(Pending { target, seq });
        let updates = self.take_piggyback();
        tick.msgs.push((
            target,
            SwimMsg::Ping {
                seq,
                reply_to: self.id,
                updates,
            },
        ));
        tick.probe_seq = Some(seq);
        tick
    }

    /// The direct-probe timeout for `seq` fired without an ack: fan out
    /// `PingReq`s to `k` other members. Returns the relays to send;
    /// empty when the probe already resolved (stale timer) — in which
    /// case the host must not arm the indirect timeout.
    pub fn on_probe_timeout<R: Rng64>(
        &mut self,
        _now: SimTime,
        rng: &mut R,
        seq: u64,
    ) -> Vec<(NodeId, SwimMsg)> {
        let Some(p) = self.pending else {
            return Vec::new();
        };
        if p.seq != seq {
            return Vec::new();
        }
        let relays: Vec<NodeId> = self
            .members
            .iter()
            .enumerate()
            .filter(|&(i, m)| {
                i != self.id.index()
                    && i != p.target.index()
                    && matches!(m.state, MemberState::Alive)
            })
            .map(|(i, _)| NodeId::new(i as u32))
            .collect();
        let k = self.config.ping_req_fanout.min(relays.len());
        let mut msgs = Vec::with_capacity(k.max(1));
        for idx in rng.sample_indices(relays.len(), k) {
            let updates = self.take_piggyback();
            msgs.push((
                relays[idx],
                SwimMsg::PingReq {
                    seq,
                    target: p.target,
                    updates,
                },
            ));
        }
        if msgs.is_empty() {
            // Nobody to relay through: the indirect phase is vacuous, but
            // the host still arms the indirect timeout, which will declare
            // the suspicion.
            msgs.push((
                p.target,
                SwimMsg::Ping {
                    seq,
                    reply_to: self.id,
                    updates: self.take_piggyback(),
                },
            ));
        }
        msgs
    }

    /// The indirect timeout for `seq` fired without any ack: suspect the
    /// probe target.
    pub fn on_indirect_timeout(&mut self, now: SimTime, seq: u64) {
        let Some(p) = self.pending else {
            return;
        };
        if p.seq != seq {
            return;
        }
        self.pending = None;
        let incarnation = self.members[p.target.index()].incarnation;
        self.apply(
            now,
            SwimUpdate {
                subject: p.target,
                incarnation,
                status: SwimStatus::Suspect,
            },
        );
    }

    /// Handles one SWIM message; returns replies/relays to send.
    pub fn on_message(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: SwimMsg,
    ) -> Vec<(NodeId, SwimMsg)> {
        self.contact(now, from);
        match msg {
            SwimMsg::Ping {
                seq,
                reply_to,
                updates,
            } => {
                self.absorb(now, &updates);
                let piggy = self.take_piggyback();
                vec![(
                    reply_to,
                    SwimMsg::Ack {
                        seq,
                        updates: piggy,
                    },
                )]
            }
            SwimMsg::PingReq {
                seq,
                target,
                updates,
            } => {
                self.absorb(now, &updates);
                let piggy = self.take_piggyback();
                // Relay the probe; the target acks the original prober
                // directly.
                vec![(
                    target,
                    SwimMsg::Ping {
                        seq,
                        reply_to: from,
                        updates: piggy,
                    },
                )]
            }
            SwimMsg::Ack { seq, updates } => {
                self.absorb(now, &updates);
                if let Some(p) = self.pending {
                    if p.seq == seq {
                        self.pending = None;
                    }
                }
                Vec::new()
            }
        }
    }

    /// Absorbs updates piggybacked on non-SWIM traffic (gossip pushes)
    /// and returns the updates to piggyback on an outgoing message.
    pub fn absorb_piggyback(&mut self, now: SimTime, from: NodeId, updates: &[SwimUpdate]) {
        self.contact(now, from);
        self.absorb(now, updates);
    }

    /// Updates to attach to an outgoing gossip message.
    pub fn outgoing_piggyback(&mut self) -> Vec<SwimUpdate> {
        self.take_piggyback()
    }
}

/// A [`PeerSampler`] filter is intentionally *not* implemented here: the
/// gossip layer keeps its own sampler so that enabling the detector does
/// not perturb partner selection (and therefore dissemination parity)
/// relative to detector-off runs of the same seed.
#[cfg(test)]
mod tests {
    use super::*;
    use fed_util::rng::Xoshiro256StarStar;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn cfg() -> SwimConfig {
        SwimConfig::standard()
    }

    #[test]
    fn tick_probes_one_peer_and_times_out_to_suspicion() {
        let mut s = SwimState::new(NodeId::new(0), 4, cfg());
        let mut r = rng(1);
        let t0 = SimTime::from_millis(100);
        let tick = s.on_tick(t0, &mut r);
        assert_eq!(tick.msgs.len(), 1);
        let seq = tick.probe_seq.unwrap();
        let (target, msg) = &tick.msgs[0];
        assert!(matches!(msg, SwimMsg::Ping { .. }));
        // No ack: direct timeout fans out ping-reqs.
        let relays = s.on_probe_timeout(t0 + SimDuration::from_millis(120), &mut r, seq);
        assert_eq!(relays.len(), 2, "k=3 clamped to the 2 other members");
        assert!(relays
            .iter()
            .all(|(to, m)| *to != *target && matches!(m, SwimMsg::PingReq { .. })));
        // Still no ack: indirect timeout suspects the target.
        s.on_indirect_timeout(t0 + SimDuration::from_millis(400), seq);
        assert!(s.is_suspect(*target));
        assert_eq!(s.observations().len(), 1);
        assert_eq!(s.observations()[0].kind, SwimObservationKind::Suspect);
    }

    #[test]
    fn ack_cancels_the_probe() {
        let mut s = SwimState::new(NodeId::new(0), 4, cfg());
        let mut r = rng(2);
        let t0 = SimTime::from_millis(100);
        let tick = s.on_tick(t0, &mut r);
        let seq = tick.probe_seq.unwrap();
        let target = tick.msgs[0].0;
        let _ = s.on_message(
            t0 + SimDuration::from_millis(20),
            target,
            SwimMsg::Ack {
                seq,
                updates: vec![],
            },
        );
        // Both timeouts are now stale no-ops.
        assert!(s
            .on_probe_timeout(t0 + SimDuration::from_millis(120), &mut r, seq)
            .is_empty());
        s.on_indirect_timeout(t0 + SimDuration::from_millis(400), seq);
        assert!(!s.is_suspect(target));
        assert!(s.observations().is_empty());
    }

    #[test]
    fn ping_is_acked_to_reply_to() {
        let mut s = SwimState::new(NodeId::new(2), 4, cfg());
        let out = s.on_message(
            SimTime::from_millis(5),
            NodeId::new(3),
            SwimMsg::Ping {
                seq: 7,
                reply_to: NodeId::new(1),
                updates: vec![],
            },
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId::new(1));
        assert!(matches!(out[0].1, SwimMsg::Ack { seq: 7, .. }));
    }

    #[test]
    fn ping_req_relays_to_target() {
        let mut s = SwimState::new(NodeId::new(2), 4, cfg());
        let out = s.on_message(
            SimTime::from_millis(5),
            NodeId::new(0),
            SwimMsg::PingReq {
                seq: 9,
                target: NodeId::new(3),
                updates: vec![],
            },
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId::new(3));
        match &out[0].1 {
            SwimMsg::Ping { seq, reply_to, .. } => {
                assert_eq!(*seq, 9);
                assert_eq!(*reply_to, NodeId::new(0), "ack goes to the origin");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn suspicion_expires_to_confirm_on_tick() {
        let mut s = SwimState::new(NodeId::new(0), 3, cfg());
        let t0 = SimTime::from_secs(1);
        s.apply(
            t0,
            SwimUpdate {
                subject: NodeId::new(1),
                incarnation: 0,
                status: SwimStatus::Suspect,
            },
        );
        let mut r = rng(3);
        // Before the timeout: still suspect.
        let _ = s.on_tick(t0 + SimDuration::from_millis(1000), &mut r);
        assert!(s.is_suspect(NodeId::new(1)));
        // After: confirmed dead.
        let _ = s.on_tick(t0 + SimDuration::from_millis(2000), &mut r);
        assert!(s.is_dead(NodeId::new(1)));
        let kinds: Vec<_> = s.observations().iter().map(|o| o.kind).collect();
        assert_eq!(
            kinds,
            vec![SwimObservationKind::Suspect, SwimObservationKind::Confirm]
        );
    }

    #[test]
    fn refutation_is_monotone_in_incarnation() {
        let mut s = SwimState::new(NodeId::new(0), 3, cfg());
        let t = SimTime::from_secs(1);
        let j = NodeId::new(1);
        assert!(s.apply(
            t,
            SwimUpdate {
                subject: j,
                incarnation: 0,
                status: SwimStatus::Suspect
            }
        ));
        // Alive at the same incarnation does NOT clear suspicion.
        assert!(!s.apply(
            t,
            SwimUpdate {
                subject: j,
                incarnation: 0,
                status: SwimStatus::Alive
            }
        ));
        assert!(s.is_suspect(j));
        // Alive at a strictly higher incarnation refutes.
        assert!(s.apply(
            t,
            SwimUpdate {
                subject: j,
                incarnation: 1,
                status: SwimStatus::Alive
            }
        ));
        assert!(!s.is_suspect(j) && !s.is_dead(j));
        // A stale suspicion (lower incarnation) no longer applies.
        assert!(!s.apply(
            t,
            SwimUpdate {
                subject: j,
                incarnation: 0,
                status: SwimStatus::Suspect
            }
        ));
        assert!(!s.is_suspect(j));
    }

    #[test]
    fn self_suspicion_triggers_refutation() {
        let me = NodeId::new(2);
        let mut s = SwimState::new(me, 4, cfg());
        assert_eq!(s.incarnation(), 0);
        s.absorb(
            SimTime::from_secs(1),
            &[SwimUpdate {
                subject: me,
                incarnation: 0,
                status: SwimStatus::Suspect,
            }],
        );
        assert_eq!(s.incarnation(), 1, "incarnation bumped past the claim");
        // The refutation is queued for dissemination.
        let piggy = s.outgoing_piggyback();
        assert!(piggy.contains(&SwimUpdate {
            subject: me,
            incarnation: 1,
            status: SwimStatus::Alive
        }));
        assert_eq!(s.observations()[0].kind, SwimObservationKind::SelfRefute);
    }

    #[test]
    fn contact_revives_a_dead_member() {
        let mut s = SwimState::new(NodeId::new(0), 3, cfg());
        let j = NodeId::new(1);
        let t = SimTime::from_secs(2);
        s.apply(
            t,
            SwimUpdate {
                subject: j,
                incarnation: 5,
                status: SwimStatus::Dead,
            },
        );
        assert!(s.is_dead(j));
        let _ = s.on_message(
            t + SimDuration::from_secs(1),
            j,
            SwimMsg::Ack {
                seq: 99,
                updates: vec![],
            },
        );
        assert!(!s.is_dead(j), "a speaking member cannot stay dead");
        let last = s.observations().last().unwrap();
        assert_eq!(last.kind, SwimObservationKind::Refute);
    }

    #[test]
    fn piggyback_counters_retire_updates() {
        let mut s = SwimState::new(NodeId::new(0), 4, cfg());
        s.apply(
            SimTime::from_secs(1),
            SwimUpdate {
                subject: NodeId::new(1),
                incarnation: 0,
                status: SwimStatus::Suspect,
            },
        );
        // gossip_limit for n=4 is multiplier * (bit width of 4) = 3*3 = 9.
        let mut seen = 0;
        for _ in 0..9 {
            let p = s.take_piggyback();
            assert_eq!(p.len(), 1);
            seen += 1;
        }
        assert!(s.take_piggyback().is_empty(), "retired after {seen} sends");
    }

    #[test]
    fn deterministic_given_identical_inputs() {
        let run = || {
            let mut s = SwimState::new(NodeId::new(0), 16, cfg());
            let mut r = rng(77);
            let mut log = Vec::new();
            for step in 0..50u64 {
                let now = SimTime::from_millis(500 * (step + 1));
                let tick = s.on_tick(now, &mut r);
                for (to, msg) in &tick.msgs {
                    log.push(format!("{to:?}{msg:?}"));
                }
                if let Some(seq) = tick.probe_seq {
                    if step % 3 == 0 {
                        let relays =
                            s.on_probe_timeout(now + SimDuration::from_millis(120), &mut r, seq);
                        for (to, msg) in &relays {
                            log.push(format!("{to:?}{msg:?}"));
                        }
                        s.on_indirect_timeout(now + SimDuration::from_millis(400), seq);
                    }
                }
            }
            (log, s.observations().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wire_size_counts_updates() {
        let m = SwimMsg::Ack {
            seq: 1,
            updates: vec![
                SwimUpdate {
                    subject: NodeId::new(1),
                    incarnation: 0,
                    status: SwimStatus::Alive,
                };
                3
            ],
        };
        assert_eq!(m.wire_size(), 16 + 3 * SWIM_UPDATE_BYTES);
    }
}
