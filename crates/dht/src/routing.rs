//! Pastry-style routing state: prefix routing table plus leaf set.
//!
//! Routing tables here are built offline from global knowledge rather than
//! through Pastry's join protocol — the Scribe fairness baseline only needs
//! the *structure* of the routes (who forwards for whom), not the join
//! dynamics. This substitution is recorded in DESIGN.md.

use crate::id::{DhtId, DIGIT_BASE, NUM_DIGITS};
use std::fmt;

/// Identifies a node by dense index together with its ring id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhtNode {
    /// Dense node index (matches `fed_sim::NodeId`).
    pub index: usize,
    /// Ring position.
    pub id: DhtId,
}

/// Per-node Pastry routing state.
#[derive(Debug, Clone)]
pub struct RoutingState {
    me: DhtNode,
    /// `table[row][col]`: a node whose id shares `row` digits with ours and
    /// has digit `col` at position `row`.
    table: Vec<Vec<Option<DhtNode>>>,
    /// The `l` nodes numerically closest to us on the ring (excluding us).
    leaf_set: Vec<DhtNode>,
}

impl RoutingState {
    /// Builds routing state for `me` from the complete node list.
    ///
    /// Deterministic: among equally valid candidates for a table slot the
    /// numerically closest id wins.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not contained in `all`.
    pub fn build(me: DhtNode, all: &[DhtNode], leaf_size: usize) -> Self {
        assert!(
            all.iter().any(|n| n.index == me.index),
            "node must be part of the system"
        );
        let mut table: Vec<Vec<Option<DhtNode>>> = vec![vec![None; DIGIT_BASE]; NUM_DIGITS];
        for &node in all {
            if node.index == me.index {
                continue;
            }
            let row = me.id.shared_prefix_len(node.id);
            if row >= NUM_DIGITS {
                continue; // duplicate id (hash collision): unusable for prefix routing
            }
            let col = node.id.digit(row);
            let slot = &mut table[row][col];
            let better = match slot {
                None => true,
                Some(existing) => node.id.ring_distance(me.id) < existing.id.ring_distance(me.id),
            };
            if better {
                *slot = Some(node);
            }
        }
        // Two-sided leaf set (as in Pastry): the leaf_size/2 nearest ring
        // successors and the leaf_size/2 nearest predecessors. Having both
        // immediate neighbours guarantees greedy routing converges to the
        // globally closest node.
        let half = (leaf_size / 2).max(1);
        let mut by_cw: Vec<DhtNode> = all
            .iter()
            .copied()
            .filter(|n| n.index != me.index)
            .collect();
        by_cw.sort_by_key(|n| n.id.as_u64().wrapping_sub(me.id.as_u64()));
        let successors: Vec<DhtNode> = by_cw.iter().copied().take(half).collect();
        let predecessors: Vec<DhtNode> = by_cw.iter().rev().copied().take(half).collect();
        let mut leaf_set = successors;
        for p in predecessors {
            if !leaf_set.iter().any(|n| n.index == p.index) {
                leaf_set.push(p);
            }
        }
        RoutingState {
            me,
            table,
            leaf_set,
        }
    }

    /// Assembles a routing state from precomputed parts — used by the
    /// bulk builder in [`crate::network`], which derives the identical
    /// table and leaf set from one shared ring-sorted index instead of
    /// rescanning the full node list per node.
    pub(crate) fn from_parts(
        me: DhtNode,
        table: Vec<Vec<Option<DhtNode>>>,
        leaf_set: Vec<DhtNode>,
    ) -> Self {
        RoutingState {
            me,
            table,
            leaf_set,
        }
    }

    /// This node.
    pub fn me(&self) -> DhtNode {
        self.me
    }

    /// The leaf set (numerically closest peers).
    pub fn leaf_set(&self) -> &[DhtNode] {
        &self.leaf_set
    }

    /// The routing-table entry at `(row, col)`.
    pub fn table_entry(&self, row: usize, col: usize) -> Option<DhtNode> {
        self.table
            .get(row)
            .and_then(|r| r.get(col))
            .copied()
            .flatten()
    }

    /// Chooses the next hop toward `key`, or `None` when this node is
    /// closer to `key` than every node it knows (i.e. it is the root).
    ///
    /// Greedy on ring distance over the union of routing-table entries and
    /// the leaf set. The prefix table provides the `O(log n)` long jumps;
    /// the two-sided leaf set (which always contains the immediate ring
    /// successor and predecessor) guarantees the greedy walk terminates at
    /// the globally closest node. Ring distance strictly decreases per hop,
    /// so routes are loop-free.
    pub fn next_hop(&self, key: DhtId) -> Option<DhtNode> {
        let my_dist = self.me.id.ring_distance(key);
        if my_dist == 0 {
            return None;
        }
        // Prefer the prefix-table entry when it makes distance progress —
        // this preserves Pastry's logarithmic hop count.
        let row = self.me.id.shared_prefix_len(key);
        if row < NUM_DIGITS {
            let col = key.digit(row);
            if let Some(node) = self.table[row][col] {
                if node.id.ring_distance(key) < my_dist {
                    return Some(node);
                }
            }
        }
        // Otherwise: best known node strictly closer to the key.
        self.table
            .iter()
            .flatten()
            .flatten()
            .chain(self.leaf_set.iter())
            .copied()
            .filter(|n| n.id.ring_distance(key) < my_dist)
            .min_by_key(|n| (n.id.ring_distance(key), n.id))
    }
}

impl fmt::Display for RoutingState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let filled: usize = self
            .table
            .iter()
            .map(|row| row.iter().filter(|s| s.is_some()).count())
            .sum();
        write!(
            f,
            "routing(me={}, table_entries={}, leafs={})",
            self.me.id,
            filled,
            self.leaf_set.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: usize) -> Vec<DhtNode> {
        (0..n)
            .map(|i| DhtNode {
                index: i,
                id: DhtId::of_node_index(i),
            })
            .collect()
    }

    #[test]
    fn build_populates_table_and_leafs() {
        let all = nodes(64);
        let st = RoutingState::build(all[0], &all, 8);
        assert_eq!(st.me().index, 0);
        assert_eq!(st.leaf_set().len(), 8);
        // Row 0 should be well populated with 64 nodes and 16 columns.
        let row0 = (0..DIGIT_BASE)
            .filter(|&c| st.table_entry(0, c).is_some())
            .count();
        assert!(row0 >= 12, "row0 filled {row0}/16");
        // No entry may be ourselves.
        for row in 0..NUM_DIGITS {
            for col in 0..DIGIT_BASE {
                if let Some(e) = st.table_entry(row, col) {
                    assert_ne!(e.index, 0);
                    assert_eq!(e.id.shared_prefix_len(st.me().id), row);
                    assert_eq!(e.id.digit(row), col);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "part of the system")]
    fn build_rejects_foreign_node() {
        let all = nodes(4);
        let stranger = DhtNode {
            index: 99,
            id: DhtId::new(42),
        };
        let _ = RoutingState::build(stranger, &all, 4);
    }

    #[test]
    fn leaf_set_contains_ring_neighbours() {
        let all = nodes(32);
        let me = all[5];
        let st = RoutingState::build(me, &all, 6);
        let succ = all
            .iter()
            .filter(|n| n.index != 5)
            .min_by_key(|n| n.id.as_u64().wrapping_sub(me.id.as_u64()))
            .unwrap();
        let pred = all
            .iter()
            .filter(|n| n.index != 5)
            .min_by_key(|n| me.id.as_u64().wrapping_sub(n.id.as_u64()))
            .unwrap();
        let leaf_idx: Vec<usize> = st.leaf_set().iter().map(|n| n.index).collect();
        assert!(leaf_idx.contains(&succ.index), "successor in leaf set");
        assert!(leaf_idx.contains(&pred.index), "predecessor in leaf set");
        assert!(st.leaf_set().len() <= 6);
    }

    #[test]
    fn next_hop_strictly_approaches_key() {
        let all = nodes(128);
        let states: Vec<RoutingState> = all
            .iter()
            .map(|&me| RoutingState::build(me, &all, 8))
            .collect();
        let key = DhtId::of_topic(7);
        for start in 0..all.len() {
            let mut cur = start;
            let mut hops = 0;
            while let Some(next) = states[cur].next_hop(key) {
                assert!(
                    next.id.ring_distance(key) < all[cur].id.ring_distance(key),
                    "hop must strictly decrease ring distance"
                );
                cur = next.index;
                hops += 1;
                assert!(hops <= 64, "routing loop from {start}");
            }
        }
    }

    #[test]
    fn all_routes_converge_to_same_root() {
        let all = nodes(100);
        let states: Vec<RoutingState> = all
            .iter()
            .map(|&me| RoutingState::build(me, &all, 8))
            .collect();
        for t in 0..10 {
            let key = DhtId::of_topic(t);
            let mut roots = std::collections::BTreeSet::new();
            for start in 0..all.len() {
                let mut cur = start;
                while let Some(next) = states[cur].next_hop(key) {
                    cur = next.index;
                }
                roots.insert(cur);
            }
            assert_eq!(roots.len(), 1, "topic {t} reached roots {roots:?}");
            // The root must be the globally numerically-closest node.
            let true_root = all
                .iter()
                .min_by_key(|n| (n.id.ring_distance(key), n.id))
                .unwrap();
            assert!(roots.contains(&true_root.index));
        }
    }

    #[test]
    fn display_summarizes() {
        let all = nodes(8);
        let st = RoutingState::build(all[0], &all, 4);
        let s = format!("{st}");
        assert!(s.contains("leafs=4"), "{s}");
    }
}
