//! # fed-dht
//!
//! A Pastry-like structured-overlay substrate: 64-bit ring identifiers,
//! prefix routing tables with leaf sets, and whole-system route/rendezvous
//! queries.
//!
//! This exists to reproduce the paper's §4.1 analysis of **structured**
//! selective dissemination (Scribe over Pastry): rendezvous nodes and the
//! interior nodes of DHT routes do forwarding work for topics they never
//! subscribed to — the canonical fairness violation. The routing tables are
//! built offline from global knowledge (the join protocol is irrelevant to
//! fairness accounting); routes have the same prefix-routing structure,
//! `O(log n)` length and rendezvous placement as Pastry's.
//!
//! [`DhtNetwork::build`] bulk-builds every node's routing table from one
//! ring-sorted index in `O(n log n)` — bit-identical to the per-node
//! reference construction (asserted by tests) — so 100k-node
//! Scribe/DKS populations are constructible in milliseconds and can be
//! shared immutably (`Arc`) across the sharded engine's worker threads
//! without perturbing determinism.
//!
//! ## Examples
//!
//! ```
//! use fed_dht::{DhtId, DhtNetwork};
//!
//! let net = DhtNetwork::build(100);
//! let key = DhtId::of_topic(7);
//! let root = net.root_of(key);
//! let path = net.route_path(0, key)?;
//! assert_eq!(*path.last().unwrap(), root.index);
//! # Ok::<(), fed_dht::UnknownNode>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod id;
pub mod network;
pub mod routing;

pub use id::{DhtId, DIGIT_BASE, DIGIT_BITS, NUM_DIGITS};
pub use network::{DhtNetwork, UnknownNode};
pub use routing::{DhtNode, RoutingState};
