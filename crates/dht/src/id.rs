//! Ring identifiers and digit arithmetic.
//!
//! Pastry assigns every node a 128-bit id interpreted in base `2^b`; we use
//! 64-bit ids with `b = 4` (16 hexadecimal digits), which preserves the
//! routing structure — `O(log_16 n)` hops via longest-prefix matching —
//! at the scales the experiments simulate (`n <= 10^5`).

use std::fmt;

/// Number of bits per digit (`b` in Pastry terms).
pub const DIGIT_BITS: u32 = 4;
/// Number of digits in an id.
pub const NUM_DIGITS: usize = (64 / DIGIT_BITS) as usize;
/// Number of distinct digit values (`2^b`).
pub const DIGIT_BASE: usize = 1 << DIGIT_BITS;

/// A position on the 64-bit identifier ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DhtId(u64);

impl DhtId {
    /// Wraps a raw 64-bit value.
    pub const fn new(v: u64) -> Self {
        DhtId(v)
    }

    /// Derives an id by hashing arbitrary bytes (FNV-1a then SplitMix64
    /// finalizer — deterministic across platforms).
    pub fn hash_of(bytes: &[u8]) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Finalize for avalanche.
        let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        DhtId(z ^ (z >> 31))
    }

    /// Derives a node's ring id from its dense index.
    pub fn of_node_index(index: usize) -> Self {
        DhtId::hash_of(&(index as u64).to_le_bytes())
    }

    /// Derives the ring id of a topic (for rendezvous placement).
    pub fn of_topic(topic_index: usize) -> Self {
        let mut bytes = Vec::with_capacity(14);
        bytes.extend_from_slice(b"topic:");
        bytes.extend_from_slice(&(topic_index as u64).to_le_bytes());
        DhtId::hash_of(&bytes)
    }

    /// Raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The `i`-th digit, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_DIGITS`.
    pub fn digit(self, i: usize) -> usize {
        assert!(i < NUM_DIGITS, "digit index out of range");
        let shift = 64 - DIGIT_BITS as usize * (i + 1);
        ((self.0 >> shift) & (DIGIT_BASE as u64 - 1)) as usize
    }

    /// Length of the common digit prefix with `other` (0..=NUM_DIGITS).
    pub fn shared_prefix_len(self, other: DhtId) -> usize {
        let x = self.0 ^ other.0;
        if x == 0 {
            return NUM_DIGITS;
        }
        (x.leading_zeros() / DIGIT_BITS) as usize
    }

    /// Absolute ring distance to `other` (minimum of the two directions).
    pub fn ring_distance(self, other: DhtId) -> u64 {
        let d = self.0.wrapping_sub(other.0);
        let e = other.0.wrapping_sub(self.0);
        d.min(e)
    }
}

impl fmt::Display for DhtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl From<u64> for DhtId {
    fn from(v: u64) -> Self {
        DhtId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_extract_hex() {
        let id = DhtId::new(0x0123_4567_89AB_CDEF);
        for (i, want) in (0..16).zip(0..16) {
            assert_eq!(id.digit(i), want);
        }
    }

    #[test]
    #[should_panic(expected = "digit index out of range")]
    fn digit_out_of_range() {
        let _ = DhtId::new(0).digit(16);
    }

    #[test]
    fn shared_prefix() {
        let a = DhtId::new(0xABCD_0000_0000_0000);
        let b = DhtId::new(0xABCE_0000_0000_0000);
        assert_eq!(a.shared_prefix_len(b), 3);
        assert_eq!(a.shared_prefix_len(a), NUM_DIGITS);
        let c = DhtId::new(0x1BCD_0000_0000_0000);
        assert_eq!(a.shared_prefix_len(c), 0);
    }

    #[test]
    fn ring_distance_is_symmetric_and_wraps() {
        let a = DhtId::new(5);
        let b = DhtId::new(u64::MAX - 4);
        assert_eq!(a.ring_distance(b), 10);
        assert_eq!(b.ring_distance(a), 10);
        assert_eq!(a.ring_distance(a), 0);
        assert_eq!(
            DhtId::new(0).ring_distance(DhtId::new(u64::MAX / 2)),
            u64::MAX / 2
        );
    }

    #[test]
    fn hashing_is_deterministic_and_spread() {
        let a = DhtId::of_node_index(1);
        let b = DhtId::of_node_index(1);
        let c = DhtId::of_node_index(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(DhtId::of_topic(1), DhtId::of_node_index(1));
        // crude avalanche check: consecutive indices land far apart
        let mut min_dist = u64::MAX;
        for i in 0..100usize {
            let d = DhtId::of_node_index(i).ring_distance(DhtId::of_node_index(i + 1));
            min_dist = min_dist.min(d);
        }
        assert!(min_dist > 1 << 32, "min consecutive distance {min_dist}");
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", DhtId::new(0xFF)), "00000000000000ff");
        assert_eq!(DhtId::from(7u64).as_u64(), 7);
    }
}
