//! Whole-system DHT view: routes and rendezvous computation.
//!
//! [`DhtNetwork`] bundles the routing state of every node and answers the
//! two questions the Scribe baseline needs: *which node is the rendezvous
//! (root) for a key*, and *along which node path does a message travel from
//! a member to that root*. Paths are what determine fairness: every
//! interior node of a path becomes a forwarder in the multicast tree,
//! whether it is interested in the topic or not (paper §4.1).

use crate::id::{DhtId, DIGIT_BASE, DIGIT_BITS, NUM_DIGITS};
use crate::routing::{DhtNode, RoutingState};
use std::fmt;

/// Error raised for queries about unknown node indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownNode(pub usize);

impl fmt::Display for UnknownNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown node index {}", self.0)
    }
}

impl std::error::Error for UnknownNode {}

/// Complete routing infrastructure over `n` nodes.
#[derive(Debug, Clone)]
pub struct DhtNetwork {
    nodes: Vec<DhtNode>,
    states: Vec<RoutingState>,
}

impl DhtNetwork {
    /// Default Pastry leaf-set size.
    pub const DEFAULT_LEAF_SIZE: usize = 16;

    /// Builds the network for nodes `0..n` with ids derived by hashing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build(n: usize) -> Self {
        Self::build_with_leaf_size(n, Self::DEFAULT_LEAF_SIZE)
    }

    /// Builds with an explicit leaf-set size.
    ///
    /// Produces exactly the state of running [`RoutingState::build`] per
    /// node (asserted by tests), but in `O(n log n)` instead of `O(n²)`:
    /// one shared ring-sorted index answers every node's prefix-block and
    /// leaf-neighbour queries by binary search, which is what makes
    /// 100k+-node Scribe/DKS populations constructible in milliseconds
    /// rather than hours.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build_with_leaf_size(n: usize, leaf_size: usize) -> Self {
        assert!(n > 0, "DHT requires at least one node");
        let nodes: Vec<DhtNode> = (0..n)
            .map(|i| DhtNode {
                index: i,
                id: DhtId::of_node_index(i),
            })
            .collect();
        // Ring-sorted view; the stable sort keeps equal ids in index
        // order, which the per-slot and leaf-set tie-breaks rely on.
        let mut sorted = nodes.clone();
        sorted.sort_by_key(|node| node.id);
        let ids: Vec<u64> = sorted.iter().map(|node| node.id.as_u64()).collect();
        let states = nodes
            .iter()
            .map(|&me| Self::state_from_index(me, &sorted, &ids, leaf_size))
            .collect();
        DhtNetwork { nodes, states }
    }

    /// Builds one node's routing state from the shared ring-sorted index.
    fn state_from_index(
        me: DhtNode,
        sorted: &[DhtNode],
        ids: &[u64],
        leaf_size: usize,
    ) -> RoutingState {
        let len = sorted.len();
        let my = me.id.as_u64();

        // --- Prefix routing table -------------------------------------
        //
        // The candidates for slot (row, col) — nodes sharing exactly
        // `row` digits with us and carrying digit `col` next — occupy one
        // contiguous id block; the winner (minimum ring distance, then
        // minimum index) of a contiguous arc not containing us sits at
        // one of the arc's two ends, because ring distance is unimodal
        // along the arc. Equal ids within an end are adjacent and
        // index-sorted, so the first element of an end's equal-id group
        // already carries that group's tie-break winner.
        let mut table: Vec<Vec<Option<DhtNode>>> = vec![vec![None; DIGIT_BASE]; NUM_DIGITS];
        for (row, table_row) in table.iter_mut().enumerate() {
            let shift = 64 - DIGIT_BITS as usize * (row + 1);
            let high_bits = DIGIT_BITS as usize * row;
            let prefix = if high_bits == 0 {
                0
            } else {
                my & (u64::MAX << (64 - high_bits))
            };
            let my_digit = me.id.digit(row);
            for (col, slot) in table_row.iter_mut().enumerate() {
                if col == my_digit {
                    continue; // same digit ⇒ longer shared prefix ⇒ later row
                }
                let start = prefix | ((col as u64) << shift);
                let lo = ids.partition_point(|&v| v < start);
                let hi = match start.checked_add(1u64 << shift) {
                    Some(end) => ids.partition_point(|&v| v < end),
                    None => len, // topmost block: runs to the end of the ring
                };
                if lo == hi {
                    continue;
                }
                let a = sorted[lo];
                let b = sorted[ids.partition_point(|&v| v < ids[hi - 1])];
                let pick = if (a.id.ring_distance(me.id), a.index)
                    <= (b.id.ring_distance(me.id), b.index)
                {
                    a
                } else {
                    b
                };
                *slot = Some(pick);
            }
        }

        // --- Two-sided leaf set ---------------------------------------
        //
        // Ring successors ascend from just past our id group; ring
        // predecessors descend from just before it. Nodes sharing our id
        // (hash collisions) have ring distance zero and lead the
        // successor list in index order, exactly as the reference
        // implementation's stable sort produces.
        let half = (leaf_size / 2).max(1);
        let group_lo = ids.partition_point(|&v| v < my);
        let group_hi = ids.partition_point(|&v| v <= my);
        let outside = len - (group_hi - group_lo);
        let mut successors: Vec<DhtNode> = sorted[group_lo..group_hi]
            .iter()
            .copied()
            .filter(|node| node.index != me.index)
            .take(half)
            .collect();
        for k in 0..outside {
            if successors.len() >= half {
                break;
            }
            successors.push(sorted[(group_hi + k) % len]);
        }
        let mut leaf_set = successors;
        for k in 1..=outside.min(half) {
            let p = sorted[(group_lo + len - k) % len];
            if !leaf_set.iter().any(|node| node.index == p.index) {
                leaf_set.push(p);
            }
        }
        RoutingState::from_parts(me, table, leaf_set)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always `false` (empty networks are rejected at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The ring id of node `index`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNode`] when out of range.
    pub fn id_of(&self, index: usize) -> Result<DhtId, UnknownNode> {
        self.nodes
            .get(index)
            .map(|n| n.id)
            .ok_or(UnknownNode(index))
    }

    /// Routing state of node `index`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNode`] when out of range.
    pub fn state_of(&self, index: usize) -> Result<&RoutingState, UnknownNode> {
        self.states.get(index).ok_or(UnknownNode(index))
    }

    /// The node numerically closest to `key` — the rendezvous/root.
    pub fn root_of(&self, key: DhtId) -> DhtNode {
        *self
            .nodes
            .iter()
            .min_by_key(|n| (n.id.ring_distance(key), n.id))
            .expect("non-empty")
    }

    /// The full node-index path from `start` to the root of `key`,
    /// inclusive of both endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNode`] if `start` is out of range.
    ///
    /// # Panics
    ///
    /// Panics if routing fails to converge within `4 * NUM_DIGITS` hops,
    /// which would indicate a broken routing invariant (covered by tests).
    pub fn route_path(&self, start: usize, key: DhtId) -> Result<Vec<usize>, UnknownNode> {
        if start >= self.nodes.len() {
            return Err(UnknownNode(start));
        }
        let mut path = vec![start];
        let mut cur = start;
        let budget = 4 * crate::id::NUM_DIGITS;
        for _ in 0..budget {
            match self.states[cur].next_hop(key) {
                Some(next) => {
                    cur = next.index;
                    path.push(cur);
                }
                None => return Ok(path),
            }
        }
        panic!("routing did not converge from {start} to {key}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_end_at_root() {
        let net = DhtNetwork::build(200);
        for t in 0..20 {
            let key = DhtId::of_topic(t);
            let root = net.root_of(key);
            for start in (0..200).step_by(17) {
                let path = net.route_path(start, key).unwrap();
                assert_eq!(*path.first().unwrap(), start);
                assert_eq!(*path.last().unwrap(), root.index);
            }
        }
    }

    #[test]
    fn paths_are_logarithmically_short() {
        let net = DhtNetwork::build(1024);
        let key = DhtId::of_topic(3);
        let mut max_len = 0usize;
        for start in 0..1024 {
            let path = net.route_path(start, key).unwrap();
            max_len = max_len.max(path.len());
        }
        // log16(1024) = 2.5; leaf sets shorten tails. Anything <= 8 is sane.
        assert!(max_len <= 8, "max path length {max_len}");
    }

    #[test]
    fn path_has_no_cycles() {
        let net = DhtNetwork::build(300);
        for t in 0..10 {
            let key = DhtId::of_topic(t);
            for start in (0..300).step_by(23) {
                let path = net.route_path(start, key).unwrap();
                let mut sorted = path.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), path.len(), "cycle in {path:?}");
            }
        }
    }

    #[test]
    fn root_is_stable_and_closest() {
        let net = DhtNetwork::build(64);
        let key = DhtId::of_topic(0);
        let root = net.root_of(key);
        for i in 0..64 {
            let d = net.id_of(i).unwrap().ring_distance(key);
            assert!(d >= root.id.ring_distance(key));
        }
    }

    #[test]
    fn root_route_from_root_is_trivial() {
        let net = DhtNetwork::build(64);
        let key = DhtId::of_topic(5);
        let root = net.root_of(key);
        let path = net.route_path(root.index, key).unwrap();
        assert_eq!(path, vec![root.index]);
    }

    #[test]
    fn unknown_node_errors() {
        let net = DhtNetwork::build(4);
        assert_eq!(net.id_of(9), Err(UnknownNode(9)));
        assert!(net.state_of(9).is_err());
        assert_eq!(net.route_path(9, DhtId::new(1)), Err(UnknownNode(9)));
        assert_eq!(format!("{}", UnknownNode(9)), "unknown node index 9");
    }

    /// The `O(n log n)` bulk builder must reproduce the reference
    /// per-node [`RoutingState::build`] bit for bit — table slots, leaf
    /// sets, order and all.
    #[test]
    fn bulk_build_matches_reference_build() {
        for (n, leaf) in [(1usize, 16), (2, 16), (3, 4), (50, 8), (333, 16), (517, 6)] {
            let net = DhtNetwork::build_with_leaf_size(n, leaf);
            let nodes: Vec<DhtNode> = (0..n)
                .map(|i| DhtNode {
                    index: i,
                    id: DhtId::of_node_index(i),
                })
                .collect();
            for i in 0..n {
                let reference = RoutingState::build(nodes[i], &nodes, leaf);
                assert_eq!(
                    format!("{:?}", net.state_of(i).unwrap()),
                    format!("{reference:?}"),
                    "n={n} leaf={leaf}: node {i} diverged from the reference build"
                );
            }
        }
    }

    /// Equal-id collisions (impossible with the production hash, but the
    /// builder must not care) keep the two builds in agreement.
    #[test]
    fn bulk_build_matches_reference_under_id_collisions() {
        // Hand-built node set with duplicate ids, unsorted indices.
        let raw: [u64; 7] = [
            0x1111_0000_0000_0000,
            0x9999_0000_0000_0000,
            0x1111_0000_0000_0000, // duplicate of node 0
            0xF0F0_0000_0000_0000,
            0x9999_0000_0000_0000, // duplicate of node 1
            0x0001_0000_0000_0000,
            0x1111_0000_0000_0000, // triple of node 0
        ];
        let nodes: Vec<DhtNode> = raw
            .iter()
            .enumerate()
            .map(|(index, &v)| DhtNode {
                index,
                id: DhtId::new(v),
            })
            .collect();
        let mut sorted = nodes.clone();
        sorted.sort_by_key(|node| node.id);
        let ids: Vec<u64> = sorted.iter().map(|node| node.id.as_u64()).collect();
        for leaf in [2usize, 4, 8] {
            for &me in &nodes {
                let fast = DhtNetwork::state_from_index(me, &sorted, &ids, leaf);
                let reference = RoutingState::build(me, &nodes, leaf);
                assert_eq!(
                    format!("{fast:?}"),
                    format!("{reference:?}"),
                    "node {} leaf={leaf} diverged under collisions",
                    me.index
                );
            }
        }
    }

    #[test]
    fn single_node_network() {
        let net = DhtNetwork::build(1);
        let key = DhtId::of_topic(1);
        assert_eq!(net.root_of(key).index, 0);
        assert_eq!(net.route_path(0, key).unwrap(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_rejected() {
        let _ = DhtNetwork::build(0);
    }
}
