//! Whole-system DHT view: routes and rendezvous computation.
//!
//! [`DhtNetwork`] bundles the routing state of every node and answers the
//! two questions the Scribe baseline needs: *which node is the rendezvous
//! (root) for a key*, and *along which node path does a message travel from
//! a member to that root*. Paths are what determine fairness: every
//! interior node of a path becomes a forwarder in the multicast tree,
//! whether it is interested in the topic or not (paper §4.1).

use crate::id::DhtId;
use crate::routing::{DhtNode, RoutingState};
use std::fmt;

/// Error raised for queries about unknown node indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownNode(pub usize);

impl fmt::Display for UnknownNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown node index {}", self.0)
    }
}

impl std::error::Error for UnknownNode {}

/// Complete routing infrastructure over `n` nodes.
#[derive(Debug, Clone)]
pub struct DhtNetwork {
    nodes: Vec<DhtNode>,
    states: Vec<RoutingState>,
}

impl DhtNetwork {
    /// Default Pastry leaf-set size.
    pub const DEFAULT_LEAF_SIZE: usize = 16;

    /// Builds the network for nodes `0..n` with ids derived by hashing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build(n: usize) -> Self {
        Self::build_with_leaf_size(n, Self::DEFAULT_LEAF_SIZE)
    }

    /// Builds with an explicit leaf-set size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build_with_leaf_size(n: usize, leaf_size: usize) -> Self {
        assert!(n > 0, "DHT requires at least one node");
        let nodes: Vec<DhtNode> = (0..n)
            .map(|i| DhtNode {
                index: i,
                id: DhtId::of_node_index(i),
            })
            .collect();
        let states = nodes
            .iter()
            .map(|&me| RoutingState::build(me, &nodes, leaf_size))
            .collect();
        DhtNetwork { nodes, states }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always `false` (empty networks are rejected at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The ring id of node `index`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNode`] when out of range.
    pub fn id_of(&self, index: usize) -> Result<DhtId, UnknownNode> {
        self.nodes
            .get(index)
            .map(|n| n.id)
            .ok_or(UnknownNode(index))
    }

    /// Routing state of node `index`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNode`] when out of range.
    pub fn state_of(&self, index: usize) -> Result<&RoutingState, UnknownNode> {
        self.states.get(index).ok_or(UnknownNode(index))
    }

    /// The node numerically closest to `key` — the rendezvous/root.
    pub fn root_of(&self, key: DhtId) -> DhtNode {
        *self
            .nodes
            .iter()
            .min_by_key(|n| (n.id.ring_distance(key), n.id))
            .expect("non-empty")
    }

    /// The full node-index path from `start` to the root of `key`,
    /// inclusive of both endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNode`] if `start` is out of range.
    ///
    /// # Panics
    ///
    /// Panics if routing fails to converge within `4 * NUM_DIGITS` hops,
    /// which would indicate a broken routing invariant (covered by tests).
    pub fn route_path(&self, start: usize, key: DhtId) -> Result<Vec<usize>, UnknownNode> {
        if start >= self.nodes.len() {
            return Err(UnknownNode(start));
        }
        let mut path = vec![start];
        let mut cur = start;
        let budget = 4 * crate::id::NUM_DIGITS;
        for _ in 0..budget {
            match self.states[cur].next_hop(key) {
                Some(next) => {
                    cur = next.index;
                    path.push(cur);
                }
                None => return Ok(path),
            }
        }
        panic!("routing did not converge from {start} to {key}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_end_at_root() {
        let net = DhtNetwork::build(200);
        for t in 0..20 {
            let key = DhtId::of_topic(t);
            let root = net.root_of(key);
            for start in (0..200).step_by(17) {
                let path = net.route_path(start, key).unwrap();
                assert_eq!(*path.first().unwrap(), start);
                assert_eq!(*path.last().unwrap(), root.index);
            }
        }
    }

    #[test]
    fn paths_are_logarithmically_short() {
        let net = DhtNetwork::build(1024);
        let key = DhtId::of_topic(3);
        let mut max_len = 0usize;
        for start in 0..1024 {
            let path = net.route_path(start, key).unwrap();
            max_len = max_len.max(path.len());
        }
        // log16(1024) = 2.5; leaf sets shorten tails. Anything <= 8 is sane.
        assert!(max_len <= 8, "max path length {max_len}");
    }

    #[test]
    fn path_has_no_cycles() {
        let net = DhtNetwork::build(300);
        for t in 0..10 {
            let key = DhtId::of_topic(t);
            for start in (0..300).step_by(23) {
                let path = net.route_path(start, key).unwrap();
                let mut sorted = path.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), path.len(), "cycle in {path:?}");
            }
        }
    }

    #[test]
    fn root_is_stable_and_closest() {
        let net = DhtNetwork::build(64);
        let key = DhtId::of_topic(0);
        let root = net.root_of(key);
        for i in 0..64 {
            let d = net.id_of(i).unwrap().ring_distance(key);
            assert!(d >= root.id.ring_distance(key));
        }
    }

    #[test]
    fn root_route_from_root_is_trivial() {
        let net = DhtNetwork::build(64);
        let key = DhtId::of_topic(5);
        let root = net.root_of(key);
        let path = net.route_path(root.index, key).unwrap();
        assert_eq!(path, vec![root.index]);
    }

    #[test]
    fn unknown_node_errors() {
        let net = DhtNetwork::build(4);
        assert_eq!(net.id_of(9), Err(UnknownNode(9)));
        assert!(net.state_of(9).is_err());
        assert_eq!(net.route_path(9, DhtId::new(1)), Err(UnknownNode(9)));
        assert_eq!(format!("{}", UnknownNode(9)), "unknown node index 9");
    }

    #[test]
    fn single_node_network() {
        let net = DhtNetwork::build(1);
        let key = DhtId::of_topic(1);
        assert_eq!(net.root_of(key).index, 0);
        assert_eq!(net.route_path(0, key).unwrap(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_rejected() {
        let _ = DhtNetwork::build(0);
    }
}
