//! Property-based tests of the DHT routing invariants.

use fed_dht::{DhtId, DhtNetwork, NUM_DIGITS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every route ends at the global root, is cycle-free and short.
    #[test]
    fn routes_converge_loop_free(
        n in 2usize..300,
        key in any::<u64>(),
        starts in prop::collection::vec(0usize..300, 1..8),
    ) {
        let net = DhtNetwork::build(n);
        let key = DhtId::new(key);
        let root = net.root_of(key);
        for &start in &starts {
            let start = start % n;
            let path = net.route_path(start, key).expect("valid start");
            prop_assert_eq!(*path.first().expect("non-empty"), start);
            prop_assert_eq!(*path.last().expect("non-empty"), root.index);
            let mut sorted = path.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len(), "cycle in path");
            prop_assert!(
                path.len() <= 4 * NUM_DIGITS,
                "path of {} hops for n={n}",
                path.len()
            );
        }
    }

    /// Ring distance to the key strictly decreases along every route.
    #[test]
    fn routes_are_monotone(n in 2usize..200, key in any::<u64>(), start in 0usize..200) {
        let net = DhtNetwork::build(n);
        let key = DhtId::new(key);
        let path = net.route_path(start % n, key).expect("valid start");
        let mut last = u64::MAX;
        for &hop in &path {
            let d = net.id_of(hop).expect("in range").ring_distance(key);
            prop_assert!(d < last || last == u64::MAX, "distance went {last} -> {d}");
            last = d;
        }
    }

    /// The root really is the globally closest node.
    #[test]
    fn root_minimizes_distance(n in 1usize..300, key in any::<u64>()) {
        let net = DhtNetwork::build(n);
        let key = DhtId::new(key);
        let root = net.root_of(key);
        let rd = root.id.ring_distance(key);
        for i in 0..n {
            prop_assert!(net.id_of(i).expect("in range").ring_distance(key) >= rd);
        }
    }

    /// Digit extraction and prefix length agree with each other.
    #[test]
    fn digits_consistent_with_prefix(a in any::<u64>(), b in any::<u64>()) {
        let x = DhtId::new(a);
        let y = DhtId::new(b);
        let p = x.shared_prefix_len(y);
        for i in 0..p {
            prop_assert_eq!(x.digit(i), y.digit(i));
        }
        if p < NUM_DIGITS {
            prop_assert_ne!(x.digit(p), y.digit(p));
        }
        prop_assert_eq!(x.shared_prefix_len(y), y.shared_prefix_len(x));
    }

    /// Ring distance is a metric-ish: symmetric, zero iff equal, bounded.
    #[test]
    fn ring_distance_properties(a in any::<u64>(), b in any::<u64>()) {
        let x = DhtId::new(a);
        let y = DhtId::new(b);
        prop_assert_eq!(x.ring_distance(y), y.ring_distance(x));
        prop_assert_eq!(x.ring_distance(x), 0);
        prop_assert!(x.ring_distance(y) <= u64::MAX / 2 + 1);
        if a != b {
            prop_assert!(x.ring_distance(y) > 0);
        }
    }
}
