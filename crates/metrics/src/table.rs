//! Plain-text result tables, the output format of every experiment.

use std::fmt;

/// A simple aligned text table with a title, headers and string cells.
///
/// # Examples
///
/// ```
/// use fed_metrics::table::Table;
///
/// let mut t = Table::new("Fairness by system", &["system", "jain", "gini"]);
/// t.row(&["static-gossip", "0.31", "0.58"]);
/// t.row(&["fair-gossip", "0.97", "0.04"]);
/// let s = t.to_string();
/// assert!(s.contains("fair-gossip"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of owned strings (convenient with `format!`).
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders as CSV (headers first; cells quoted when they contain
    /// commas or quotes).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| cell(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "## {}", self.title)?;
        let render_row = |row: &[String]| -> String {
            let cells: Vec<String> = widths
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    let val = row.get(i).map(String::as_str).unwrap_or("");
                    format!("{val:<w$}")
                })
                .collect();
            format!("| {} |", cells.join(" | "))
        };
        writeln!(f, "{}", render_row(&self.headers))?;
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

/// Formats an `f64` compactly for table cells (4 significant decimals,
/// `inf` degrades gracefully).
pub fn fmt_f64(x: f64) -> String {
    if x.is_infinite() {
        return if x > 0.0 { "inf".into() } else { "-inf".into() };
    }
    if x.is_nan() {
        return "nan".into();
    }
    if x == 0.0 {
        return "0".into();
    }
    if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer-name", "2.5"]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("| name        | value |"), "{s}");
        assert!(s.contains("| longer-name | 2.5   |"), "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn ragged_rows_render() {
        let mut t = Table::new("ragged", &["a", "b"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3"]);
        let s = t.to_string();
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("csv", &["k", "v"]);
        t.row(&["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("k,v\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new("owned", &["x"]);
        t.row_owned(vec![format!("{}", 42)]);
        assert!(t.to_string().contains("42"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-inf");
        assert_eq!(fmt_f64(f64::NAN), "nan");
        assert_eq!(fmt_f64(0.123456), "0.1235");
        assert_eq!(fmt_f64(12.345), "12.35");
        assert_eq!(fmt_f64(1234.5), "1234", "round-half-to-even");
        assert_eq!(fmt_f64(1235.5), "1236");
    }
}
