//! Delivery metrics: reliability, latency and spurious-delivery checks.
//!
//! The dissemination contract (paper §2): every interested process
//! eventually delivers every matching event; no process delivers an event
//! it did not subscribe to. [`DeliveryAudit`] checks both sides against
//! ground truth and summarizes latency.

use fed_pubsub::EventId;
use fed_sim::SimTime;
use fed_util::stats::Summary;
use std::collections::{HashMap, HashSet};

/// Ground truth and observations for one dissemination run.
#[derive(Debug, Clone, Default)]
pub struct DeliveryAudit {
    /// event → (publish time, set of interested node indices)
    expected: HashMap<EventId, (SimTime, HashSet<usize>)>,
    /// (event, node) → delivery time
    observed: HashMap<(EventId, usize), SimTime>,
    /// deliveries at nodes that were NOT interested
    spurious: u64,
}

impl DeliveryAudit {
    /// Creates an empty audit.
    pub fn new() -> Self {
        DeliveryAudit::default()
    }

    /// Registers a published event with the set of nodes that should
    /// deliver it.
    pub fn expect(
        &mut self,
        event: EventId,
        published_at: SimTime,
        interested: impl IntoIterator<Item = usize>,
    ) {
        self.expected
            .insert(event, (published_at, interested.into_iter().collect()));
    }

    /// Records an observed delivery of `event` at `node`.
    ///
    /// Deliveries of unknown events are counted as spurious, as are
    /// deliveries at nodes outside the interested set.
    pub fn record(&mut self, event: EventId, node: usize, at: SimTime) {
        match self.expected.get(&event) {
            Some((_, interested)) if interested.contains(&node) => {
                self.observed.insert((event, node), at);
            }
            _ => self.spurious += 1,
        }
    }

    /// Number of registered events.
    pub fn num_events(&self) -> usize {
        self.expected.len()
    }

    /// Total expected (event, node) deliveries.
    pub fn expected_deliveries(&self) -> usize {
        self.expected.values().map(|(_, s)| s.len()).sum()
    }

    /// Total correct observed deliveries.
    pub fn observed_deliveries(&self) -> usize {
        self.observed.len()
    }

    /// Deliveries at uninterested nodes (must be 0 for a correct system).
    pub fn spurious(&self) -> u64 {
        self.spurious
    }

    /// Fraction of expected deliveries that happened, in `[0, 1]`.
    /// `1.0` for a run with no expected deliveries.
    pub fn reliability(&self) -> f64 {
        let expected = self.expected_deliveries();
        if expected == 0 {
            return 1.0;
        }
        self.observed_deliveries() as f64 / expected as f64
    }

    /// Fraction of events delivered by *all* their interested nodes
    /// (the "atomicity" of Bimodal Multicast).
    pub fn atomicity(&self) -> f64 {
        if self.expected.is_empty() {
            return 1.0;
        }
        let complete = self
            .expected
            .iter()
            .filter(|(id, (_, interested))| {
                interested
                    .iter()
                    .all(|&node| self.observed.contains_key(&(**id, node)))
            })
            .count();
        complete as f64 / self.expected.len() as f64
    }

    /// Summary of delivery latencies in milliseconds (delivery − publish).
    pub fn latency_ms(&self) -> Summary {
        let values = self.observed.iter().filter_map(|((event, _), &at)| {
            let (published, _) = self.expected.get(event)?;
            Some(at.duration_since(*published).as_micros() as f64 / 1_000.0)
        });
        Summary::from_values(values)
    }

    /// Per-event delivery ratio, useful for bimodal histograms.
    pub fn per_event_ratio(&self) -> Vec<f64> {
        self.expected
            .iter()
            .map(|(id, (_, interested))| {
                if interested.is_empty() {
                    return 1.0;
                }
                let got = interested
                    .iter()
                    .filter(|&&node| self.observed.contains_key(&(*id, node)))
                    .count();
                got as f64 / interested.len() as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(k: u32) -> EventId {
        EventId::new(0, k)
    }

    #[test]
    fn empty_audit_is_vacuously_perfect() {
        let a = DeliveryAudit::new();
        assert_eq!(a.reliability(), 1.0);
        assert_eq!(a.atomicity(), 1.0);
        assert_eq!(a.spurious(), 0);
        assert!(a.latency_ms().is_empty());
    }

    #[test]
    fn full_delivery() {
        let mut a = DeliveryAudit::new();
        a.expect(id(1), SimTime::from_millis(100), [0, 1, 2]);
        for node in 0..3 {
            a.record(id(1), node, SimTime::from_millis(150));
        }
        assert_eq!(a.reliability(), 1.0);
        assert_eq!(a.atomicity(), 1.0);
        assert_eq!(a.observed_deliveries(), 3);
        let lat = a.latency_ms();
        assert_eq!(lat.len(), 3);
        assert_eq!(lat.median(), Some(50.0));
    }

    #[test]
    fn partial_delivery_and_atomicity() {
        let mut a = DeliveryAudit::new();
        a.expect(id(1), SimTime::ZERO, [0, 1]);
        a.expect(id(2), SimTime::ZERO, [0, 1]);
        a.record(id(1), 0, SimTime::from_millis(10));
        a.record(id(1), 1, SimTime::from_millis(10));
        a.record(id(2), 0, SimTime::from_millis(10));
        assert_eq!(a.reliability(), 0.75);
        assert_eq!(a.atomicity(), 0.5, "only event 1 fully delivered");
        let ratios = a.per_event_ratio();
        assert_eq!(ratios.len(), 2);
        assert!(ratios.contains(&1.0) && ratios.contains(&0.5));
    }

    #[test]
    fn spurious_detection() {
        let mut a = DeliveryAudit::new();
        a.expect(id(1), SimTime::ZERO, [0]);
        a.record(id(1), 5, SimTime::from_millis(1)); // uninterested node
        a.record(id(9), 0, SimTime::from_millis(1)); // unknown event
        assert_eq!(a.spurious(), 2);
        assert_eq!(a.observed_deliveries(), 0);
    }

    #[test]
    fn duplicate_records_do_not_double_count() {
        let mut a = DeliveryAudit::new();
        a.expect(id(1), SimTime::ZERO, [0]);
        a.record(id(1), 0, SimTime::from_millis(5));
        a.record(id(1), 0, SimTime::from_millis(9));
        assert_eq!(a.observed_deliveries(), 1);
        assert_eq!(a.reliability(), 1.0);
    }

    #[test]
    fn counts() {
        let mut a = DeliveryAudit::new();
        a.expect(id(1), SimTime::ZERO, [0, 1, 2]);
        a.expect(id(2), SimTime::ZERO, []);
        assert_eq!(a.num_events(), 2);
        assert_eq!(a.expected_deliveries(), 3);
        assert_eq!(a.per_event_ratio().len(), 2);
    }
}
