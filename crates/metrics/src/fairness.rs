//! Fairness summaries over collections of ledgers.

use fed_core::ledger::{FairnessLedger, RatioSpec};
use fed_util::fairness::FairnessReport;

/// Per-peer ratios under a spec, from any iterator of ledgers.
pub fn ratios<'a, I>(ledgers: I, spec: &RatioSpec) -> Vec<f64>
where
    I: IntoIterator<Item = &'a FairnessLedger>,
{
    ledgers.into_iter().map(|l| l.ratio(spec)).collect()
}

/// Full fairness report over the contribution/benefit ratios of a
/// population (the paper's Figure 1 summarized in four indices).
pub fn ratio_report<'a, I>(ledgers: I, spec: &RatioSpec) -> FairnessReport
where
    I: IntoIterator<Item = &'a FairnessLedger>,
{
    FairnessReport::from_values(&ratios(ledgers, spec))
}

/// Fairness report over raw contributions — what *load balancing* (the
/// paper's §3.1) equalizes; contrast with [`ratio_report`].
pub fn contribution_report<'a, I>(ledgers: I, spec: &RatioSpec) -> FairnessReport
where
    I: IntoIterator<Item = &'a FairnessLedger>,
{
    let values: Vec<f64> = ledgers.into_iter().map(|l| l.contribution(spec)).collect();
    FairnessReport::from_values(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(forwards: u64, deliveries: u64) -> FairnessLedger {
        let mut l = FairnessLedger::new();
        for _ in 0..forwards {
            l.record_forward(100);
        }
        for _ in 0..deliveries {
            l.record_delivery();
        }
        l
    }

    #[test]
    fn equal_ratios_score_fair() {
        let ledgers = vec![ledger(10, 5), ledger(20, 10), ledger(2, 1)];
        let spec = RatioSpec::topic_based();
        let r = ratio_report(&ledgers, &spec);
        assert!((r.jain - 1.0).abs() < 1e-9, "all ratios are 2: {r}");
        assert!(r.gini.abs() < 1e-9);
    }

    #[test]
    fn unequal_ratios_score_unfair() {
        let ledgers = vec![ledger(100, 1), ledger(1, 100)];
        let spec = RatioSpec::topic_based();
        let r = ratio_report(&ledgers, &spec);
        assert!(r.jain < 0.6, "{r}");
        assert!(r.max_min > 100.0);
    }

    #[test]
    fn load_balance_vs_fairness_distinction() {
        // Same contribution everywhere (perfectly load balanced), wildly
        // different benefit -> contribution report says fair, ratio report
        // says unfair. This is the paper's §3 distinction.
        let ledgers = vec![ledger(10, 100), ledger(10, 1)];
        let spec = RatioSpec::topic_based();
        let load = contribution_report(&ledgers, &spec);
        let fair = ratio_report(&ledgers, &spec);
        assert!((load.jain - 1.0).abs() < 1e-9);
        assert!(fair.jain < 0.7, "{fair}");
    }

    #[test]
    fn ratios_vector_order_preserved() {
        let ledgers = vec![ledger(4, 2), ledger(9, 3)];
        let spec = RatioSpec::topic_based();
        let r = ratios(&ledgers, &spec);
        assert_eq!(r, vec![2.0, 3.0]);
    }
}
