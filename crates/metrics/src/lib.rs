//! # fed-metrics
//!
//! Experiment-facing metrics: fairness summaries over per-node ledgers,
//! delivery reliability/latency audits against ground truth, and the text
//! tables every experiment prints.
//!
//! The two fairness views mirror the paper's §3 distinction and are
//! deliberately separate entry points:
//!
//! | Function | Equalizes | Fair under it |
//! |---|---|---|
//! | [`fairness::ratio_report`] | contribution **/ benefit** ratios | the paper's goal |
//! | [`fairness::contribution_report`] | raw contributions (load) | mere load balancing |
//!
//! A system can ace the second while failing the first — SplitStream is
//! the canonical example — so experiments print both.
//!
//! [`DeliveryAudit`] checks the dissemination contract itself (every
//! interested process delivers, nobody else does) against the
//! materialized ground truth and summarizes delivery latency; it is
//! engine-agnostic, so the same audit code gates both the sequential and
//! the sharded runtime.
//!
//! ## Examples
//!
//! ```
//! use fed_core::ledger::{FairnessLedger, RatioSpec};
//! use fed_metrics::fairness::ratio_report;
//!
//! let mut a = FairnessLedger::new();
//! a.record_forward(100);
//! a.record_delivery();
//! let mut b = FairnessLedger::new();
//! b.record_forward(100);
//! b.record_delivery();
//! let report = ratio_report([&a, &b], &RatioSpec::topic_based());
//! assert_eq!(report.jain, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delivery;
pub mod fairness;
pub mod table;

pub use delivery::DeliveryAudit;
pub use fairness::{contribution_report, ratio_report, ratios};
pub use table::{fmt_f64, Table};
