//! Property-based tests: filter language round-trips and matching laws.

use fed_pubsub::event::{AttrValue, Event, EventId};
use fed_pubsub::filter::{CmpOp, Filter};
use fed_pubsub::lang::parse_filter;
use fed_pubsub::topic::TopicId;
use proptest::prelude::*;

/// Strategy for attribute names in the language's identifier grammar.
fn ident() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,8}".prop_filter("reserved words", |s| {
        !matches!(s.as_str(), "true" | "false" | "exists")
    })
}

fn attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        any::<i64>().prop_map(AttrValue::Int),
        (-1.0e9f64..1.0e9).prop_map(AttrValue::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(AttrValue::Str),
        any::<bool>().prop_map(AttrValue::Bool),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn filter_strategy() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        Just(Filter::True),
        Just(Filter::False),
        (ident(), cmp_op(), attr_value()).prop_map(|(name, op, value)| Filter::Cmp {
            name,
            op,
            value
        }),
        ident().prop_map(Filter::Exists),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Filter::not),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Filter::And),
            prop::collection::vec(inner, 1..4).prop_map(Filter::Or),
        ]
    })
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (
        any::<u32>(),
        any::<u32>(),
        0u32..16,
        prop::collection::vec((ident(), attr_value()), 0..6),
    )
        .prop_map(|(publisher, seq, topic, attrs)| {
            let mut b = Event::builder(EventId::new(publisher, seq), TopicId::new(topic));
            for (k, v) in attrs {
                b = b.attr(k, v);
            }
            b.build()
        })
}

proptest! {
    /// Display output of any filter re-parses to an equal filter.
    #[test]
    fn filter_display_round_trips(f in filter_strategy()) {
        let printed = format!("{f}");
        let reparsed = parse_filter(&printed);
        prop_assert!(reparsed.is_ok(), "failed to reparse {printed:?}: {:?}", reparsed.err());
        // Note: And([x]) prints as "(x)" which reparses as x; compare by
        // matching behaviour instead of structural equality.
        let reparsed = reparsed.unwrap();
        prop_assert_eq!(format!("{reparsed}").replace(['(', ')'], ""),
                        printed.replace(['(', ')'], ""));
    }

    /// Round-tripped filters match exactly the same events.
    #[test]
    fn round_trip_preserves_semantics(f in filter_strategy(), e in event_strategy()) {
        let reparsed = parse_filter(&format!("{f}")).expect("display must be parseable");
        prop_assert_eq!(f.matches(&e), reparsed.matches(&e));
    }

    /// Double negation is the identity on matching.
    #[test]
    fn double_negation(f in filter_strategy(), e in event_strategy()) {
        let double = Filter::not(Filter::not(f.clone()));
        prop_assert_eq!(f.matches(&e), double.matches(&e));
    }

    /// De Morgan: !(a && b) == !a || !b on matching.
    #[test]
    fn de_morgan(a in filter_strategy(), b in filter_strategy(), e in event_strategy()) {
        let lhs = Filter::not(Filter::and(vec![a.clone(), b.clone()]));
        let rhs = Filter::or(vec![Filter::not(a), Filter::not(b)]);
        prop_assert_eq!(lhs.matches(&e), rhs.matches(&e));
    }

    /// And is commutative; Or is commutative.
    #[test]
    fn commutativity(a in filter_strategy(), b in filter_strategy(), e in event_strategy()) {
        prop_assert_eq!(
            Filter::and(vec![a.clone(), b.clone()]).matches(&e),
            Filter::and(vec![b.clone(), a.clone()]).matches(&e)
        );
        prop_assert_eq!(
            Filter::or(vec![a.clone(), b.clone()]).matches(&e),
            Filter::or(vec![b, a]).matches(&e)
        );
    }

    /// Parser never panics on arbitrary input.
    #[test]
    fn parser_total(input in ".*") {
        let _ = parse_filter(&input);
    }

    /// Eq comparison against an attribute the event carries with the same
    /// value always matches (NaN excluded by strategy range).
    #[test]
    fn eq_self_matches(name in ident(), v in attr_value(), topic in 0u32..8) {
        let e = Event::builder(EventId::new(0, 0), TopicId::new(topic))
            .attr(name.clone(), v.clone())
            .build();
        let f = Filter::Cmp { name, op: CmpOp::Eq, value: v };
        prop_assert!(f.matches(&e));
    }

    /// Complexity is invariant under negation and additive under And/Or.
    #[test]
    fn complexity_laws(a in filter_strategy(), b in filter_strategy()) {
        prop_assert_eq!(Filter::not(a.clone()).complexity(), a.complexity());
        prop_assert_eq!(
            Filter::and(vec![a.clone(), b.clone()]).complexity(),
            a.complexity() + b.complexity()
        );
    }

    /// Event ids pack/unpack losslessly.
    #[test]
    fn event_id_roundtrip(p in any::<u32>(), s in any::<u32>()) {
        let id = EventId::new(p, s);
        prop_assert_eq!(EventId::from_u64(id.as_u64()), id);
    }
}
