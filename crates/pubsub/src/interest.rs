//! Interest functions.
//!
//! The paper models selectivity as an interest function `I(p, e)` that is
//! true iff event `e` is interesting to process `p` (§2). [`Interest`] is
//! the static description of what a peer wants: nothing, everything, a set
//! of topics, a content filter, or any disjunction of those.

use crate::event::Event;
use crate::filter::Filter;
use crate::topic::{TopicId, TopicSpace};
use std::collections::BTreeSet;
use std::fmt;

/// A peer's interest: the paper's `I(p, ·)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Interest {
    /// Interested in no events (a pure forwarder / infrastructure node).
    Nothing,
    /// Interested in every event (the implicit assumption of classical
    /// gossip protocols the paper criticises).
    Everything,
    /// Topic-based selection: interested in events published on any of
    /// these topics (descendants included when evaluated against a
    /// [`TopicSpace`]).
    Topics(BTreeSet<TopicId>),
    /// Content-based (expressive) selection.
    Content(Filter),
    /// Union of several interests.
    Any(Vec<Interest>),
}

impl Interest {
    /// Builds a topic interest from an iterator of topics.
    pub fn topics<I: IntoIterator<Item = TopicId>>(topics: I) -> Self {
        Interest::Topics(topics.into_iter().collect())
    }

    /// Builds a single-topic interest.
    pub fn topic(topic: TopicId) -> Self {
        Interest::Topics(BTreeSet::from([topic]))
    }

    /// Evaluates `I(p, e)` ignoring topic hierarchy (exact topic match).
    pub fn is_interested(&self, event: &Event) -> bool {
        match self {
            Interest::Nothing => false,
            Interest::Everything => true,
            Interest::Topics(set) => set.contains(&event.topic()),
            Interest::Content(filter) => filter.matches(event),
            Interest::Any(parts) => parts.iter().any(|p| p.is_interested(event)),
        }
    }

    /// Evaluates `I(p, e)` resolving topic subscriptions through a
    /// hierarchy: subscribing to `sports` matches events on
    /// `sports/football`.
    pub fn is_interested_in(&self, event: &Event, space: &TopicSpace) -> bool {
        match self {
            Interest::Topics(set) => set.iter().any(|&t| space.is_descendant(event.topic(), t)),
            Interest::Any(parts) => parts.iter().any(|p| p.is_interested_in(event, space)),
            other => other.is_interested(event),
        }
    }

    /// Number of "filters placed" — the paper's Figure 2 counts
    /// subscriptions as part of the *benefit* a peer draws from the system.
    pub fn subscription_count(&self) -> usize {
        match self {
            Interest::Nothing => 0,
            Interest::Everything => 1,
            Interest::Topics(set) => set.len(),
            Interest::Content(_) => 1,
            Interest::Any(parts) => parts.iter().map(Interest::subscription_count).sum(),
        }
    }

    /// Matching cost proxy: total atomic conditions across all filters.
    pub fn complexity(&self) -> usize {
        match self {
            Interest::Nothing => 0,
            Interest::Everything => 0,
            Interest::Topics(set) => set.len(),
            Interest::Content(filter) => filter.complexity(),
            Interest::Any(parts) => parts.iter().map(Interest::complexity).sum(),
        }
    }

    /// The set of topics this interest explicitly names (content filters
    /// contribute none).
    pub fn topic_set(&self) -> BTreeSet<TopicId> {
        match self {
            Interest::Topics(set) => set.clone(),
            Interest::Any(parts) => parts.iter().flat_map(|p| p.topic_set()).collect(),
            _ => BTreeSet::new(),
        }
    }
}

impl Default for Interest {
    /// The default peer is interested in nothing — interest must be
    /// expressed explicitly via subscription.
    fn default() -> Self {
        Interest::Nothing
    }
}

impl fmt::Display for Interest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interest::Nothing => f.write_str("nothing"),
            Interest::Everything => f.write_str("everything"),
            Interest::Topics(set) => {
                f.write_str("topics{")?;
                for (i, t) in set.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str("}")
            }
            Interest::Content(filter) => write!(f, "filter[{filter}]"),
            Interest::Any(parts) => {
                f.write_str("any(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" | ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::filter::CmpOp;

    fn ev(topic: u32) -> Event {
        Event::builder(EventId::new(0, 0), TopicId::new(topic))
            .attr("price", 10i64)
            .build()
    }

    #[test]
    fn nothing_and_everything() {
        assert!(!Interest::Nothing.is_interested(&ev(0)));
        assert!(Interest::Everything.is_interested(&ev(0)));
        assert_eq!(Interest::default(), Interest::Nothing);
    }

    #[test]
    fn topic_membership() {
        let i = Interest::topics([TopicId::new(1), TopicId::new(3)]);
        assert!(i.is_interested(&ev(1)));
        assert!(i.is_interested(&ev(3)));
        assert!(!i.is_interested(&ev(2)));
        assert_eq!(i.subscription_count(), 2);
    }

    #[test]
    fn single_topic_helper() {
        let i = Interest::topic(TopicId::new(5));
        assert!(i.is_interested(&ev(5)));
        assert_eq!(i.subscription_count(), 1);
    }

    #[test]
    fn content_interest() {
        let i = Interest::Content(Filter::cmp("price", CmpOp::Lt, 100i64));
        assert!(i.is_interested(&ev(0)));
        let j = Interest::Content(Filter::cmp("price", CmpOp::Gt, 100i64));
        assert!(!j.is_interested(&ev(0)));
        assert_eq!(i.subscription_count(), 1);
        assert_eq!(i.complexity(), 1);
    }

    #[test]
    fn union_interest() {
        let i = Interest::Any(vec![
            Interest::topic(TopicId::new(1)),
            Interest::Content(Filter::cmp("price", CmpOp::Lt, 5i64)),
        ]);
        assert!(i.is_interested(&ev(1)), "topic arm");
        assert!(!i.is_interested(&ev(2)), "neither arm");
        assert_eq!(i.subscription_count(), 2);
    }

    #[test]
    fn hierarchy_resolution() {
        let mut space = TopicSpace::new();
        let sports = space.register("sports").unwrap();
        let foot = space.register_under("sports/football", sports).unwrap();
        let i = Interest::topic(sports);
        let e = ev(foot.as_u32());
        assert!(!i.is_interested(&e), "flat match fails");
        assert!(i.is_interested_in(&e, &space), "hierarchy match succeeds");
        // the other direction does not hold
        let j = Interest::topic(foot);
        assert!(!j.is_interested_in(&ev(sports.as_u32()), &space));
    }

    #[test]
    fn hierarchy_through_union() {
        let mut space = TopicSpace::new();
        let root = space.register("root").unwrap();
        let child = space.register_under("root/c", root).unwrap();
        let i = Interest::Any(vec![Interest::topic(root)]);
        assert!(i.is_interested_in(&ev(child.as_u32()), &space));
    }

    #[test]
    fn topic_set_collection() {
        let i = Interest::Any(vec![
            Interest::topics([TopicId::new(1), TopicId::new(2)]),
            Interest::Content(Filter::True),
            Interest::topic(TopicId::new(2)),
        ]);
        let set = i.topic_set();
        assert_eq!(set.len(), 2);
        assert!(set.contains(&TopicId::new(1)) && set.contains(&TopicId::new(2)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Interest::Nothing), "nothing");
        assert_eq!(
            format!("{}", Interest::topics([TopicId::new(1), TopicId::new(2)])),
            "topics{t1,t2}"
        );
        let any = Interest::Any(vec![Interest::Everything, Interest::Nothing]);
        assert_eq!(format!("{any}"), "any(everything | nothing)");
    }
}
