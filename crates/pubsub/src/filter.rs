//! Content-based filters.
//!
//! "A filter allows to specify several attributes and corresponding
//! conditions under which it evaluates to true. An event … is matched to a
//! filter if it provides all attributes specified by the filter and
//! satisfies the corresponding conditions." (paper §2)
//!
//! [`Filter`] is the AST; the textual subscription language living in
//! [`crate::lang`] parses into it. `Display` renders back into the language,
//! so filters round-trip.

use crate::event::{AttrValue, Event};
use std::fmt;

/// Comparison operator in an attribute condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn eval_ordering(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A content-based filter over event attributes.
///
/// Matching semantics: a comparison on a missing attribute or between
/// incompatible types is `false` (never an error) — an event that does not
/// "provide all attributes specified by the filter" does not match.
///
/// # Examples
///
/// ```
/// use fed_pubsub::event::{Event, EventId};
/// use fed_pubsub::filter::{CmpOp, Filter};
/// use fed_pubsub::topic::TopicId;
///
/// let f = Filter::and(vec![
///     Filter::cmp("price", CmpOp::Lt, 100i64),
///     Filter::cmp("symbol", CmpOp::Eq, "ABC"),
/// ]);
/// let e = Event::builder(EventId::new(0, 0), TopicId::new(0))
///     .attr("price", 50i64)
///     .attr("symbol", "ABC")
///     .build();
/// assert!(f.matches(&e));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Filter {
    /// Matches every event.
    True,
    /// Matches no event.
    False,
    /// `name op value` on one attribute.
    Cmp {
        /// Attribute name.
        name: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand constant.
        value: AttrValue,
    },
    /// Matches when the attribute is present, regardless of value.
    Exists(String),
    /// Logical negation.
    Not(Box<Filter>),
    /// Conjunction (empty = `True`).
    And(Vec<Filter>),
    /// Disjunction (empty = `False`).
    Or(Vec<Filter>),
}

impl Filter {
    /// Builds a comparison filter.
    pub fn cmp(name: impl Into<String>, op: CmpOp, value: impl Into<AttrValue>) -> Self {
        Filter::Cmp {
            name: name.into(),
            op,
            value: value.into(),
        }
    }

    /// Builds an existence filter.
    pub fn exists(name: impl Into<String>) -> Self {
        Filter::Exists(name.into())
    }

    /// Builds a negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Filter) -> Self {
        Filter::Not(Box::new(f))
    }

    /// Builds a conjunction.
    pub fn and(fs: Vec<Filter>) -> Self {
        Filter::And(fs)
    }

    /// Builds a disjunction.
    pub fn or(fs: Vec<Filter>) -> Self {
        Filter::Or(fs)
    }

    /// Evaluates the filter against an event.
    pub fn matches(&self, event: &Event) -> bool {
        match self {
            Filter::True => true,
            Filter::False => false,
            Filter::Cmp { name, op, value } => match event.attr(name) {
                Some(actual) => compare(actual, *op, value),
                None => false,
            },
            Filter::Exists(name) => event.attr(name).is_some(),
            Filter::Not(inner) => !inner.matches(event),
            Filter::And(fs) => fs.iter().all(|f| f.matches(event)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(event)),
        }
    }

    /// Number of atomic conditions — the paper charges subscription
    /// maintenance proportionally to filter complexity ("a process which
    /// places many filters will have to work … according to the cost it
    /// takes to match these filters", §2).
    pub fn complexity(&self) -> usize {
        match self {
            Filter::True | Filter::False => 0,
            Filter::Cmp { .. } | Filter::Exists(_) => 1,
            Filter::Not(inner) => inner.complexity(),
            Filter::And(fs) | Filter::Or(fs) => fs.iter().map(Filter::complexity).sum(),
        }
    }
}

/// Compares an event attribute against a filter constant.
///
/// Ints and floats are mutually comparable; strings compare
/// lexicographically; booleans support only equality-style operators
/// (ordered comparison of booleans is `false`). Cross-type comparisons
/// never match except through numeric promotion.
fn compare(actual: &AttrValue, op: CmpOp, expected: &AttrValue) -> bool {
    use AttrValue::*;
    match (actual, expected) {
        (Str(a), Str(b)) => op.eval_ordering(a.as_str().cmp(b.as_str())),
        (Bool(a), Bool(b)) => match op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            _ => false,
        },
        _ => match (actual.as_f64(), expected.as_f64()) {
            (Some(a), Some(b)) => match a.partial_cmp(&b) {
                Some(ord) => op.eval_ordering(ord),
                None => false,
            },
            _ => false,
        },
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::True => f.write_str("true"),
            Filter::False => f.write_str("false"),
            Filter::Cmp { name, op, value } => write!(f, "{name} {op} {value}"),
            Filter::Exists(name) => write!(f, "exists({name})"),
            Filter::Not(inner) => write!(f, "!({inner})"),
            Filter::And(fs) => write_joined(f, fs, "&&", "true"),
            Filter::Or(fs) => write_joined(f, fs, "||", "false"),
        }
    }
}

fn write_joined(f: &mut fmt::Formatter<'_>, fs: &[Filter], sep: &str, empty: &str) -> fmt::Result {
    if fs.is_empty() {
        return f.write_str(empty);
    }
    for (i, sub) in fs.iter().enumerate() {
        if i > 0 {
            write!(f, " {sep} ")?;
        }
        write!(f, "({sub})")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::topic::TopicId;

    fn stock(price: i64, symbol: &str, urgent: bool) -> Event {
        Event::builder(EventId::new(0, 0), TopicId::new(0))
            .attr("price", price)
            .attr("symbol", symbol)
            .attr("urgent", urgent)
            .build()
    }

    #[test]
    fn constants() {
        let e = stock(1, "A", false);
        assert!(Filter::True.matches(&e));
        assert!(!Filter::False.matches(&e));
    }

    #[test]
    fn numeric_comparisons() {
        let e = stock(100, "A", false);
        assert!(Filter::cmp("price", CmpOp::Eq, 100i64).matches(&e));
        assert!(Filter::cmp("price", CmpOp::Ne, 99i64).matches(&e));
        assert!(Filter::cmp("price", CmpOp::Lt, 101i64).matches(&e));
        assert!(Filter::cmp("price", CmpOp::Le, 100i64).matches(&e));
        assert!(Filter::cmp("price", CmpOp::Gt, 99i64).matches(&e));
        assert!(Filter::cmp("price", CmpOp::Ge, 100i64).matches(&e));
        assert!(!Filter::cmp("price", CmpOp::Lt, 100i64).matches(&e));
    }

    #[test]
    fn int_float_promotion() {
        let e = stock(100, "A", false);
        assert!(Filter::cmp("price", CmpOp::Lt, 100.5f64).matches(&e));
        assert!(Filter::cmp("price", CmpOp::Eq, 100.0f64).matches(&e));
    }

    #[test]
    fn string_comparisons() {
        let e = stock(1, "banana", false);
        assert!(Filter::cmp("symbol", CmpOp::Eq, "banana").matches(&e));
        assert!(Filter::cmp("symbol", CmpOp::Gt, "apple").matches(&e));
        assert!(Filter::cmp("symbol", CmpOp::Lt, "cherry").matches(&e));
    }

    #[test]
    fn bool_only_equality() {
        let e = stock(1, "A", true);
        assert!(Filter::cmp("urgent", CmpOp::Eq, true).matches(&e));
        assert!(Filter::cmp("urgent", CmpOp::Ne, false).matches(&e));
        assert!(!Filter::cmp("urgent", CmpOp::Lt, true).matches(&e));
    }

    #[test]
    fn missing_attribute_never_matches() {
        let e = stock(1, "A", false);
        assert!(!Filter::cmp("volume", CmpOp::Gt, 0i64).matches(&e));
        // but its negation does (the filter as a whole can still match)
        assert!(Filter::not(Filter::cmp("volume", CmpOp::Gt, 0i64)).matches(&e));
    }

    #[test]
    fn cross_type_never_matches() {
        let e = stock(1, "A", false);
        assert!(!Filter::cmp("symbol", CmpOp::Eq, 5i64).matches(&e));
        assert!(!Filter::cmp("price", CmpOp::Eq, "1").matches(&e));
        assert!(!Filter::cmp("urgent", CmpOp::Eq, "false").matches(&e));
    }

    #[test]
    fn exists_checks_presence() {
        let e = stock(1, "A", false);
        assert!(Filter::exists("price").matches(&e));
        assert!(!Filter::exists("volume").matches(&e));
    }

    #[test]
    fn boolean_combinators() {
        let e = stock(50, "ABC", true);
        let both = Filter::and(vec![
            Filter::cmp("price", CmpOp::Lt, 100i64),
            Filter::cmp("symbol", CmpOp::Eq, "ABC"),
        ]);
        assert!(both.matches(&e));
        let either = Filter::or(vec![
            Filter::cmp("price", CmpOp::Gt, 100i64),
            Filter::cmp("urgent", CmpOp::Eq, true),
        ]);
        assert!(either.matches(&e));
        assert!(!Filter::and(vec![Filter::True, Filter::False]).matches(&e));
        // empty combinators
        assert!(Filter::and(vec![]).matches(&e));
        assert!(!Filter::or(vec![]).matches(&e));
    }

    #[test]
    fn complexity_counts_atoms() {
        assert_eq!(Filter::True.complexity(), 0);
        assert_eq!(Filter::cmp("a", CmpOp::Eq, 1i64).complexity(), 1);
        let f = Filter::and(vec![
            Filter::cmp("a", CmpOp::Eq, 1i64),
            Filter::or(vec![Filter::exists("b"), Filter::cmp("c", CmpOp::Lt, 2i64)]),
            Filter::not(Filter::exists("d")),
        ]);
        assert_eq!(f.complexity(), 4);
    }

    #[test]
    fn display_renders_language() {
        let f = Filter::and(vec![
            Filter::cmp("price", CmpOp::Lt, 100i64),
            Filter::not(Filter::exists("spam")),
        ]);
        assert_eq!(format!("{f}"), "(price < 100) && (!(exists(spam)))");
        assert_eq!(format!("{}", Filter::And(vec![])), "true");
        assert_eq!(format!("{}", Filter::Or(vec![])), "false");
        assert_eq!(
            format!("{}", Filter::cmp("s", CmpOp::Eq, "x")),
            "s == \"x\""
        );
    }

    #[test]
    fn nan_comparisons_are_false() {
        let e = Event::builder(EventId::new(0, 0), TopicId::new(0))
            .attr("x", f64::NAN)
            .build();
        assert!(!Filter::cmp("x", CmpOp::Eq, f64::NAN).matches(&e));
        assert!(!Filter::cmp("x", CmpOp::Lt, 1.0f64).matches(&e));
        assert!(!Filter::cmp("x", CmpOp::Ge, 1.0f64).matches(&e));
    }
}
