//! # fed-pubsub
//!
//! The publish/subscribe data model of the `fed` workspace: events with
//! typed attributes, topics with optional hierarchy, content-based filters
//! with a textual subscription language, interest functions and dynamic
//! subscription tables.
//!
//! This crate is pure data — no protocol logic, no I/O — so every
//! dissemination system (the fair gossip core and all baselines) shares one
//! notion of "is this event interesting to this peer" (the paper's
//! `I(p, e)`, §2).
//!
//! ## Examples
//!
//! ```
//! use fed_pubsub::event::{Event, EventId};
//! use fed_pubsub::lang::parse_filter;
//! use fed_pubsub::subscription::SubscriptionTable;
//! use fed_pubsub::topic::TopicSpace;
//!
//! let mut topics = TopicSpace::new();
//! let quotes = topics.register("quotes")?;
//!
//! let mut subs = SubscriptionTable::new();
//! subs.subscribe_topic(quotes);
//! subs.subscribe_content(parse_filter(r#"price > 100 && symbol == "FED""#)?);
//!
//! let e = Event::builder(EventId::new(1, 1), quotes)
//!     .attr("price", 250i64)
//!     .attr("symbol", "FED")
//!     .build();
//! assert!(subs.matches(&e));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod filter;
pub mod interest;
pub mod lang;
pub mod subscription;
pub mod topic;

pub use event::{AttrValue, Event, EventId};
pub use filter::{CmpOp, Filter};
pub use interest::Interest;
pub use lang::{parse_filter, ParseError};
pub use subscription::{Subscription, SubscriptionId, SubscriptionTable};
pub use topic::{TopicId, TopicSpace};
