//! Events: the unit of dissemination.
//!
//! An [`Event`] is published once, carries a topic, a set of typed
//! attributes (for content-based filtering) and an abstract payload size
//! (for byte-level contribution accounting). Events are reference-counted:
//! cloning one into a gossip message is O(1), which matters because gossip
//! forwards each event many times.

use crate::topic::TopicId;
use std::fmt;
use std::sync::Arc;

/// Globally unique event identifier: publishing node index + local sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    publisher: u32,
    seq: u32,
}

impl EventId {
    /// Creates an id from the publisher's node index and its local sequence
    /// number.
    pub const fn new(publisher: u32, seq: u32) -> Self {
        EventId { publisher, seq }
    }

    /// The publishing node's index.
    pub const fn publisher(self) -> u32 {
        self.publisher
    }

    /// The publisher-local sequence number.
    pub const fn seq(self) -> u32 {
        self.seq
    }

    /// Packs the id into a `u64` (publisher in the high word).
    pub const fn as_u64(self) -> u64 {
        ((self.publisher as u64) << 32) | self.seq as u64
    }

    /// Unpacks an id from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        EventId {
            publisher: (v >> 32) as u32,
            seq: v as u32,
        }
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}.{}", self.publisher, self.seq)
    }
}

/// A typed attribute value carried by an event and matched by filters.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl AttrValue {
    /// Human-readable type name, used in filter type errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Int(_) => "int",
            AttrValue::Float(_) => "float",
            AttrValue::Str(_) => "str",
            AttrValue::Bool(_) => "bool",
        }
    }

    /// Numeric view: ints and floats compare against each other.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Approximate encoded size in bytes, for message-size accounting.
    pub fn size_bytes(&self) -> usize {
        match self {
            AttrValue::Int(_) => 8,
            AttrValue::Float(_) => 8,
            AttrValue::Str(s) => s.len(),
            AttrValue::Bool(_) => 1,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => write!(f, "{x}"),
            AttrValue::Str(s) => write!(f, "{s:?}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

#[derive(Debug)]
struct EventInner {
    id: EventId,
    topic: TopicId,
    attrs: Vec<(String, AttrValue)>,
    payload_bytes: usize,
}

/// An immutable published event (cheap to clone).
///
/// # Examples
///
/// ```
/// use fed_pubsub::event::{Event, EventId};
/// use fed_pubsub::topic::TopicId;
///
/// let e = Event::builder(EventId::new(3, 1), TopicId::new(7))
///     .attr("symbol", "ABC")
///     .attr("price", 101.5)
///     .payload_bytes(256)
///     .build();
/// assert_eq!(e.topic(), TopicId::new(7));
/// assert!(e.size_bytes() >= 256);
/// ```
#[derive(Debug, Clone)]
pub struct Event {
    inner: Arc<EventInner>,
}

impl Event {
    /// Starts building an event.
    pub fn builder(id: EventId, topic: TopicId) -> EventBuilder {
        EventBuilder {
            id,
            topic,
            attrs: Vec::new(),
            payload_bytes: 0,
        }
    }

    /// A minimal event with no attributes and zero payload.
    pub fn bare(id: EventId, topic: TopicId) -> Self {
        Event::builder(id, topic).build()
    }

    /// The event's unique id.
    pub fn id(&self) -> EventId {
        self.inner.id
    }

    /// The topic the event was published under.
    pub fn topic(&self) -> TopicId {
        self.inner.topic
    }

    /// Attribute lookup by name.
    pub fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.inner
            .attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// All attributes in insertion order.
    pub fn attrs(&self) -> &[(String, AttrValue)] {
        &self.inner.attrs
    }

    /// Abstract wire size: header + attributes + payload.
    pub fn size_bytes(&self) -> usize {
        let header = 16; // id + topic + framing
        let attrs: usize = self
            .inner
            .attrs
            .iter()
            .map(|(k, v)| k.len() + 1 + v.size_bytes())
            .sum();
        header + attrs + self.inner.payload_bytes
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.inner.id == other.inner.id
    }
}
impl Eq for Event {}
impl std::hash::Hash for Event {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.inner.id.hash(state);
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.inner.id, self.inner.topic)
    }
}

/// Builder for [`Event`].
#[derive(Debug)]
pub struct EventBuilder {
    id: EventId,
    topic: TopicId,
    attrs: Vec<(String, AttrValue)>,
    payload_bytes: usize,
}

impl EventBuilder {
    /// Adds an attribute; later values override earlier ones with the same
    /// name at match time (first match wins on lookup, so we replace).
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
        self
    }

    /// Sets the abstract payload size in bytes.
    pub fn payload_bytes(mut self, bytes: usize) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Finishes the event.
    pub fn build(self) -> Event {
        Event {
            inner: Arc::new(EventInner {
                id: self.id,
                topic: self.topic,
                attrs: self.attrs,
                payload_bytes: self.payload_bytes,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_pack_roundtrip() {
        let id = EventId::new(0xDEAD, 0xBEEF);
        assert_eq!(EventId::from_u64(id.as_u64()), id);
        assert_eq!(id.publisher(), 0xDEAD);
        assert_eq!(id.seq(), 0xBEEF);
        assert_eq!(format!("{id}"), "e57005.48879");
    }

    #[test]
    fn event_id_ordering_by_publisher_then_seq() {
        assert!(EventId::new(1, 5) < EventId::new(2, 0));
        assert!(EventId::new(1, 5) < EventId::new(1, 6));
    }

    #[test]
    fn attr_value_conversions_and_types() {
        assert_eq!(AttrValue::from(3i64).type_name(), "int");
        assert_eq!(AttrValue::from(3.5f64).type_name(), "float");
        assert_eq!(AttrValue::from("x").type_name(), "str");
        assert_eq!(AttrValue::from(true).type_name(), "bool");
        assert_eq!(AttrValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(AttrValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(AttrValue::Bool(true).as_f64(), None);
        assert_eq!(AttrValue::Str("s".into()).as_f64(), None);
    }

    #[test]
    fn attr_sizes() {
        assert_eq!(AttrValue::Int(1).size_bytes(), 8);
        assert_eq!(AttrValue::Str("abcd".into()).size_bytes(), 4);
        assert_eq!(AttrValue::Bool(false).size_bytes(), 1);
    }

    #[test]
    fn builder_sets_and_overrides_attrs() {
        let e = Event::builder(EventId::new(1, 1), TopicId::new(0))
            .attr("a", 1i64)
            .attr("b", "hello")
            .attr("a", 2i64)
            .build();
        assert_eq!(e.attr("a"), Some(&AttrValue::Int(2)));
        assert_eq!(e.attr("b"), Some(&AttrValue::Str("hello".into())));
        assert_eq!(e.attr("missing"), None);
        assert_eq!(e.attrs().len(), 2);
    }

    #[test]
    fn size_includes_header_attrs_payload() {
        let bare = Event::bare(EventId::new(0, 0), TopicId::new(0));
        assert_eq!(bare.size_bytes(), 16);
        let e = Event::builder(EventId::new(0, 0), TopicId::new(0))
            .attr("k", 1i64) // 1 + 1 + 8 = 10
            .payload_bytes(100)
            .build();
        assert_eq!(e.size_bytes(), 16 + 10 + 100);
    }

    #[test]
    fn equality_is_by_id() {
        let a = Event::builder(EventId::new(1, 1), TopicId::new(0))
            .attr("x", 1i64)
            .build();
        let b = Event::bare(EventId::new(1, 1), TopicId::new(9));
        assert_eq!(a, b, "same id means same event");
        let c = Event::bare(EventId::new(1, 2), TopicId::new(0));
        assert_ne!(a, c);
    }

    #[test]
    fn clone_is_shallow() {
        let e = Event::builder(EventId::new(1, 1), TopicId::new(0))
            .payload_bytes(1_000_000)
            .build();
        let c = e.clone();
        assert!(Arc::ptr_eq(&e.inner, &c.inner));
    }

    #[test]
    fn display_forms() {
        let e = Event::bare(EventId::new(2, 7), TopicId::new(4));
        assert_eq!(format!("{e}"), "e2.7@t4");
        assert_eq!(format!("{}", AttrValue::Str("hi".into())), "\"hi\"");
        assert_eq!(format!("{}", AttrValue::Int(-3)), "-3");
    }
}
