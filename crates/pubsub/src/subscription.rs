//! Dynamic subscription tables.
//!
//! The paper's API (§2) is `publish(e)` / `subscribe(f, callback)` /
//! `unsubscribe(f)`. [`SubscriptionTable`] is the per-node runtime state
//! behind that API: a mutable set of active subscriptions, each a topic or
//! a content filter, with stable ids so unsubscribe is unambiguous.

use crate::event::Event;
use crate::filter::Filter;
use crate::interest::Interest;
use crate::topic::{TopicId, TopicSpace};
use std::collections::BTreeMap;
use std::fmt;

/// Stable identifier of one active subscription within a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(u64);

impl SubscriptionId {
    /// Raw value (useful for wire encoding).
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One active subscription: a topic or a content filter.
#[derive(Debug, Clone, PartialEq)]
pub enum Subscription {
    /// Topic-based subscription.
    Topic(TopicId),
    /// Content-based subscription.
    Content(Filter),
}

impl Subscription {
    /// Whether `event` matches this subscription (flat topic semantics).
    pub fn matches(&self, event: &Event) -> bool {
        match self {
            Subscription::Topic(t) => event.topic() == *t,
            Subscription::Content(f) => f.matches(event),
        }
    }

    /// Whether `event` matches, resolving topic hierarchy through `space`.
    pub fn matches_in(&self, event: &Event, space: &TopicSpace) -> bool {
        match self {
            Subscription::Topic(t) => space.is_descendant(event.topic(), *t),
            Subscription::Content(f) => f.matches(event),
        }
    }

    /// Matching-cost proxy (atomic conditions).
    pub fn complexity(&self) -> usize {
        match self {
            Subscription::Topic(_) => 1,
            Subscription::Content(f) => f.complexity(),
        }
    }
}

impl fmt::Display for Subscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subscription::Topic(t) => write!(f, "topic({t})"),
            Subscription::Content(filter) => write!(f, "content({filter})"),
        }
    }
}

/// Error returned by [`SubscriptionTable::unsubscribe`] for unknown ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownSubscription(pub SubscriptionId);

impl fmt::Display for UnknownSubscription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown subscription {}", self.0)
    }
}

impl std::error::Error for UnknownSubscription {}

/// A node's active subscriptions.
///
/// # Examples
///
/// ```
/// use fed_pubsub::subscription::SubscriptionTable;
/// use fed_pubsub::topic::TopicId;
/// use fed_pubsub::event::{Event, EventId};
///
/// let mut subs = SubscriptionTable::new();
/// let id = subs.subscribe_topic(TopicId::new(3));
/// assert!(subs.matches(&Event::bare(EventId::new(0, 0), TopicId::new(3))));
/// subs.unsubscribe(id)?;
/// assert!(!subs.matches(&Event::bare(EventId::new(0, 0), TopicId::new(3))));
/// # Ok::<(), fed_pubsub::subscription::UnknownSubscription>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SubscriptionTable {
    subs: BTreeMap<SubscriptionId, Subscription>,
    next_id: u64,
    /// Lifetime counters for maintenance-cost accounting.
    total_subscribes: u64,
    total_unsubscribes: u64,
}

impl SubscriptionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SubscriptionTable::default()
    }

    /// Adds a topic subscription; returns its id.
    pub fn subscribe_topic(&mut self, topic: TopicId) -> SubscriptionId {
        self.insert(Subscription::Topic(topic))
    }

    /// Adds a content subscription; returns its id.
    pub fn subscribe_content(&mut self, filter: Filter) -> SubscriptionId {
        self.insert(Subscription::Content(filter))
    }

    fn insert(&mut self, sub: Subscription) -> SubscriptionId {
        let id = SubscriptionId(self.next_id);
        self.next_id += 1;
        self.total_subscribes += 1;
        self.subs.insert(id, sub);
        id
    }

    /// Removes a subscription.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownSubscription`] if `id` is not active.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<Subscription, UnknownSubscription> {
        match self.subs.remove(&id) {
            Some(sub) => {
                self.total_unsubscribes += 1;
                Ok(sub)
            }
            None => Err(UnknownSubscription(id)),
        }
    }

    /// Number of active subscriptions (the paper's "#filters").
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Returns `true` with no active subscriptions.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Lifetime `(subscribes, unsubscribes)` counts.
    pub fn churn_counts(&self) -> (u64, u64) {
        (self.total_subscribes, self.total_unsubscribes)
    }

    /// Whether any active subscription matches `event` (flat topics).
    pub fn matches(&self, event: &Event) -> bool {
        self.subs.values().any(|s| s.matches(event))
    }

    /// Whether any active subscription matches `event`, resolving topic
    /// hierarchy through `space`.
    pub fn matches_in(&self, event: &Event, space: &TopicSpace) -> bool {
        self.subs.values().any(|s| s.matches_in(event, space))
    }

    /// Ids of subscriptions matching `event` (flat topics).
    pub fn matching_ids(&self, event: &Event) -> Vec<SubscriptionId> {
        self.subs
            .iter()
            .filter(|(_, s)| s.matches(event))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Iterates over `(id, subscription)`.
    pub fn iter(&self) -> impl Iterator<Item = (SubscriptionId, &Subscription)> {
        self.subs.iter().map(|(&id, s)| (id, s))
    }

    /// The set of topics with at least one topic subscription.
    pub fn topics(&self) -> Vec<TopicId> {
        let mut ts: Vec<TopicId> = self
            .subs
            .values()
            .filter_map(|s| match s {
                Subscription::Topic(t) => Some(*t),
                Subscription::Content(_) => None,
            })
            .collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Total matching cost across active subscriptions.
    pub fn complexity(&self) -> usize {
        self.subs.values().map(Subscription::complexity).sum()
    }

    /// Snapshot of the table as a static [`Interest`].
    pub fn as_interest(&self) -> Interest {
        let mut parts = Vec::new();
        let topics = self.topics();
        if !topics.is_empty() {
            parts.push(Interest::topics(topics));
        }
        for sub in self.subs.values() {
            if let Subscription::Content(f) = sub {
                parts.push(Interest::Content(f.clone()));
            }
        }
        match parts.len() {
            0 => Interest::Nothing,
            1 => parts.pop().expect("one element"),
            _ => Interest::Any(parts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::filter::CmpOp;

    fn ev(topic: u32) -> Event {
        Event::builder(EventId::new(0, 0), TopicId::new(topic))
            .attr("x", 5i64)
            .build()
    }

    #[test]
    fn subscribe_and_match() {
        let mut t = SubscriptionTable::new();
        assert!(t.is_empty());
        let id = t.subscribe_topic(TopicId::new(2));
        assert_eq!(t.len(), 1);
        assert!(t.matches(&ev(2)));
        assert!(!t.matches(&ev(3)));
        assert_eq!(t.matching_ids(&ev(2)), vec![id]);
    }

    #[test]
    fn unsubscribe_removes() {
        let mut t = SubscriptionTable::new();
        let id = t.subscribe_topic(TopicId::new(2));
        let sub = t.unsubscribe(id).unwrap();
        assert_eq!(sub, Subscription::Topic(TopicId::new(2)));
        assert!(!t.matches(&ev(2)));
        assert_eq!(t.unsubscribe(id), Err(UnknownSubscription(id)));
        assert_eq!(t.churn_counts(), (1, 1));
    }

    #[test]
    fn ids_are_never_reused() {
        let mut t = SubscriptionTable::new();
        let a = t.subscribe_topic(TopicId::new(1));
        t.unsubscribe(a).unwrap();
        let b = t.subscribe_topic(TopicId::new(1));
        assert_ne!(a, b);
    }

    #[test]
    fn content_subscription_matching() {
        let mut t = SubscriptionTable::new();
        t.subscribe_content(Filter::cmp("x", CmpOp::Gt, 3i64));
        assert!(t.matches(&ev(0)));
        t.subscribe_content(Filter::cmp("x", CmpOp::Gt, 100i64));
        assert_eq!(t.matching_ids(&ev(0)).len(), 1);
        assert_eq!(t.complexity(), 2);
    }

    #[test]
    fn hierarchy_matching() {
        let mut space = TopicSpace::new();
        let root = space.register("root").unwrap();
        let child = space.register_under("root/c", root).unwrap();
        let mut t = SubscriptionTable::new();
        t.subscribe_topic(root);
        assert!(!t.matches(&ev(child.as_u32())), "flat misses child");
        assert!(t.matches_in(&ev(child.as_u32()), &space), "hierarchy hits");
    }

    #[test]
    fn topics_deduplicated_and_sorted() {
        let mut t = SubscriptionTable::new();
        t.subscribe_topic(TopicId::new(5));
        t.subscribe_topic(TopicId::new(1));
        t.subscribe_topic(TopicId::new(5));
        t.subscribe_content(Filter::True);
        assert_eq!(t.topics(), vec![TopicId::new(1), TopicId::new(5)]);
    }

    #[test]
    fn as_interest_snapshot() {
        let mut t = SubscriptionTable::new();
        assert_eq!(t.as_interest(), Interest::Nothing);
        t.subscribe_topic(TopicId::new(1));
        let i = t.as_interest();
        assert!(i.is_interested(&ev(1)));
        assert!(!i.is_interested(&ev(9)));
        t.subscribe_content(Filter::cmp("x", CmpOp::Eq, 5i64));
        let i2 = t.as_interest();
        assert!(i2.is_interested(&ev(9)), "content arm matches any topic");
        assert_eq!(i2.subscription_count(), 2);
    }

    #[test]
    fn iter_and_display() {
        let mut t = SubscriptionTable::new();
        let id = t.subscribe_topic(TopicId::new(3));
        let items: Vec<_> = t.iter().collect();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].0, id);
        assert_eq!(format!("{}", items[0].1), "topic(t3)");
        assert_eq!(format!("{id}"), "s0");
        assert_eq!(
            format!("{}", UnknownSubscription(id)),
            "unknown subscription s0"
        );
    }
}
