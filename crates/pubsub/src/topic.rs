//! Topics and topic hierarchies.
//!
//! A topic is "a filter consisting of a single attribute without conditions"
//! (paper §2). Topics may form a hierarchy (the paper's §4.2 discusses
//! data-aware multicast grouping by *supertopics*): `sports/football` is a
//! subtopic of `sports`, and a subscriber of `sports` is interested in every
//! event published on any descendant.

use std::collections::HashMap;
use std::fmt;

/// Dense topic identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicId(u32);

impl TopicId {
    /// Creates a topic id from a dense index.
    pub const fn new(index: u32) -> Self {
        TopicId(index)
    }

    /// Dense index of the topic.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Raw u32 value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Error returned when registering an invalid topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopicError {
    /// The topic name is already registered.
    Duplicate(String),
    /// The named parent was never registered.
    UnknownParent(String),
    /// Empty names (or empty path segments) are not allowed.
    EmptyName,
}

impl fmt::Display for TopicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicError::Duplicate(name) => write!(f, "topic {name:?} already registered"),
            TopicError::UnknownParent(name) => write!(f, "unknown parent topic {name:?}"),
            TopicError::EmptyName => write!(f, "topic names must be non-empty"),
        }
    }
}

impl std::error::Error for TopicError {}

#[derive(Debug, Clone)]
struct TopicEntry {
    name: String,
    parent: Option<TopicId>,
}

/// Registry of all topics in a system, with optional hierarchy.
///
/// # Examples
///
/// ```
/// use fed_pubsub::topic::TopicSpace;
///
/// let mut space = TopicSpace::new();
/// let sports = space.register("sports")?;
/// let football = space.register_under("sports/football", sports)?;
/// assert!(space.is_descendant(football, sports));
/// # Ok::<(), fed_pubsub::topic::TopicError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TopicSpace {
    entries: Vec<TopicEntry>,
    by_name: HashMap<String, TopicId>,
}

impl TopicSpace {
    /// Creates an empty topic space.
    pub fn new() -> Self {
        TopicSpace::default()
    }

    /// Creates a flat topic space `t0..t{n-1}` named `"topic-<i>"`.
    ///
    /// The workhorse for experiments that only need `n` unrelated topics.
    pub fn flat(n: usize) -> Self {
        let mut space = TopicSpace::new();
        for i in 0..n {
            space
                .register(format!("topic-{i}"))
                .expect("generated names are unique");
        }
        space
    }

    /// Registers a root topic.
    ///
    /// # Errors
    ///
    /// [`TopicError::Duplicate`] if the name exists; [`TopicError::EmptyName`]
    /// if the name is empty.
    pub fn register(&mut self, name: impl Into<String>) -> Result<TopicId, TopicError> {
        self.register_inner(name.into(), None)
    }

    /// Registers a topic under `parent`.
    ///
    /// # Errors
    ///
    /// Same as [`TopicSpace::register`], plus [`TopicError::UnknownParent`]
    /// if `parent` is not registered.
    pub fn register_under(
        &mut self,
        name: impl Into<String>,
        parent: TopicId,
    ) -> Result<TopicId, TopicError> {
        if parent.index() >= self.entries.len() {
            return Err(TopicError::UnknownParent(format!("{parent}")));
        }
        self.register_inner(name.into(), Some(parent))
    }

    fn register_inner(
        &mut self,
        name: String,
        parent: Option<TopicId>,
    ) -> Result<TopicId, TopicError> {
        if name.is_empty() {
            return Err(TopicError::EmptyName);
        }
        if self.by_name.contains_key(&name) {
            return Err(TopicError::Duplicate(name));
        }
        let id = TopicId::new(self.entries.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.entries.push(TopicEntry { name, parent });
        Ok(id)
    }

    /// Number of registered topics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no topics are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks a topic up by name.
    pub fn id_of(&self, name: &str) -> Option<TopicId> {
        self.by_name.get(name).copied()
    }

    /// The name of a topic, if registered.
    pub fn name_of(&self, id: TopicId) -> Option<&str> {
        self.entries.get(id.index()).map(|e| e.name.as_str())
    }

    /// The parent of a topic (`None` for roots and unknown ids).
    pub fn parent_of(&self, id: TopicId) -> Option<TopicId> {
        self.entries.get(id.index()).and_then(|e| e.parent)
    }

    /// Returns `true` if `topic == ancestor` or `ancestor` lies on the
    /// parent chain of `topic`.
    pub fn is_descendant(&self, topic: TopicId, ancestor: TopicId) -> bool {
        let mut cur = Some(topic);
        while let Some(t) = cur {
            if t == ancestor {
                return true;
            }
            cur = self.parent_of(t);
        }
        false
    }

    /// The chain from `topic` up to its root, inclusive.
    pub fn ancestors(&self, topic: TopicId) -> Vec<TopicId> {
        let mut chain = Vec::new();
        let mut cur = Some(topic);
        while let Some(t) = cur {
            if t.index() >= self.entries.len() {
                break;
            }
            chain.push(t);
            cur = self.parent_of(t);
        }
        chain
    }

    /// Ids of all registered topics.
    pub fn ids(&self) -> impl Iterator<Item = TopicId> + '_ {
        (0..self.entries.len()).map(|i| TopicId::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut s = TopicSpace::new();
        let a = s.register("a").unwrap();
        assert_eq!(s.id_of("a"), Some(a));
        assert_eq!(s.name_of(a), Some("a"));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn duplicate_rejected() {
        let mut s = TopicSpace::new();
        s.register("a").unwrap();
        assert_eq!(s.register("a"), Err(TopicError::Duplicate("a".into())));
    }

    #[test]
    fn empty_name_rejected() {
        let mut s = TopicSpace::new();
        assert_eq!(s.register(""), Err(TopicError::EmptyName));
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut s = TopicSpace::new();
        let err = s.register_under("x", TopicId::new(5)).unwrap_err();
        assert!(matches!(err, TopicError::UnknownParent(_)));
    }

    #[test]
    fn hierarchy_descendants() {
        let mut s = TopicSpace::new();
        let sports = s.register("sports").unwrap();
        let foot = s.register_under("sports/football", sports).unwrap();
        let cl = s.register_under("sports/football/cl", foot).unwrap();
        let news = s.register("news").unwrap();
        assert!(s.is_descendant(cl, sports));
        assert!(s.is_descendant(cl, foot));
        assert!(s.is_descendant(cl, cl));
        assert!(!s.is_descendant(sports, cl));
        assert!(!s.is_descendant(news, sports));
        assert_eq!(s.ancestors(cl), vec![cl, foot, sports]);
        assert_eq!(s.parent_of(sports), None);
        assert_eq!(s.parent_of(foot), Some(sports));
    }

    #[test]
    fn flat_space() {
        let s = TopicSpace::flat(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.id_of("topic-3"), Some(TopicId::new(3)));
        assert!(s.ids().all(|t| s.parent_of(t).is_none()));
    }

    #[test]
    fn ancestors_of_unknown_is_empty() {
        let s = TopicSpace::new();
        assert!(s.ancestors(TopicId::new(9)).is_empty());
        assert_eq!(s.name_of(TopicId::new(9)), None);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            format!("{}", TopicError::Duplicate("x".into())),
            "topic \"x\" already registered"
        );
        assert!(format!("{}", TopicError::EmptyName).contains("non-empty"));
    }
}
