//! The textual subscription language.
//!
//! The paper assumes interest "is typically expressed using a subscription
//! language" (§2) without fixing one; this module provides a small,
//! conventional language that parses into [`Filter`]:
//!
//! ```text
//! expr   := or
//! or     := and ( "||" and )*
//! and    := unary ( "&&" unary )*
//! unary  := "!" unary | "(" expr ")" | atom
//! atom   := "true" | "false"
//!         | "exists" "(" ident ")"
//!         | ident op literal
//! op     := "==" | "!=" | "<=" | ">=" | "<" | ">"
//! literal:= integer | float | string | "true" | "false"
//! ```
//!
//! Identifiers match `[A-Za-z_][A-Za-z0-9_.]*`; strings are double-quoted
//! with `\"` and `\\` escapes. [`Filter`]'s `Display` output is always
//! re-parseable (round-trip property tested).
//!
//! # Examples
//!
//! ```
//! use fed_pubsub::lang::parse_filter;
//!
//! let f = parse_filter(r#"price < 100 && symbol == "ABC""#)?;
//! assert_eq!(f.complexity(), 2);
//! # Ok::<(), fed_pubsub::lang::ParseError>(())
//! ```

use crate::event::AttrValue;
use crate::filter::{CmpOp, Filter};
use std::fmt;

/// Error produced when parsing a subscription expression fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the problem was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(position: usize, message: impl Into<String>) -> Self {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    True,
    False,
    Exists,
    AndAnd,
    OrOr,
    Bang,
    LParen,
    RParen,
    Op(CmpOp),
}

#[derive(Debug, Clone)]
struct Spanned {
    token: Token,
    pos: usize,
}

fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    pos: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    pos: i,
                });
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Spanned {
                        token: Token::AndAnd,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "expected '&&'"));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Spanned {
                        token: Token::OrOr,
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "expected '||'"));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Op(CmpOp::Ne),
                        pos: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Bang,
                        pos: i,
                    });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Op(CmpOp::Eq),
                        pos: i,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "expected '==' (single '=' not allowed)"));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Op(CmpOp::Le),
                        pos: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Op(CmpOp::Lt),
                        pos: i,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Op(CmpOp::Ge),
                        pos: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Op(CmpOp::Gt),
                        pos: i,
                    });
                    i += 1;
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                let mut closed = false;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch == '\\' {
                        match bytes.get(i + 1).map(|&b| b as char) {
                            Some('"') => {
                                s.push('"');
                                i += 2;
                            }
                            Some('\\') => {
                                s.push('\\');
                                i += 2;
                            }
                            _ => return Err(ParseError::new(i, "invalid escape sequence")),
                        }
                    } else if ch == '"' {
                        closed = true;
                        i += 1;
                        break;
                    } else {
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
                if !closed {
                    return Err(ParseError::new(start, "unterminated string literal"));
                }
                tokens.push(Spanned {
                    token: Token::Str(s),
                    pos: start,
                });
            }
            '-' | '0'..='9' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if i >= bytes.len() || !(bytes[i] as char).is_ascii_digit() {
                        return Err(ParseError::new(start, "expected digits after '-'"));
                    }
                }
                let mut is_float = false;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_digit() {
                        i += 1;
                    } else if ch == '.' && !is_float {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| {
                        ParseError::new(start, format!("invalid float literal {text:?}"))
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| {
                        ParseError::new(start, format!("invalid integer literal {text:?}"))
                    })?)
                };
                tokens.push(Spanned { token, pos: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' || ch == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                let token = match word {
                    "true" => Token::True,
                    "false" => Token::False,
                    "exists" => Token::Exists,
                    _ => Token::Ident(word.to_owned()),
                };
                tokens.push(Spanned { token, pos: start });
            }
            other => {
                return Err(ParseError::new(
                    i,
                    format!("unexpected character {other:?}"),
                ));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.pos)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        let here = self.here();
        match self.bump() {
            Some(t) if t == *want => Ok(()),
            _ => Err(ParseError::new(here, format!("expected {what}"))),
        }
    }

    fn parse_or(&mut self) -> Result<Filter, ParseError> {
        let mut parts = vec![self.parse_and()?];
        while self.peek() == Some(&Token::OrOr) {
            self.bump();
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Filter::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<Filter, ParseError> {
        let mut parts = vec![self.parse_unary()?];
        while self.peek() == Some(&Token::AndAnd) {
            self.bump();
            parts.push(self.parse_unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Filter::And(parts)
        })
    }

    fn parse_unary(&mut self) -> Result<Filter, ParseError> {
        match self.peek() {
            Some(Token::Bang) => {
                self.bump();
                Ok(Filter::not(self.parse_unary()?))
            }
            Some(Token::LParen) => {
                self.bump();
                let inner = self.parse_or()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(inner)
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<Filter, ParseError> {
        let here = self.here();
        match self.bump() {
            Some(Token::True) => Ok(Filter::True),
            Some(Token::False) => Ok(Filter::False),
            Some(Token::Exists) => {
                self.expect(&Token::LParen, "'(' after exists")?;
                let here = self.here();
                let name = match self.bump() {
                    Some(Token::Ident(name)) => name,
                    _ => return Err(ParseError::new(here, "expected attribute name")),
                };
                self.expect(&Token::RParen, "')' after exists(name")?;
                Ok(Filter::Exists(name))
            }
            Some(Token::Ident(name)) => {
                let here = self.here();
                let op = match self.bump() {
                    Some(Token::Op(op)) => op,
                    _ => {
                        return Err(ParseError::new(
                            here,
                            "expected comparison operator after attribute",
                        ))
                    }
                };
                let here = self.here();
                let value = match self.bump() {
                    Some(Token::Int(v)) => AttrValue::Int(v),
                    Some(Token::Float(v)) => AttrValue::Float(v),
                    Some(Token::Str(v)) => AttrValue::Str(v),
                    Some(Token::True) => AttrValue::Bool(true),
                    Some(Token::False) => AttrValue::Bool(false),
                    _ => return Err(ParseError::new(here, "expected literal value")),
                };
                Ok(Filter::Cmp { name, op, value })
            }
            _ => Err(ParseError::new(here, "expected expression")),
        }
    }
}

/// Parses a subscription expression into a [`Filter`].
///
/// # Errors
///
/// Returns [`ParseError`] with a byte position on any lexical or syntactic
/// problem, including trailing input.
pub fn parse_filter(input: &str) -> Result<Filter, ParseError> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err(ParseError::new(0, "empty expression"));
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        input_len: input.len(),
    };
    let filter = parser.parse_or()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError::new(parser.here(), "unexpected trailing input"));
    }
    Ok(filter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventId};
    use crate::topic::TopicId;

    fn ev() -> Event {
        Event::builder(EventId::new(0, 0), TopicId::new(0))
            .attr("price", 42i64)
            .attr("symbol", "ABC")
            .attr("ratio", 0.5f64)
            .attr("hot", true)
            .build()
    }

    #[test]
    fn parse_simple_comparison() {
        let f = parse_filter("price < 100").unwrap();
        assert_eq!(f, Filter::cmp("price", CmpOp::Lt, 100i64));
        assert!(f.matches(&ev()));
    }

    #[test]
    fn parse_all_operators() {
        for (src, op) in [
            ("a == 1", CmpOp::Eq),
            ("a != 1", CmpOp::Ne),
            ("a < 1", CmpOp::Lt),
            ("a <= 1", CmpOp::Le),
            ("a > 1", CmpOp::Gt),
            ("a >= 1", CmpOp::Ge),
        ] {
            assert_eq!(parse_filter(src).unwrap(), Filter::cmp("a", op, 1i64));
        }
    }

    #[test]
    fn parse_literals() {
        assert_eq!(
            parse_filter("x == -5").unwrap(),
            Filter::cmp("x", CmpOp::Eq, -5i64)
        );
        assert_eq!(
            parse_filter("x == 2.5").unwrap(),
            Filter::cmp("x", CmpOp::Eq, 2.5f64)
        );
        assert_eq!(
            parse_filter(r#"x == "hi""#).unwrap(),
            Filter::cmp("x", CmpOp::Eq, "hi")
        );
        assert_eq!(
            parse_filter("x == true").unwrap(),
            Filter::cmp("x", CmpOp::Eq, true)
        );
        assert_eq!(
            parse_filter("x == false").unwrap(),
            Filter::cmp("x", CmpOp::Eq, false)
        );
    }

    #[test]
    fn parse_string_escapes() {
        let f = parse_filter(r#"x == "a\"b\\c""#).unwrap();
        assert_eq!(f, Filter::cmp("x", CmpOp::Eq, "a\"b\\c"));
    }

    #[test]
    fn parse_precedence_and_binds_tighter() {
        let f = parse_filter("a == 1 || b == 2 && c == 3").unwrap();
        assert_eq!(
            f,
            Filter::Or(vec![
                Filter::cmp("a", CmpOp::Eq, 1i64),
                Filter::And(vec![
                    Filter::cmp("b", CmpOp::Eq, 2i64),
                    Filter::cmp("c", CmpOp::Eq, 3i64),
                ]),
            ])
        );
    }

    #[test]
    fn parse_parens_override() {
        let f = parse_filter("(a == 1 || b == 2) && c == 3").unwrap();
        assert_eq!(
            f,
            Filter::And(vec![
                Filter::Or(vec![
                    Filter::cmp("a", CmpOp::Eq, 1i64),
                    Filter::cmp("b", CmpOp::Eq, 2i64),
                ]),
                Filter::cmp("c", CmpOp::Eq, 3i64),
            ])
        );
    }

    #[test]
    fn parse_negation_and_exists() {
        let f = parse_filter("!exists(spam) && hot == true").unwrap();
        assert!(f.matches(&ev()));
        let g = parse_filter("!!(exists(price))").unwrap();
        assert!(g.matches(&ev()));
    }

    #[test]
    fn parse_constants() {
        assert_eq!(parse_filter("true").unwrap(), Filter::True);
        assert_eq!(parse_filter("false").unwrap(), Filter::False);
    }

    #[test]
    fn dotted_identifiers() {
        let f = parse_filter("order.total >= 10").unwrap();
        assert_eq!(f, Filter::cmp("order.total", CmpOp::Ge, 10i64));
    }

    #[test]
    fn error_positions() {
        let err = parse_filter("price <").unwrap_err();
        assert!(err.message.contains("literal"), "{err}");
        let err = parse_filter("price = 3").unwrap_err();
        assert!(err.message.contains("=="), "{err}");
        assert_eq!(err.position, 6);
        let err = parse_filter("a == 1 b == 2").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
        let err = parse_filter("").unwrap_err();
        assert!(err.message.contains("empty"), "{err}");
        let err = parse_filter("a == \"oops").unwrap_err();
        assert!(err.message.contains("unterminated"), "{err}");
        let err = parse_filter("a & b").unwrap_err();
        assert!(err.message.contains("&&"), "{err}");
        let err = parse_filter("@").unwrap_err();
        assert!(err.message.contains("unexpected character"), "{err}");
        let err = parse_filter("a == -").unwrap_err();
        assert!(err.message.contains("digits"), "{err}");
    }

    #[test]
    fn error_display_includes_position() {
        let err = parse_filter("price = 3").unwrap_err();
        let s = format!("{err}");
        assert!(s.contains("byte 6"), "{s}");
    }

    #[test]
    fn display_round_trip() {
        let sources = [
            "price < 100",
            r#"(price < 100) && (symbol == "ABC")"#,
            "!(exists(spam))",
            "((a == 1) || (b == 2)) && (!(c > 3.5))",
            "true",
            "false",
            "hot == true",
        ];
        for src in sources {
            let f = parse_filter(src).unwrap();
            let printed = format!("{f}");
            let reparsed = parse_filter(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(f, reparsed, "round trip failed for {src:?}");
        }
    }

    #[test]
    fn matches_complex_expression() {
        let f = parse_filter(r#"(price >= 40 && price <= 50 && symbol == "ABC") || ratio > 0.9"#)
            .unwrap();
        assert!(f.matches(&ev()));
    }
}
