//! FIG4 — the paper's Figure 4: the basic push gossip-dissemination
//! algorithm, validated through the classic epidemic curves.
//!
//! Two series:
//!
//! 1. **Reliability vs fanout** at fixed `n`: delivery ratio and atomicity
//!    climb steeply and saturate around `F ≈ ln n` — the bimodal-multicast
//!    shape.
//! 2. **Latency vs system size** at `F = 8`: median delivery latency grows
//!    logarithmically with `n` (epidemic rounds ≈ `log_F n`).
//!
//! Plus the correctness invariant of the algorithm's `ISINTERESTED` line:
//! zero spurious deliveries in every cell.

use crate::harness::build_gossip_spec;
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::SimDuration;
use fed_workload::interest::Appetite;
use fed_workload::scenario::ScenarioSpec;

/// Result of the FIG4 experiment.
#[derive(Debug)]
pub struct Fig4Result {
    /// Reliability vs fanout table.
    pub fanout_table: Table,
    /// Latency vs n table.
    pub scale_table: Table,
    /// (fanout, reliability) series.
    pub fanout_series: Vec<(usize, f64)>,
    /// (n, median latency ms) series.
    pub scale_series: Vec<(usize, f64)>,
    /// Total spurious deliveries across all runs (must be 0).
    pub spurious: u64,
}

/// Runs FIG4: fanout sweep at size `n`, scale sweep over `sizes`.
pub fn run(n: usize, sizes: &[usize], seed: u64) -> Fig4Result {
    let mut spurious = 0u64;

    let mut fanout_table = Table::new(
        format!("FIG4a: delivery vs fanout (n={n}, everyone subscribed)"),
        &["fanout", "reliability", "atomicity", "median latency ms"],
    );
    let mut fanout_series = Vec::new();
    for fanout in [1usize, 2, 3, 4, 6, 8] {
        let mut scenario = ScenarioSpec::fair_gossip(n, seed);
        // Single topic, universal interest: the pure epidemic setting the
        // basic algorithm was designed for.
        scenario.num_topics = 1;
        scenario.appetite = Appetite::Fixed(1);
        scenario.plan.rate_per_sec = 5.0;
        scenario.plan.duration = fed_sim::SimTime::from_secs(10);
        let cfg = GossipConfig::classic(fanout, 16, SimDuration::from_millis(100));
        let mut run = build_gossip_spec(&scenario, cfg, |_| Behavior::Honest);
        run.run();
        let audit = run.audit();
        spurious += audit.spurious();
        let lat = audit.latency_ms();
        fanout_table.row_owned(vec![
            fanout.to_string(),
            fmt_f64(audit.reliability()),
            fmt_f64(audit.atomicity()),
            fmt_f64(lat.median().unwrap_or(f64::NAN)),
        ]);
        fanout_series.push((fanout, audit.reliability()));
    }

    let mut scale_table = Table::new(
        "FIG4b: latency vs system size (fanout=8)".to_string(),
        &["n", "reliability", "median latency ms", "p99 latency ms"],
    );
    let mut scale_series = Vec::new();
    for &size in sizes {
        let mut scenario = ScenarioSpec::fair_gossip(size, seed ^ 0xABCD);
        scenario.num_topics = 1;
        scenario.appetite = Appetite::Fixed(1);
        scenario.plan.rate_per_sec = 5.0;
        scenario.plan.duration = fed_sim::SimTime::from_secs(10);
        let cfg = GossipConfig::classic(8, 16, SimDuration::from_millis(100));
        let mut run = build_gossip_spec(&scenario, cfg, |_| Behavior::Honest);
        run.run();
        let audit = run.audit();
        spurious += audit.spurious();
        let lat = audit.latency_ms();
        scale_table.row_owned(vec![
            size.to_string(),
            fmt_f64(audit.reliability()),
            fmt_f64(lat.median().unwrap_or(f64::NAN)),
            fmt_f64(lat.percentile(99.0).unwrap_or(f64::NAN)),
        ]);
        scale_series.push((size, lat.median().unwrap_or(f64::NAN)));
    }

    Fig4Result {
        fanout_table,
        scale_table,
        fanout_series,
        scale_series,
        spurious,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epidemic_curves_have_the_right_shape() {
        // Sizes start beyond publisher-seed saturation (seeds reach 2F
        // peers directly, flattening latency for tiny systems).
        let r = run(64, &[64, 256], 3);
        assert_eq!(r.spurious, 0, "ISINTERESTED is never violated");
        // Reliability is monotone-ish in fanout and saturates high.
        let first = r.fanout_series.first().unwrap().1;
        let last = r.fanout_series.last().unwrap().1;
        assert!(last > 0.999, "fanout 8 delivers everything: {last}");
        assert!(last >= first, "reliability non-decreasing in fanout");
        // Larger systems take longer but not linearly.
        let (n_small, lat_small) = r.scale_series[0];
        let (n_big, lat_big) = r.scale_series[1];
        assert!(n_big > n_small);
        assert!(
            lat_big < lat_small * 4.0,
            "latency growth must be sublinear: {lat_small} -> {lat_big}"
        );
    }
}
