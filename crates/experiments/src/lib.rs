//! # fed-experiments
//!
//! One module per paper artifact (see DESIGN.md §4 for the full index):
//!
//! | Id | Module | Paper artifact |
//! |---|---|---|
//! | FIG1 | [`fig1`] | Figure 1 — ratio equalization |
//! | FIG2 | [`fig2`] | Figure 2 — topic-based filter-weighted accounting |
//! | FIG3 | [`fig3`] | Figure 3 — fanout & message-size modulation |
//! | FIG4 | [`fig4`] | Figure 4 — basic push gossip, epidemic curves |
//! | T-ARCH | [`arch`] | §4 — fairness of existing architectures |
//! | E-CHURN | [`churn`] | §1/§6 — unfairness-driven churn |
//! | E-SUBS | [`subs`] | §5.1 — subscription maintenance cost |
//! | E-CONV | [`conv`] | §5.2 Q1/Q2 — controller convergence |
//! | E-ROBUST | [`robust`] | §5.2 Q5 — robustness under loss/crash |
//! | E-BIAS | [`bias`] | §5.2 Q6 — audits against lying peers |
//! | E-ABLATE | [`ablation`] | design-choice ablations (correction gain, civic minimum) |
//! | E-SCALE | [`scale`] | sharded-runtime scaling sweep (beyond the paper) |
//! | E-SWEEP | [`sweep`] | generative scenario sweeps, Pareto frontier maps (beyond the paper) |
//! | E-TIMESERIES | [`timeseries`] | per-window fairness/latency transients under churn + flash crowd (beyond the paper) |
//! | PROFILE | [`profile`] | scheduler profiler: phase timings, stall attribution, overhead (beyond the paper) |
//! | TRACE | [`trace`] | per-event dissemination tracing: delivery trees, fairness attribution (beyond the paper) |
//! | RUN / PARITY | [`scenario_run`] | declarative scenario files + cross-engine parity gate (beyond the paper) |
//! | BENCH-DIFF | [`bench_diff`] | regression diff of two `BENCH_*` artifacts (beyond the paper) |
//!
//! Every experiment is a plain function taking `(n, seed)` and returning a
//! result struct with one or more [`fed_metrics::table::Table`]s; the
//! `fed-experiments` binary runs them by id and prints the tables.
//!
//! Beyond the fixed ids, [`scenario_run`] executes **declarative
//! scenario files** (`run <path.toml>` / `run @name`) and checks them
//! through the cross-engine parity gate (`parity <target>` /
//! `parity @all`).
//!
//! [`REGISTRY`] is the single source of truth for the id list: the
//! runner's help text, the default all-experiments sweep and the README's
//! "Available ids" line (guarded by a test) all derive from it, so a new
//! experiment cannot silently go missing from any of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod arch;
pub mod bench_diff;
pub mod bench_json;
pub mod bias;
pub mod churn;
pub mod conv;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod harness;
pub mod profile;
pub mod robust;
pub mod scale;
pub mod scenario_run;
pub mod subs;
pub mod sweep;
pub mod timeseries;
pub mod trace;

/// One runnable experiment: its CLI id and a one-line description.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentInfo {
    /// The CLI id (also the row key in DESIGN.md).
    pub id: &'static str,
    /// One-line description shown by `--help`.
    pub summary: &'static str,
}

/// The experiment registry, in DESIGN.md order — the single source of
/// truth for every id listing (CLI help, default sweep, README).
pub const REGISTRY: &[ExperimentInfo] = &[
    ExperimentInfo {
        id: "fig1",
        summary: "Figure 1 — contribution/benefit ratio equalization",
    },
    ExperimentInfo {
        id: "fig2",
        summary: "Figure 2 — topic-based filter-weighted accounting",
    },
    ExperimentInfo {
        id: "fig3",
        summary: "Figure 3 — fanout & message-size modulation",
    },
    ExperimentInfo {
        id: "fig4",
        summary: "Figure 4 — basic push gossip, epidemic curves",
    },
    ExperimentInfo {
        id: "arch",
        summary: "§4 — fairness of existing architectures",
    },
    ExperimentInfo {
        id: "churn",
        summary: "§1/§6 — unfairness-driven churn",
    },
    ExperimentInfo {
        id: "subs",
        summary: "§5.1 — subscription maintenance cost",
    },
    ExperimentInfo {
        id: "conv",
        summary: "§5.2 Q1/Q2 — controller convergence",
    },
    ExperimentInfo {
        id: "robust",
        summary: "§5.2 Q5 — robustness under loss/crash",
    },
    ExperimentInfo {
        id: "bias",
        summary: "§5.2 Q6 — audits against lying peers",
    },
    ExperimentInfo {
        id: "ablation",
        summary: "design-choice ablations (correction gain, civic minimum)",
    },
    ExperimentInfo {
        id: "scale",
        summary: "sharded-runtime scaling sweep with parity gate",
    },
    ExperimentInfo {
        id: "sweep",
        summary: "generative scenario sweep: Pareto frontier map across all architectures",
    },
    ExperimentInfo {
        id: "timeseries",
        summary: "per-window fairness/latency transients (churn + flash crowd)",
    },
    ExperimentInfo {
        id: "profile",
        summary: "scheduler profiler: phase timings, stall attribution, overhead",
    },
    ExperimentInfo {
        id: "trace",
        summary: "per-event dissemination tracing: delivery trees, fairness attribution",
    },
];

/// The canonical experiment ids, derived from [`REGISTRY`].
pub fn experiment_ids() -> impl Iterator<Item = &'static str> {
    REGISTRY.iter().map(|e| e.id)
}

/// The ids as one space-separated line (help text, error messages, the
/// README's "Available ids" sentence).
pub fn experiment_ids_line() -> String {
    experiment_ids().collect::<Vec<_>>().join(" ")
}

/// Runs one experiment by id at a default size, printing its tables.
///
/// Returns `false` for unknown ids. Sizes are chosen so the full suite
/// finishes in a few minutes on a laptop; the benches sweep larger sizes.
pub fn run_by_id(id: &str, seed: u64) -> bool {
    match id {
        "fig1" => {
            let r = fig1::run(256, seed);
            println!("{}", r.table);
        }
        "fig2" => {
            let r = fig2::run(128, seed);
            println!("{}", r.table);
        }
        "fig3" => {
            let r = fig3::run(128, seed);
            println!("{}", r.table);
        }
        "fig4" => {
            let r = fig4::run(128, &[32, 64, 128, 256, 512], seed);
            println!("{}", r.fanout_table);
            println!("{}", r.scale_table);
        }
        "arch" => {
            let r = arch::run(128, seed);
            println!("{}", r.table);
        }
        "churn" => {
            let r = churn::run(128, 15.0, seed);
            println!("{}", r.table);
        }
        "subs" => {
            let r = subs::run(128, seed);
            println!("{}", r.table);
        }
        "conv" => {
            let r = conv::run(128, seed);
            println!("{}", r.table);
            println!(
                "converged in {} rounds ({} -> {} fanout)\n",
                r.rounds_to_converge, r.fanout_before, r.fanout_after
            );
        }
        "robust" => {
            let r = robust::run(96, seed);
            println!("{}", r.loss_table);
            println!("{}", r.crash_table);
            match bench_json::append_bench_json(bench_json::BENCH_PATH, &r.records) {
                Ok(()) => eprintln!(
                    "appended {} records to {}",
                    r.records.len(),
                    bench_json::BENCH_PATH
                ),
                Err(e) => eprintln!("could not write {}: {e}", bench_json::BENCH_PATH),
            }
        }
        "bias" => {
            let r = bias::run(128, seed);
            println!("{}", r.table);
        }
        "ablation" => {
            let r = ablation::run(128, seed);
            println!("{}", r.gain_table);
            println!("{}", r.civic_table);
        }
        "scale" => {
            let r = scale::run(512, &[1, 2, 4], seed);
            println!("{}", r.table);
            assert!(r.identical, "shard count must not change the outcome");
            match bench_json::append_bench_json(bench_json::BENCH_PATH, &r.records) {
                Ok(()) => eprintln!(
                    "appended {} records to {}",
                    r.records.len(),
                    bench_json::BENCH_PATH
                ),
                Err(e) => eprintln!("could not write {}: {e}", bench_json::BENCH_PATH),
            }
        }
        "sweep" => {
            let r = sweep::run("sweep", seed, sweep::FULL_WORKLOADS);
            println!("{}", r.table);
            if r.degenerate > 0 {
                eprintln!(
                    "sweep: {} degenerate run(s) excluded (no deliveries)",
                    r.degenerate
                );
            }
            assert!(
                r.identical,
                "sweep artifact rows diverged between the engines"
            );
            match sweep::replace_suite_rows(sweep::BENCH_SWEEP_PATH, "sweep", &r.records) {
                Ok(()) => eprintln!(
                    "wrote {} sweep row(s) to {}",
                    r.records.len(),
                    sweep::BENCH_SWEEP_PATH
                ),
                Err(e) => eprintln!("could not write {}: {e}", sweep::BENCH_SWEEP_PATH),
            }
        }
        "timeseries" => {
            let r = timeseries::run(256, 4, seed);
            println!("{}", r.table);
            assert!(r.identical, "telemetry series diverged between the engines");
            match timeseries::write_timeseries_json(timeseries::BENCH_TIMESERIES_PATH, &r.json) {
                Ok(()) => eprintln!("wrote {}", timeseries::BENCH_TIMESERIES_PATH),
                Err(e) => eprintln!("could not write {}: {e}", timeseries::BENCH_TIMESERIES_PATH),
            }
        }
        "profile" => {
            let r = profile::run(256, 4, seed);
            println!("{}", r.summary);
            println!("{}", r.phase_table);
            println!("{}", r.stall_table);
            println!("{}", r.work_table);
            assert!(r.identical, "profiled engines diverged");
            match profile::append_profile_bench(profile::BENCH_PROFILE_PATH, &r.records) {
                Ok(()) => eprintln!(
                    "appended {} record(s) to {}",
                    r.records.len(),
                    profile::BENCH_PROFILE_PATH
                ),
                Err(e) => eprintln!("could not write {}: {e}", profile::BENCH_PROFILE_PATH),
            }
        }
        "trace" => {
            let r = trace::run(256, 4, seed);
            println!("{}", r.summary);
            println!("{}", r.tree_table);
            println!("{}", r.event_table);
            println!("{}", r.attribution_table);
            assert!(r.identical, "traced engines diverged");
            match trace::append_trace_bench(trace::BENCH_TRACE_PATH, &r.records) {
                Ok(()) => eprintln!(
                    "appended {} record(s) to {}",
                    r.records.len(),
                    trace::BENCH_TRACE_PATH
                ),
                Err(e) => eprintln!("could not write {}: {e}", trace::BENCH_TRACE_PATH),
            }
        }
        other => {
            return run_smoke(other, seed)
                || run_profile_smoke(other, seed)
                || run_trace_smoke(other, seed)
                || run_sweep_smoke(other, seed)
        }
    }
    true
}

/// Handles the `smoke[:arch[:n[:shards[:placement[:window]]]]]`
/// pseudo-id: one large-population cluster run of a single architecture
/// (default: splitstream at 100 000 nodes on 8 shards, round-robin
/// placement, adaptive windows), printing a one-line liveness report and
/// appending a record to `BENCH_cluster.json`. `placement` is a
/// [`fed_workload::Placement`] name; `window` is `adaptive` or `fixed`.
/// Not part of [`REGISTRY`], so it never runs in the default
/// all-experiments sweep — CI invokes it explicitly, time-boxed.
fn run_smoke(id: &str, seed: u64) -> bool {
    let mut parts = id.split(':');
    if parts.next() != Some("smoke") {
        return false;
    }
    let arch = match parts.next() {
        None => fed_workload::Architecture::SplitStream,
        Some(name) => match fed_workload::Architecture::parse(name) {
            Some(a) => a,
            None => return false,
        },
    };
    let n: usize = match parts.next() {
        None => 100_000,
        Some(v) => match v.parse() {
            Ok(v) if v > 0 => v,
            _ => return false,
        },
    };
    let shards: usize = match parts.next() {
        None => 8,
        Some(v) => match v.parse() {
            Ok(v) if v > 0 => v,
            _ => return false,
        },
    };
    let placement = match parts.next() {
        None => fed_workload::Placement::RoundRobin,
        Some(name) => match fed_workload::Placement::parse(name) {
            Some(p) => p,
            None => return false,
        },
    };
    let adaptive = match parts.next() {
        None => true,
        Some("adaptive") => true,
        Some("fixed") => false,
        Some(_) => return false,
    };
    if parts.next().is_some() {
        return false;
    }
    let p = scale::smoke_configured(arch, n, shards, placement, adaptive, seed);
    println!(
        "SMOKE {} n={} shards={} placement={} window={}: {} events, {} windows, \
         {} deliveries, reliability {:.4}, {:.0} ms wall ({:.0} events/s)",
        p.arch,
        p.n,
        p.shards,
        p.placement,
        if p.adaptive_window {
            "adaptive"
        } else {
            "fixed"
        },
        p.events,
        p.windows,
        p.deliveries,
        p.reliability,
        p.wall_ms,
        p.events as f64 / (p.wall_ms / 1e3).max(1e-9),
    );
    if let Err(e) = bench_json::append_bench_json(bench_json::BENCH_PATH, &[p.record()]) {
        eprintln!("could not append to {}: {e}", bench_json::BENCH_PATH);
    }
    assert!(p.events > 0, "smoke run processed no events");
    assert!(p.deliveries > 0, "smoke run delivered nothing");
    true
}

/// Handles the `profile-smoke[:arch[:n[:shards]]]` pseudo-id: the smoke
/// configuration run with profiling off then on (default: splitstream at
/// 100 000 nodes on 8 shards), printing the overhead line, appending a
/// record to `BENCH_profile.json` and asserting the enabled profiler
/// stays under [`profile::OVERHEAD_BAR`]. Like `smoke`, not part of
/// [`REGISTRY`] — CI invokes it explicitly, time-boxed.
fn run_profile_smoke(id: &str, seed: u64) -> bool {
    let mut parts = id.split(':');
    if parts.next() != Some("profile-smoke") {
        return false;
    }
    let arch = match parts.next() {
        None => fed_workload::Architecture::SplitStream,
        Some(name) => match fed_workload::Architecture::parse(name) {
            Some(a) => a,
            None => return false,
        },
    };
    let n: usize = match parts.next() {
        None => 100_000,
        Some(v) => match v.parse() {
            Ok(v) if v > 0 => v,
            _ => return false,
        },
    };
    let shards: usize = match parts.next() {
        None => 8,
        Some(v) => match v.parse() {
            Ok(v) if v > 0 => v,
            _ => return false,
        },
    };
    if parts.next().is_some() {
        return false;
    }
    let s = profile::smoke(arch, n, shards, seed);
    let rec = &s.record;
    println!(
        "PROFILE-SMOKE {} n={} shards={}: {} events, {} windows, \
         off {:.0} ms ({:.0} events/s), on {:.0} ms ({:.0} events/s), \
         overhead {:+.1}%",
        rec.arch,
        rec.n,
        rec.shards,
        rec.events,
        rec.windows,
        rec.wall_ms_off,
        rec.events_per_sec_off,
        rec.wall_ms_on,
        rec.events_per_sec_on,
        rec.overhead_frac * 100.0,
    );
    if let Err(e) =
        profile::append_profile_bench(profile::BENCH_PROFILE_PATH, std::slice::from_ref(rec))
    {
        eprintln!("could not append to {}: {e}", profile::BENCH_PROFILE_PATH);
    }
    assert!(rec.events > 0, "profile smoke processed no events");
    assert!(
        crate::scenario_run::outcomes_match(&s.point.off, &s.point.on),
        "profiling changed the outcome"
    );
    assert!(
        rec.overhead_frac < profile::OVERHEAD_BAR,
        "enabled profiler overhead {:.1}% breaches the {:.0}% bar",
        rec.overhead_frac * 100.0,
        profile::OVERHEAD_BAR * 100.0
    );
    true
}

/// Handles the `trace-smoke[:arch[:n[:shards]]]` pseudo-id: the smoke
/// configuration run with tracing off then on (default: splitstream at
/// 100 000 nodes on 8 shards), printing the overhead line, appending a
/// record to `BENCH_trace.json` and asserting the enabled tracer stays
/// under [`trace::OVERHEAD_BAR`]. Like `smoke`, not part of
/// [`REGISTRY`] — CI invokes it explicitly, time-boxed.
fn run_trace_smoke(id: &str, seed: u64) -> bool {
    let mut parts = id.split(':');
    if parts.next() != Some("trace-smoke") {
        return false;
    }
    let arch = match parts.next() {
        None => fed_workload::Architecture::SplitStream,
        Some(name) => match fed_workload::Architecture::parse(name) {
            Some(a) => a,
            None => return false,
        },
    };
    let n: usize = match parts.next() {
        None => 100_000,
        Some(v) => match v.parse() {
            Ok(v) if v > 0 => v,
            _ => return false,
        },
    };
    let shards: usize = match parts.next() {
        None => 8,
        Some(v) => match v.parse() {
            Ok(v) if v > 0 => v,
            _ => return false,
        },
    };
    if parts.next().is_some() {
        return false;
    }
    let s = trace::smoke(arch, n, shards, seed);
    let rec = &s.record;
    println!(
        "TRACE-SMOKE {} n={} shards={}: {} events, {} hops, \
         off {:.0} ms ({:.0} events/s), on {:.0} ms ({:.0} events/s), \
         overhead {:+.1}%",
        rec.arch,
        rec.n,
        rec.shards,
        rec.events,
        rec.hops,
        rec.wall_ms_off,
        rec.events_per_sec_off,
        rec.wall_ms_on,
        rec.events_per_sec_on,
        rec.overhead_frac * 100.0,
    );
    if let Err(e) = trace::append_trace_bench(trace::BENCH_TRACE_PATH, std::slice::from_ref(rec)) {
        eprintln!("could not append to {}: {e}", trace::BENCH_TRACE_PATH);
    }
    assert!(rec.events > 0, "trace smoke processed no events");
    assert!(rec.hops > 0, "trace smoke recorded no hops");
    assert!(
        crate::scenario_run::outcomes_match(&s.point.off, &s.point.on),
        "tracing changed the outcome"
    );
    assert!(
        rec.overhead_frac < trace::OVERHEAD_BAR,
        "enabled tracer overhead {:.1}% breaches the {:.0}% bar",
        rec.overhead_frac * 100.0,
        trace::OVERHEAD_BAR * 100.0
    );
    true
}

/// Handles the `sweep-smoke[:workloads]` pseudo-id: the sweep downscaled
/// to a prefix of the generated workload family (default
/// [`sweep::SMOKE_WORKLOADS`]), written into `BENCH_sweep.json` under
/// the `sweep-smoke` suite. The rows are deterministic virtual-world
/// quantities, so CI regenerates them and diffs against the committed
/// artifact — any drift is a behavior change, not noise. Like `smoke`,
/// not part of [`REGISTRY`] — CI invokes it explicitly, time-boxed.
fn run_sweep_smoke(id: &str, seed: u64) -> bool {
    let mut parts = id.split(':');
    if parts.next() != Some("sweep-smoke") {
        return false;
    }
    let workloads: u64 = match parts.next() {
        None => sweep::SMOKE_WORKLOADS,
        Some(v) => match v.parse() {
            Ok(v) if v > 0 => v,
            _ => return false,
        },
    };
    if parts.next().is_some() {
        return false;
    }
    let r = sweep::run("sweep-smoke", seed, workloads);
    println!("{}", r.table);
    if r.degenerate > 0 {
        eprintln!(
            "sweep-smoke: {} degenerate run(s) excluded (no deliveries)",
            r.degenerate
        );
    }
    assert!(
        r.identical,
        "sweep-smoke artifact rows diverged between the engines"
    );
    assert!(!r.records.is_empty(), "sweep-smoke rendered no rows");
    match sweep::replace_suite_rows(sweep::BENCH_SWEEP_PATH, "sweep-smoke", &r.records) {
        Ok(()) => eprintln!(
            "wrote {} sweep-smoke row(s) to {}",
            r.records.len(),
            sweep::BENCH_SWEEP_PATH
        ),
        Err(e) => eprintln!("could not write {}: {e}", sweep::BENCH_SWEEP_PATH),
    }
    true
}

/// The directory generated trace artifacts land in by default —
/// gitignored, so ad-hoc exports never pollute the work tree (see
/// docs/OBSERVABILITY.md "Trace artifacts").
pub const TRACES_DIR: &str = "traces";

/// Writes a trace artifact, creating [`TRACES_DIR`] on demand when the
/// path points into it.
fn write_trace_file(path: &str, contents: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write trace {path}: {e}"))?;
    eprintln!("wrote {path} (load in https://ui.perfetto.dev)");
    Ok(())
}

/// Executes one scenario file (`run <path.toml>` / `run @name`) and
/// prints its report tables. `force_profile` (the CLI's `--profile`
/// flag) turns profiling on even when the file has no `[profile]`
/// section; `force_trace` (`--trace`) does the same for per-event
/// dissemination tracing.
///
/// When profiling is on, the per-shard phase/stall/work tables print
/// after the regular report and the scheduler's Chrome Trace Event JSON
/// is written to the file's `[profile] trace` path, defaulting to
/// `traces/TRACE_<name>.json`. When tracing is on, the delivery-tree,
/// worst-stretch and forwarding-attribution tables print too and the
/// per-event hop timeline is written to the file's `[trace] export`
/// path, defaulting to `traces/TRACE_<name>.events.json` (distinct
/// defaults, so a run with both enabled never overwrites one artifact
/// with the other).
///
/// The scenario file is self-contained — its own `seed` applies, not the
/// runner's `--seed` flag.
///
/// # Errors
///
/// Returns a message when the target cannot be resolved, read or parsed,
/// or a trace file cannot be written.
pub fn run_scenario_target(
    target: &str,
    force_profile: bool,
    force_trace: bool,
) -> Result<(), String> {
    let path = scenario_run::resolve_target(target);
    let file = scenario_run::load_file(&path)?;
    let name = scenario_run::display_name(&path, &file);
    if let Some(summary) = &file.summary {
        eprintln!("{name}: {summary}");
    }
    let mut spec = file.spec.clone();
    if force_profile && spec.profile.is_none() {
        spec.profile = Some(fed_profile::ProfileSpec::default());
    }
    if force_trace && spec.trace.is_none() {
        spec.trace = Some(fed_trace::TraceSpec::default());
    }
    let report = scenario_run::run_scenario(&name, &spec);
    println!("{}", report.summary);
    println!("{}", report.fairness);
    println!("{}", report.latency);
    if let Some(t) = &report.telemetry {
        println!("{t}");
    }
    if let Some(t) = &report.membership {
        println!("{t}");
    }
    for t in &report.profile_tables {
        println!("{t}");
    }
    for t in &report.trace_tables {
        println!("{t}");
    }
    if let Some(profile) = &report.outcome.profiling {
        let trace_path = spec
            .profile
            .as_ref()
            .and_then(|p| p.trace.clone())
            .unwrap_or_else(|| format!("{TRACES_DIR}/TRACE_{name}.json"));
        write_trace_file(&trace_path, &fed_profile::chrome_trace_json(profile, &name))?;
    }
    if let Some(hops) = &report.outcome.trace {
        let export_path = spec
            .trace
            .as_ref()
            .and_then(|t| t.export.clone())
            .unwrap_or_else(|| format!("{TRACES_DIR}/TRACE_{name}.events.json"));
        write_trace_file(&export_path, &fed_trace::perfetto_trace_json(hops, &name))?;
    }
    if report.outcome.total_deliveries() == 0 {
        return Err(format!(
            "{name}: scenario delivered nothing — no publication reached a subscriber \
             (check the publication rate/duration against the interest profile)"
        ));
    }
    Ok(())
}

/// Runs the `bench-diff` command: diff a fresh `BENCH_*` artifact
/// against a committed one and fail on throughput regressions past
/// `threshold` (default [`bench_diff::DEFAULT_THRESHOLD`]).
///
/// # Errors
///
/// Returns a message when a file cannot be loaded or any row regressed.
pub fn bench_diff_target(old: &str, new: &str, threshold: Option<f64>) -> Result<(), String> {
    let threshold = threshold.unwrap_or(bench_diff::DEFAULT_THRESHOLD);
    let report = bench_diff::diff_files(old, new, threshold)?;
    println!("{}", report.table);
    eprintln!(
        "bench-diff: compared {} configuration(s), {} regression(s)",
        report.compared,
        report.regressions.len()
    );
    if report.regressions.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "bench-diff: measurements regressed past {:.0}% on: {}",
            threshold * 100.0,
            report.regressions.join("; ")
        ))
    }
}

/// Runs the cross-engine parity gate (`parity <target>` / `parity @all`)
/// over one scenario file or the whole library, printing one table per
/// scenario.
///
/// # Errors
///
/// Returns a message when a target cannot be loaded, or when any
/// engine/shard combination diverges from the sequential baseline.
pub fn parity_target(target: &str) -> Result<(), String> {
    let paths = if target == "@all" {
        let paths = scenario_run::library()?;
        if paths.is_empty() {
            return Err(format!(
                "scenario library {} holds no .toml files",
                scenario_run::scenarios_dir().display()
            ));
        }
        paths
    } else {
        vec![scenario_run::resolve_target(target)]
    };
    let mut failures = Vec::new();
    for path in &paths {
        let file = scenario_run::load_file(path)?;
        let name = scenario_run::display_name(path, &file);
        let shards = scenario_run::parity_shards_for(&file.spec);
        let report = scenario_run::parity_gate(&name, &file.spec, &shards);
        println!("{}", report.table);
        if !report.identical {
            failures.push(name);
        }
    }
    if failures.is_empty() {
        eprintln!(
            "parity gate passed for {} scenario(s) at shards {:?} plus each file's own count",
            paths.len(),
            scenario_run::PARITY_SHARDS
        );
        Ok(())
    } else {
        Err(format!(
            "parity gate FAILED for: {} — engines diverged",
            failures.join(", ")
        ))
    }
}
