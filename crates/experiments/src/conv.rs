//! E-CONV — §5.2 Q1/Q2: "How can the fanout [and message size] be
//! dynamically adapted to ensure quick convergence?"
//!
//! A step change in interest: at `t_shift` a cold node subscribes to the
//! busy topic. We track its fanout round-by-round and measure how many
//! rounds the controller needs to move from the floor to (near) its new
//! steady allocation.

use fed_core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed_membership::FullMembership;
use fed_metrics::table::{fmt_f64, Table};
use fed_pubsub::{Event, EventId, TopicId};
use fed_sim::network::{LatencyModel, NetworkModel};
use fed_sim::{NodeId, SimDuration, SimTime, Simulation};

type Node = GossipNode<FullMembership>;

/// Result of the E-CONV experiment.
#[derive(Debug)]
pub struct ConvResult {
    /// Fanout trajectory of the shifted node (seconds, fanout).
    pub table: Table,
    /// Rounds until the shifted node's allocation reached 80% of its final
    /// value after the subscription flip.
    pub rounds_to_converge: u64,
    /// The node's fanout just before the flip.
    pub fanout_before: f64,
    /// The node's fanout at the end.
    pub fanout_after: f64,
}

/// Runs E-CONV at population size `n`.
pub fn run(n: usize, seed: u64) -> ConvResult {
    let period = SimDuration::from_millis(100);
    let cfg = GossipConfig::fair(8, 16, period);
    let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(10)));
    let mut sim: Simulation<Node> = Simulation::new(n, net, seed, {
        let cfg = cfg.clone();
        move |id, _| GossipNode::new(id, cfg.clone(), FullMembership::new(id, n))
    });
    let topic = TopicId::new(0);
    // A quarter of the population is warm (subscribed from the start); the
    // observed node (index 0) starts cold.
    for i in 1..=(n / 4) {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            GossipCmd::SubscribeTopic(topic),
        );
    }
    // Steady publication stream from node 1.
    let horizon = SimTime::from_secs(60);
    let mut k = 0u32;
    let mut t = SimTime::from_millis(500);
    while t < horizon {
        sim.schedule_command(
            t,
            NodeId::new(1),
            GossipCmd::Publish(Event::bare(EventId::new(1, k), topic)),
        );
        k += 1;
        t += SimDuration::from_millis(50);
    }
    let t_shift = SimTime::from_secs(30);
    sim.schedule_command(t_shift, NodeId::new(0), GossipCmd::SubscribeTopic(topic));

    // Sample node 0's fanout every second.
    let mut table = Table::new(
        format!("E-CONV: fanout trajectory of a node whose interest flips at t=30s (n={n})"),
        &["t (s)", "fanout(node 0)", "est. mean benefit"],
    );
    let mut trajectory: Vec<(u64, f64)> = Vec::new();
    for sec in 1..=60u64 {
        sim.run_until(SimTime::from_secs(sec));
        let node = sim.node(NodeId::new(0)).expect("node 0 exists");
        let f = node.fanout() as f64;
        trajectory.push((sec, f));
        if sec % 5 == 0 || ((28..=40).contains(&sec)) {
            table.row_owned(vec![
                sec.to_string(),
                fmt_f64(f),
                fmt_f64(node.estimated_mean_benefit()),
            ]);
        }
    }
    let before = trajectory
        .iter()
        .filter(|(s, _)| *s >= 25 && *s < 30)
        .map(|(_, f)| *f)
        .sum::<f64>()
        / 5.0;
    let after = trajectory
        .iter()
        .filter(|(s, _)| *s > 50)
        .map(|(_, f)| *f)
        .sum::<f64>()
        / trajectory.iter().filter(|(s, _)| *s > 50).count().max(1) as f64;
    let threshold = before + 0.8 * (after - before);
    let converged_at = trajectory
        .iter()
        .find(|(s, f)| *s > 30 && *f >= threshold)
        .map(|(s, _)| *s)
        .unwrap_or(60);
    // Rounds = seconds / period (100 ms → 10 rounds per second).
    let rounds_to_converge = (converged_at - 30) * 10;
    ConvResult {
        table,
        rounds_to_converge,
        fanout_before: before,
        fanout_after: after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interest_shift_raises_fanout_quickly() {
        let r = run(64, 23);
        assert!(
            r.fanout_after > r.fanout_before + 1.0,
            "subscribing must raise the allocation: {} -> {}\n{}",
            r.fanout_before,
            r.fanout_after,
            r.table
        );
        assert!(
            r.rounds_to_converge <= 150,
            "convergence within 15 s of rounds: {} rounds\n{}",
            r.rounds_to_converge,
            r.table
        );
    }
}
