//! E-SCALE — sharded runtime scaling, across architectures.
//!
//! Runs the identical scenario on the `fed-cluster` sharded runtime at
//! increasing shard counts — for fair gossip *and* every structured
//! baseline (broker, Scribe, DKS, DAM, SplitStream) — and reports wall-clock
//! time, event throughput, barrier-window count and the
//! fairness/reliability metrics. Because the sharded runtime is
//! bit-for-bit deterministic, every row of one architecture must show the
//! *same* virtual-world outcome (deliveries, fairness) — the `identical`
//! flag asserts it — while wall-clock time drops as shards spread over
//! cores. Every point is timed twice and the faster wall clock kept,
//! the same noise discipline as the `profile-smoke` overhead gate. On a
//! single-core machine the sharded rows only add barrier overhead; the
//! speedup column is meaningful on multi-core hardware.
//!
//! [`smoke`] is the large-population entry point (100 k+ nodes): one
//! architecture, one shard count, a deliberately light publication plan,
//! returning enough to assert liveness — used by the CI smoke job.

use crate::bench_json::BenchRecord;
use crate::harness::{run_architecture, EngineKind};
use fed_core::ledger::RatioSpec;
use fed_metrics::fairness::ratio_report;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::SimTime;
use fed_workload::pubs::PubPlan;
use fed_workload::scenario::{Architecture, Placement, ScenarioSpec};
use std::time::Instant;

/// One row of the scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Architecture of this run.
    pub arch: Architecture,
    /// Shard count of this run.
    pub shards: usize,
    /// Wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Events processed (identical across one architecture's rows by
    /// construction).
    pub events: u64,
    /// Barrier windows executed.
    pub windows: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock speedup versus the architecture's 1-shard row.
    pub speedup: f64,
}

/// One architecture's shard-invariant outcome summary.
#[derive(Debug, Clone)]
pub struct ArchScale {
    /// The architecture.
    pub arch: Architecture,
    /// Jain fairness index of the (shared) outcome.
    pub jain: f64,
    /// Delivery reliability of the (shared) outcome.
    pub reliability: f64,
    /// The sweep points, in shard-count order.
    pub points: Vec<ScalePoint>,
    /// Whether every shard count produced identical per-node deliveries,
    /// ledgers and transport statistics (must be `true`).
    pub identical: bool,
}

/// Result of the E-SCALE experiment.
#[derive(Debug)]
pub struct ScaleResult {
    /// Summary table (one row per architecture × shard count).
    pub table: Table,
    /// Per-architecture sweeps, in [`Architecture::SWEEP`] order.
    pub archs: Vec<ArchScale>,
    /// Whether *every* architecture was shard-invariant.
    pub identical: bool,
    /// Machine-readable records of every point, for `BENCH_cluster.json`.
    pub records: Vec<BenchRecord>,
}

/// The scenario the sweep runs: the standard workload with a shorter
/// publication phase so large populations stay tractable.
pub fn scale_spec(n: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::fair_gossip(n, seed);
    spec.plan = PubPlan {
        rate_per_sec: 10.0,
        duration: SimTime::from_secs(5),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: None,
    };
    spec
}

/// Per-node observable fingerprint used for the shard-invariance check.
type Fingerprint = Vec<(u64, u64, usize)>;

/// Runs one architecture's sweep at population size `n` over
/// `shard_counts`.
pub fn run_arch(arch: Architecture, n: usize, shard_counts: &[usize], seed: u64) -> ArchScale {
    let mut points = Vec::new();
    let mut identical = true;
    let mut baseline_fingerprint: Option<Fingerprint> = None;
    let mut baseline_wall = 0.0f64;
    let mut jain = 0.0;
    let mut reliability = 0.0;
    for &shards in shard_counts {
        let spec = scale_spec(n, seed).with_arch(arch).with_shards(shards);
        // Two timed runs per point, keeping the faster wall clock — the
        // same noise discipline as the profile-smoke overhead gate. The
        // outcomes are bit-identical by determinism, so either serves.
        let start = Instant::now();
        let outcome = run_architecture(&spec, EngineKind::Cluster);
        let mut wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let _ = run_architecture(&spec, EngineKind::Cluster);
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        // The per-node fingerprint must not depend on the shard count.
        let fingerprint: Fingerprint = outcome
            .stats
            .iter()
            .zip(&outcome.deliveries)
            .map(|(st, log)| (st.msgs_sent, st.msgs_received, log.len()))
            .collect();
        match &baseline_fingerprint {
            None => {
                baseline_fingerprint = Some(fingerprint);
                baseline_wall = wall_ms;
                let audit = outcome.audit();
                let report = ratio_report(outcome.ledgers.iter(), &RatioSpec::topic_based());
                jain = report.jain;
                reliability = audit.reliability();
            }
            Some(base) => identical &= *base == fingerprint,
        }
        points.push(ScalePoint {
            arch,
            shards: outcome.shards,
            wall_ms,
            events: outcome.events,
            windows: outcome.windows,
            events_per_sec: outcome.events as f64 / (wall_ms / 1e3).max(1e-9),
            speedup: baseline_wall / wall_ms.max(1e-9),
        });
    }
    ArchScale {
        arch,
        jain,
        reliability,
        points,
        identical,
    }
}

/// The small-n sharding regression gate: a synthetic `shard-gate`
/// record whose `events_per_sec` field carries the **4-shard / 1-shard
/// throughput ratio** of one architecture's sweep (not an absolute
/// rate). `bench-diff` reads `events_per_sec`, so committing this row to
/// `BENCH_cluster.json` makes any future collapse of the ratio — the
/// "fair-gossip 512 loses throughput going 1 → 4 shards" bug — fail the
/// CI diff instead of hiding inside two noisy absolute measurements.
/// Returns `None` when the sweep lacks a 1-shard or 4-shard point.
pub fn shard_gate_record(sweep: &ArchScale, n: usize, spec: &ScenarioSpec) -> Option<BenchRecord> {
    let one = sweep.points.iter().find(|p| p.shards == 1)?;
    let four = sweep.points.iter().find(|p| p.shards == 4)?;
    let ratio = four.events_per_sec / one.events_per_sec.max(1e-9);
    Some(BenchRecord {
        suite: "shard-gate".into(),
        arch: sweep.arch.name().into(),
        n,
        shards: 4,
        placement: spec.placement.name().into(),
        adaptive_window: spec.adaptive_window,
        telemetry: spec.telemetry.is_some(),
        events: four.events,
        windows: four.windows,
        wall_ms: four.wall_ms,
        events_per_sec: ratio,
    })
}

/// Runs the scaling sweep for every sweep architecture at population
/// size `n` over `shard_counts`.
pub fn run(n: usize, shard_counts: &[usize], seed: u64) -> ScaleResult {
    let mut table = Table::new(
        format!("E-SCALE: sharded runtime sweep (n={n})"),
        &[
            "arch",
            "shards",
            "wall_ms",
            "events",
            "windows",
            "events/s",
            "speedup",
            "jain",
            "reliability",
            "identical",
        ],
    );
    let mut archs = Vec::new();
    let mut identical = true;
    let mut records = Vec::new();
    let spec_defaults = scale_spec(n, seed);
    for arch in Architecture::SWEEP {
        let sweep = run_arch(arch, n, shard_counts, seed);
        identical &= sweep.identical;
        for p in &sweep.points {
            table.row_owned(vec![
                p.arch.name().to_string(),
                p.shards.to_string(),
                fmt_f64(p.wall_ms),
                p.events.to_string(),
                p.windows.to_string(),
                fmt_f64(p.events_per_sec),
                fmt_f64(p.speedup),
                fmt_f64(sweep.jain),
                fmt_f64(sweep.reliability),
                sweep.identical.to_string(),
            ]);
            records.push(BenchRecord {
                suite: "scale".into(),
                arch: p.arch.name().into(),
                n,
                shards: p.shards,
                placement: spec_defaults.placement.name().into(),
                adaptive_window: spec_defaults.adaptive_window,
                telemetry: spec_defaults.telemetry.is_some(),
                events: p.events,
                windows: p.windows,
                wall_ms: p.wall_ms,
                events_per_sec: p.events_per_sec,
            });
        }
        if let Some(gate) = shard_gate_record(&sweep, n, &spec_defaults) {
            records.push(gate);
        }
        archs.push(sweep);
    }
    ScaleResult {
        table,
        archs,
        identical,
        records,
    }
}

/// Outcome of a large-population smoke run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmokePoint {
    /// Architecture of the run.
    pub arch: Architecture,
    /// Population size.
    pub n: usize,
    /// Shard count.
    pub shards: usize,
    /// Placement policy of the run.
    pub placement: Placement,
    /// Whether adaptive window sizing was on.
    pub adaptive_window: bool,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Events processed.
    pub events: u64,
    /// Barrier windows executed.
    pub windows: u64,
    /// Total deliveries across all nodes.
    pub deliveries: usize,
    /// Delivery reliability.
    pub reliability: f64,
}

impl SmokePoint {
    /// The point as a `BENCH_cluster.json` record.
    pub fn record(&self) -> BenchRecord {
        BenchRecord {
            suite: "smoke".into(),
            arch: self.arch.name().into(),
            n: self.n,
            shards: self.shards,
            placement: self.placement.name().into(),
            adaptive_window: self.adaptive_window,
            telemetry: false,
            events: self.events,
            windows: self.windows,
            wall_ms: self.wall_ms,
            events_per_sec: self.events as f64 / (self.wall_ms / 1e3).max(1e-9),
        }
    }
}

/// Runs one architecture once at a large population with a deliberately
/// light publication plan (a handful of events), asserting liveness
/// rather than statistics. This is the 100 k-node CI smoke entry point,
/// using the default scheduler knobs (round-robin placement, adaptive
/// windows).
pub fn smoke(arch: Architecture, n: usize, shards: usize, seed: u64) -> SmokePoint {
    smoke_configured(arch, n, shards, Placement::RoundRobin, true, seed)
}

/// The large-population smoke scenario: the standard workload with a
/// deliberately light publication plan, so 100 k-node runs stay
/// tractable. Shared with the `profile-smoke` overhead measurement.
pub fn smoke_spec(
    arch: Architecture,
    n: usize,
    shards: usize,
    placement: Placement,
    adaptive_window: bool,
    seed: u64,
) -> ScenarioSpec {
    let mut spec = ScenarioSpec::standard(arch, n, seed)
        .with_shards(shards)
        .with_placement(placement)
        .with_adaptive_window(adaptive_window);
    spec.plan = PubPlan {
        rate_per_sec: 5.0,
        duration: SimTime::from_secs(2),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: None,
    };
    spec
}

/// [`smoke`] with explicit scheduler knobs, for sweeping placement and
/// window policies at scale.
pub fn smoke_configured(
    arch: Architecture,
    n: usize,
    shards: usize,
    placement: Placement,
    adaptive_window: bool,
    seed: u64,
) -> SmokePoint {
    let spec = smoke_spec(arch, n, shards, placement, adaptive_window, seed);
    let start = Instant::now();
    let outcome = run_architecture(&spec, EngineKind::Cluster);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let audit = outcome.audit();
    SmokePoint {
        arch,
        n,
        shards: outcome.shards,
        placement,
        adaptive_window,
        wall_ms,
        events: outcome.events,
        windows: outcome.windows,
        deliveries: outcome.total_deliveries(),
        reliability: audit.reliability(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_shard_invariant_for_every_architecture() {
        let r = run(48, &[1, 2, 4], 42);
        assert!(r.identical, "shard count changed a virtual outcome");
        assert_eq!(r.archs.len(), Architecture::SWEEP.len());
        for sweep in &r.archs {
            assert!(sweep.identical, "{} diverged across shards", sweep.arch);
            assert_eq!(sweep.points.len(), 3);
            let events = sweep.points[0].events;
            assert!(
                sweep.points.iter().all(|p| p.events == events),
                "{} event counts differ across shard counts",
                sweep.arch
            );
            assert!(
                sweep.reliability > 0.95,
                "{} r={}",
                sweep.arch,
                sweep.reliability
            );
        }
    }

    #[test]
    fn shard_gate_row_carries_the_throughput_ratio() {
        let r = run(48, &[1, 2, 4], 42);
        let gates: Vec<_> = r
            .records
            .iter()
            .filter(|rec| rec.suite == "shard-gate")
            .collect();
        assert_eq!(gates.len(), Architecture::SWEEP.len());
        for gate in gates {
            assert_eq!(gate.shards, 4);
            assert!(
                gate.events_per_sec > 0.0,
                "{}: gate ratio must be positive",
                gate.arch
            );
        }
        // Sweeps without both endpoints produce no gate row.
        let sweep = run_arch(Architecture::FairGossip, 48, &[2], 42);
        let spec = scale_spec(48, 42);
        assert!(shard_gate_record(&sweep, 48, &spec).is_none());
    }

    #[test]
    fn smoke_runs_a_baseline() {
        let p = smoke(Architecture::SplitStream, 256, 4, 7);
        assert!(p.events > 0);
        assert!(p.deliveries > 0);
        assert!(p.windows > 0, "cluster path must be exercised");
        assert!(p.reliability > 0.95, "r={}", p.reliability);
    }
}
