//! E-SCALE — sharded runtime scaling.
//!
//! Runs the identical fair-gossip scenario on the `fed-cluster` sharded
//! runtime at increasing shard counts and reports wall-clock time, event
//! throughput, barrier-window count and the fairness/reliability metrics.
//! Because the sharded runtime is bit-for-bit deterministic, every row
//! must show the *same* virtual-world outcome (deliveries, fairness) —
//! the `identical` flag asserts it — while wall-clock time drops as
//! shards spread over cores. On a single-core machine the sharded rows
//! only add barrier overhead; the speedup column is meaningful on
//! multi-core hardware.

use crate::harness::build_gossip_cluster;
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_core::ledger::RatioSpec;
use fed_metrics::fairness::ratio_report;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::{SimDuration, SimTime};
use fed_workload::pubs::PubPlan;
use fed_workload::scenario::ScenarioSpec;
use std::time::Instant;

/// One row of the scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Shard count of this run.
    pub shards: usize,
    /// Wall-clock milliseconds for the run.
    pub wall_ms: f64,
    /// Events processed (identical across rows by construction).
    pub events: u64,
    /// Barrier windows executed.
    pub windows: u64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Wall-clock speedup versus the 1-shard row.
    pub speedup: f64,
}

/// Result of the E-SCALE experiment.
#[derive(Debug)]
pub struct ScaleResult {
    /// Summary table (one row per shard count).
    pub table: Table,
    /// The sweep points, in shard-count order.
    pub points: Vec<ScalePoint>,
    /// Whether every shard count produced identical per-node deliveries
    /// and transport statistics (must be `true`).
    pub identical: bool,
    /// Jain fairness index of the (shared) outcome.
    pub jain: f64,
    /// Delivery reliability of the (shared) outcome.
    pub reliability: f64,
}

/// The scenario the sweep runs: the standard fair-gossip workload with a
/// shorter publication phase so large populations stay tractable.
pub fn scale_spec(n: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::fair_gossip(n, seed);
    spec.plan = PubPlan {
        rate_per_sec: 10.0,
        duration: SimTime::from_secs(5),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
    };
    spec
}

/// Runs the scaling sweep at population size `n` over `shard_counts`.
pub fn run(n: usize, shard_counts: &[usize], seed: u64) -> ScaleResult {
    let mut table = Table::new(
        format!("E-SCALE: sharded runtime sweep (n={n})"),
        &[
            "shards",
            "wall_ms",
            "events",
            "windows",
            "events/s",
            "speedup",
            "jain",
            "reliability",
            "identical",
        ],
    );
    let config = GossipConfig::fair(4, 16, SimDuration::from_millis(100));
    let mut points = Vec::new();
    let mut identical = true;
    let mut baseline_fingerprint: Option<Vec<(u64, u64, usize)>> = None;
    let mut baseline_wall = 0.0f64;
    let mut jain = 0.0;
    let mut reliability = 0.0;
    for &shards in shard_counts {
        let spec = scale_spec(n, seed).with_shards(shards);
        let mut run = build_gossip_cluster(&spec, config.clone(), |_| Behavior::Honest);
        let start = Instant::now();
        run.run();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        // The per-node fingerprint must not depend on the shard count.
        let fingerprint: Vec<(u64, u64, usize)> = run
            .sim
            .nodes()
            .map(|(id, node)| {
                let st = run.sim.transport_stats(id);
                (st.msgs_sent, st.msgs_received, node.deliveries().len())
            })
            .collect();
        let same = match &baseline_fingerprint {
            None => {
                baseline_fingerprint = Some(fingerprint);
                baseline_wall = wall_ms;
                let audit = run.audit();
                let ledgers = run.ledgers();
                let report = ratio_report(ledgers.iter().copied(), &RatioSpec::topic_based());
                jain = report.jain;
                reliability = audit.reliability();
                true
            }
            Some(base) => *base == fingerprint,
        };
        identical &= same;
        let point = ScalePoint {
            shards: run.sim.num_shards(),
            wall_ms,
            events: run.sim.events_processed(),
            windows: run.sim.windows(),
            events_per_sec: run.sim.events_processed() as f64 / (wall_ms / 1e3).max(1e-9),
            speedup: baseline_wall / wall_ms.max(1e-9),
        };
        table.row_owned(vec![
            point.shards.to_string(),
            fmt_f64(point.wall_ms),
            point.events.to_string(),
            point.windows.to_string(),
            fmt_f64(point.events_per_sec),
            fmt_f64(point.speedup),
            fmt_f64(jain),
            fmt_f64(reliability),
            same.to_string(),
        ]);
        points.push(point);
    }
    ScaleResult {
        table,
        points,
        identical,
        jain,
        reliability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_shard_invariant() {
        let r = run(48, &[1, 2, 4], 42);
        assert!(r.identical, "shard count changed the virtual outcome");
        assert_eq!(r.points.len(), 3);
        assert!(r.reliability > 0.99, "r={}", r.reliability);
        let events = r.points[0].events;
        assert!(r.points.iter().all(|p| p.events == events));
    }
}
