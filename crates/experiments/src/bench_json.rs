//! Machine-readable benchmark output: `BENCH_cluster.json`.
//!
//! The `scale` experiment, the `smoke:<arch>` runner and the
//! `cluster_scale` bench all append [`BenchRecord`]s to one JSON array on
//! disk, so the events-per-second trajectory of the sharded scheduler is
//! tracked across PRs by diffing a single file. The writer is hand-rolled
//! (the build environment is offline — no serde): records are flat
//! string/number/bool objects, appended by splicing before the closing
//! bracket, so no JSON parser is needed either.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Default output path, relative to the invocation directory.
pub const BENCH_PATH: &str = "BENCH_cluster.json";

/// One benchmark measurement of the sharded runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Which harness produced the record (`scale`, `smoke`,
    /// `cluster_scale`).
    pub suite: String,
    /// Architecture name ([`fed_workload::Architecture::name`]).
    pub arch: String,
    /// Population size.
    pub n: usize,
    /// Shard count in use.
    pub shards: usize,
    /// Placement policy name ([`fed_workload::Placement::name`]).
    pub placement: String,
    /// Whether adaptive window sizing was on.
    pub adaptive_window: bool,
    /// Whether streaming telemetry was attached — telemetry-on vs
    /// telemetry-off rows of the same configuration measure the
    /// observability overhead.
    pub telemetry: bool,
    /// Events processed.
    pub events: u64,
    /// Barrier windows executed.
    pub windows: u64,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
}

/// Minimal JSON string escaping (the names we write are plain ASCII, but
/// stay correct for anything).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl BenchRecord {
    /// The record as one JSON object.
    pub fn to_json(&self) -> String {
        // `events_per_sec` is an absolute rate (millions) on most rows
        // but a dimensionless ratio (~1.0) on `shard-gate` rows; one
        // decimal would quantize the ratio away, so small values keep
        // four.
        let events_per_sec = if self.events_per_sec < 100.0 {
            format!("{:.4}", self.events_per_sec)
        } else {
            format!("{:.1}", self.events_per_sec)
        };
        format!(
            "{{\"suite\":\"{}\",\"arch\":\"{}\",\"n\":{},\"shards\":{},\
             \"placement\":\"{}\",\"adaptive_window\":{},\"telemetry\":{},\
             \"events\":{},\
             \"windows\":{},\"wall_ms\":{:.3},\"events_per_sec\":{}}}",
            escape(&self.suite),
            escape(&self.arch),
            self.n,
            self.shards,
            escape(&self.placement),
            self.adaptive_window,
            self.telemetry,
            self.events,
            self.windows,
            self.wall_ms,
            events_per_sec,
        )
    }
}

fn render(objects: &[String]) -> String {
    let mut body = String::from("[\n");
    for (i, r) in objects.iter().enumerate() {
        body.push_str("  ");
        body.push_str(r);
        if i + 1 < objects.len() {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("]\n");
    body
}

/// Writes pre-rendered JSON objects to `path` as one array, replacing the
/// file.
pub fn write_json_objects(path: impl AsRef<Path>, objects: &[String]) -> io::Result<()> {
    fs::write(path, render(objects))
}

/// Appends pre-rendered JSON objects to the array at `path`, creating the
/// file if it is missing — the shared splice behind every `BENCH_*`
/// array artifact. An existing file is spliced before its closing
/// bracket; a file that does not look like a JSON array is replaced.
pub fn append_json_objects(path: impl AsRef<Path>, objects: &[String]) -> io::Result<()> {
    if objects.is_empty() {
        return Ok(());
    }
    let path = path.as_ref();
    let existing = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let trimmed = existing.trim_end();
    let Some(head) = trimmed.strip_suffix(']') else {
        return write_json_objects(path, objects);
    };
    let head = head.trim_end();
    let mut out = String::from(head);
    // An empty array has only "[" left once the bracket is stripped.
    if !head.trim_start().eq("[") {
        out.push(',');
    }
    out.push('\n');
    for (i, r) in objects.iter().enumerate() {
        out.push_str("  ");
        out.push_str(r);
        if i + 1 < objects.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    fs::write(path, out)
}

/// Writes `records` to `path` as a JSON array, replacing the file.
pub fn write_bench_json(path: impl AsRef<Path>, records: &[BenchRecord]) -> io::Result<()> {
    let objects: Vec<String> = records.iter().map(BenchRecord::to_json).collect();
    write_json_objects(path, &objects)
}

/// Appends `records` to the JSON array at `path`, creating the file if it
/// is missing (see [`append_json_objects`]).
pub fn append_bench_json(path: impl AsRef<Path>, records: &[BenchRecord]) -> io::Result<()> {
    let objects: Vec<String> = records.iter().map(BenchRecord::to_json).collect();
    append_json_objects(path, &objects)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(suite: &str, events: u64) -> BenchRecord {
        BenchRecord {
            suite: suite.into(),
            arch: "fair-gossip".into(),
            n: 1000,
            shards: 8,
            placement: "round-robin".into(),
            adaptive_window: true,
            telemetry: false,
            events,
            windows: 42,
            wall_ms: 12.5,
            events_per_sec: 80_000.0,
        }
    }

    #[test]
    fn record_renders_flat_json() {
        let json = record("scale", 7).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"suite\":\"scale\""));
        assert!(json.contains("\"events\":7"));
        assert!(json.contains("\"adaptive_window\":true"));
        assert!(json.contains("\"wall_ms\":12.500"));
        assert!(json.contains("\"events_per_sec\":80000.0"));
        // Ratio-valued rows (shard-gate) keep four decimals.
        let gate = BenchRecord {
            events_per_sec: 0.8725,
            ..record("shard-gate", 7)
        };
        assert!(gate.to_json().contains("\"events_per_sec\":0.8725"));
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\u{1}"), "x\\u0001");
    }

    #[test]
    fn write_then_append_splices_the_array() {
        let dir = std::env::temp_dir().join(format!("bench_json_test_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_cluster.json");
        write_bench_json(&path, &[record("scale", 1)]).unwrap();
        append_bench_json(&path, &[record("smoke", 2), record("smoke", 3)]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("\"suite\"").count(), 3);
        assert_eq!(text.matches("[").count(), 1);
        assert_eq!(text.matches("]").count(), 1);
        // Well-formed: every record line but the last ends with a comma.
        let commas = text.matches("},").count();
        assert_eq!(commas, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_creates_missing_file() {
        let dir = std::env::temp_dir().join(format!("bench_json_new_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_cluster.json");
        append_bench_json(&path, &[record("smoke", 9)]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("\"suite\"").count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
