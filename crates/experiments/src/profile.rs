//! PROFILE — scheduler profiler: phase tables, stall attribution,
//! instrumentation overhead.
//!
//! The registered `profile` experiment runs one scenario three ways —
//! sequential with profiling, cluster without, cluster with — and
//! reports (a) the per-shard wall-clock phase breakdown, (b) which shard
//! bounded each conservative window (stall attribution), (c) the merged
//! deterministic work counters, gated byte-identical between the
//! engines, and (d) the profiler's own overhead, appended to
//! `BENCH_profile.json`.
//!
//! The `profile-smoke[:arch[:n[:shards]]]` pseudo-id is the
//! large-population CI entry point: the same off/on overhead measurement
//! on the standard smoke workload, asserting the enabled profiler stays
//! under [`OVERHEAD_BAR`].

use crate::bench_json::{append_json_objects, escape};
use crate::harness::{run_architecture, ArchOutcome, EngineKind};
use crate::scale::smoke_spec;
use crate::scenario_run::outcomes_match;
use fed_metrics::table::{fmt_f64, Table};
use fed_profile::{ProfileSpec, RunProfile};
use fed_sim::SimTime;
use fed_telemetry::TelemetrySpec;
use fed_workload::pubs::PubPlan;
use fed_workload::scenario::{Architecture, Placement, ScenarioSpec};
use std::io;
use std::path::Path;
use std::time::Instant;

/// Default output path of the profiler benchmark artifact, relative to
/// the invocation directory.
pub const BENCH_PROFILE_PATH: &str = "BENCH_profile.json";

/// Ceiling on the enabled profiler's wall-clock overhead, as a fraction
/// of the unprofiled run — asserted by the `profile-smoke` pseudo-id.
pub const OVERHEAD_BAR: f64 = 0.10;

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Per-shard wall-clock phase breakdown, one row per shard plus a total.
pub fn phase_table(name: &str, profile: &RunProfile) -> Table {
    let mut t = Table::new(
        format!("PROFILE {name}: per-shard phases (wall ms)"),
        &[
            "shard",
            "events",
            "execute",
            "exchange",
            "fill",
            "barrier",
            "idle",
            "mailbox msgs",
            "mailbox bytes",
        ],
    );
    for (s, shard) in profile.shards.iter().enumerate() {
        t.row_owned(vec![
            s.to_string(),
            shard.events.to_string(),
            fmt_f64(ms(shard.phases.execute_ns)),
            fmt_f64(ms(shard.phases.exchange_ns)),
            fmt_f64(ms(shard.phases.fill_ns)),
            fmt_f64(ms(shard.phases.barrier_ns)),
            fmt_f64(ms(shard.phases.idle_ns)),
            shard.mailbox_msgs.to_string(),
            shard.mailbox_bytes.to_string(),
        ]);
    }
    let phases = profile.phases();
    let sched = profile.sched();
    t.row_owned(vec![
        "all".to_string(),
        profile
            .shards
            .iter()
            .map(|s| s.events)
            .sum::<u64>()
            .to_string(),
        fmt_f64(ms(phases.execute_ns)),
        fmt_f64(ms(phases.exchange_ns)),
        fmt_f64(ms(phases.fill_ns)),
        fmt_f64(ms(phases.barrier_ns)),
        fmt_f64(ms(phases.idle_ns)),
        sched.mailbox_msgs.to_string(),
        sched.mailbox_bytes.to_string(),
    ]);
    t
}

/// Stall attribution: how many conservative windows each shard bounded
/// (held the global minimum pending time for). `None` on sequential
/// runs, which have no windows.
pub fn stall_table(name: &str, profile: &RunProfile) -> Option<Table> {
    let schedule = profile.schedule.as_ref()?;
    let windows = schedule.windows.len().max(1) as f64;
    let mut t = Table::new(
        format!(
            "PROFILE {name}: stall attribution ({} windows)",
            schedule.windows.len()
        ),
        &["shard", "straggler windows", "share", "events"],
    );
    for (s, &bounded) in schedule.straggler_windows.iter().enumerate() {
        t.row_owned(vec![
            s.to_string(),
            bounded.to_string(),
            fmt_f64(bounded as f64 / windows),
            profile
                .shards
                .get(s)
                .map(|p| p.events.to_string())
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    Some(t)
}

/// Deterministic work counters (parity-gated across engines) and
/// scheduler counters (reported only), one row per counter.
pub fn work_table(name: &str, profile: &RunProfile) -> Table {
    let mut t = Table::new(
        format!("PROFILE {name}: work counters"),
        &["counter", "value", "class"],
    );
    let work = profile.merged_work();
    let sched = profile.sched();
    let det = "deterministic";
    let rep = "scheduler";
    for (counter, value, class) in [
        ("events", work.events, det),
        ("queue_pushes", work.queue_pushes, det),
        ("queue_pops", work.queue_pops, det),
        ("msgs_sent", work.msgs_sent, det),
        ("msgs_received", work.msgs_received, det),
        ("msgs_lost", work.msgs_lost, det),
        ("bytes_sent", work.bytes_sent, det),
        ("probe_calls", work.probe_calls, det),
        ("overflow_hits", sched.overflow_hits, rep),
        ("mailbox_msgs", sched.mailbox_msgs, rep),
        ("mailbox_bytes", sched.mailbox_bytes, rep),
        ("windows", sched.windows, rep),
        ("straggler_windows", sched.straggler_windows, rep),
    ] {
        t.row_owned(vec![
            counter.to_string(),
            value.to_string(),
            class.to_string(),
        ]);
    }
    t
}

/// One `BENCH_profile.json` record: a configuration run with profiling
/// off then on, so the instrumentation overhead is tracked across PRs.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileBenchRecord {
    /// Which harness produced the record (`profile`, `profile-smoke`).
    pub suite: String,
    /// Architecture name.
    pub arch: String,
    /// Population size.
    pub n: usize,
    /// Shard count in use.
    pub shards: usize,
    /// Placement policy name.
    pub placement: String,
    /// Whether adaptive window sizing was on.
    pub adaptive_window: bool,
    /// Whether streaming telemetry was attached in both runs.
    pub telemetry: bool,
    /// Events processed (identical off and on — profiling is passive).
    pub events: u64,
    /// Barrier windows executed in the profiled run.
    pub windows: u64,
    /// Wall-clock milliseconds with profiling off.
    pub wall_ms_off: f64,
    /// Wall-clock milliseconds with profiling on.
    pub wall_ms_on: f64,
    /// `wall_ms_on / wall_ms_off - 1`.
    pub overhead_frac: f64,
    /// Events per wall-clock second with profiling off.
    pub events_per_sec_off: f64,
    /// Events per wall-clock second with profiling on.
    pub events_per_sec_on: f64,
    /// Profiled execute phase, milliseconds (summed over shards).
    pub execute_ms: f64,
    /// Profiled exchange phase, milliseconds.
    pub exchange_ms: f64,
    /// Profiled pipeline-fill phase (waiting mid-window for inbound
    /// batches still in flight), milliseconds.
    pub fill_ms: f64,
    /// Profiled barrier phase (genuine straggler stall at the
    /// reduction), milliseconds.
    pub barrier_ms: f64,
    /// Profiled idle phase, milliseconds.
    pub idle_ms: f64,
}

impl ProfileBenchRecord {
    /// The record as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"suite\":\"{}\",\"arch\":\"{}\",\"n\":{},\"shards\":{},\
             \"placement\":\"{}\",\"adaptive_window\":{},\"telemetry\":{},\
             \"events\":{},\"windows\":{},\
             \"wall_ms_off\":{:.3},\"wall_ms_on\":{:.3},\
             \"overhead_frac\":{:.4},\
             \"events_per_sec_off\":{:.1},\"events_per_sec_on\":{:.1},\
             \"execute_ms\":{:.3},\"exchange_ms\":{:.3},\
             \"fill_ms\":{:.3},\"barrier_ms\":{:.3},\"idle_ms\":{:.3}}}",
            escape(&self.suite),
            escape(&self.arch),
            self.n,
            self.shards,
            escape(&self.placement),
            self.adaptive_window,
            self.telemetry,
            self.events,
            self.windows,
            self.wall_ms_off,
            self.wall_ms_on,
            self.overhead_frac,
            self.events_per_sec_off,
            self.events_per_sec_on,
            self.execute_ms,
            self.exchange_ms,
            self.fill_ms,
            self.barrier_ms,
            self.idle_ms,
        )
    }
}

/// Appends profiler benchmark records to the JSON array at `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn append_profile_bench(
    path: impl AsRef<Path>,
    records: &[ProfileBenchRecord],
) -> io::Result<()> {
    let objects: Vec<String> = records.iter().map(ProfileBenchRecord::to_json).collect();
    append_json_objects(path, &objects)
}

/// An off/on overhead measurement of one cluster configuration.
#[derive(Debug)]
pub struct OverheadPoint {
    /// The profiled spec (profiling on).
    pub spec: ScenarioSpec,
    /// Outcome of the unprofiled run.
    pub off: ArchOutcome,
    /// Outcome of the profiled run.
    pub on: ArchOutcome,
    /// Wall-clock milliseconds without profiling (best of `runs`).
    pub wall_ms_off: f64,
    /// Wall-clock milliseconds with profiling (best of `runs`).
    pub wall_ms_on: f64,
}

impl OverheadPoint {
    /// `wall_on / wall_off - 1`: the enabled profiler's relative cost.
    pub fn overhead_frac(&self) -> f64 {
        self.wall_ms_on / self.wall_ms_off.max(1e-9) - 1.0
    }

    /// The measurement as one [`ProfileBenchRecord`].
    pub fn record(&self, suite: &str) -> ProfileBenchRecord {
        let phases = self
            .on
            .profiling
            .as_ref()
            .map(|p| p.phases())
            .unwrap_or_default();
        ProfileBenchRecord {
            suite: suite.to_string(),
            arch: self.spec.arch.name().to_string(),
            n: self.spec.n,
            shards: self.on.shards,
            placement: self.spec.placement.name().to_string(),
            adaptive_window: self.spec.adaptive_window,
            telemetry: self.spec.telemetry.is_some(),
            events: self.on.events,
            windows: self.on.windows,
            wall_ms_off: self.wall_ms_off,
            wall_ms_on: self.wall_ms_on,
            overhead_frac: self.overhead_frac(),
            events_per_sec_off: self.off.events as f64 / (self.wall_ms_off / 1e3).max(1e-9),
            events_per_sec_on: self.on.events as f64 / (self.wall_ms_on / 1e3).max(1e-9),
            execute_ms: ms(phases.execute_ns),
            exchange_ms: ms(phases.exchange_ns),
            fill_ms: ms(phases.fill_ns),
            barrier_ms: ms(phases.barrier_ns),
            idle_ms: ms(phases.idle_ns),
        }
    }
}

/// Runs `spec` on the cluster engine with profiling off, then on, `runs`
/// times each, keeping the best wall clock per configuration (the
/// repeats damp scheduler noise so the overhead fraction is meaningful).
pub fn measure_overhead(spec: &ScenarioSpec, runs: usize) -> OverheadPoint {
    let runs = runs.max(1);
    let mut spec_off = spec.clone();
    spec_off.profile = None;
    let spec_on = spec
        .clone()
        .with_profile(spec.profile.clone().unwrap_or_default());
    let best = |spec: &ScenarioSpec| {
        let mut wall_ms = f64::INFINITY;
        let mut outcome = None;
        for _ in 0..runs {
            let start = Instant::now();
            let o = run_architecture(spec, EngineKind::Cluster);
            wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
            outcome = Some(o);
        }
        (outcome.expect("runs >= 1"), wall_ms)
    };
    let (off, wall_ms_off) = best(&spec_off);
    let (on, wall_ms_on) = best(&spec_on);
    OverheadPoint {
        spec: spec_on,
        off,
        on,
        wall_ms_off,
        wall_ms_on,
    }
}

/// The scenario the registered `profile` experiment runs: the standard
/// workload with a shorter publication phase (as E-SCALE uses) plus
/// telemetry, so the probe-call counter is exercised too.
pub fn profile_spec(n: usize, shards: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::fair_gossip(n, seed)
        .with_shards(shards)
        .with_telemetry(TelemetrySpec::default())
        .with_profile(ProfileSpec::default());
    spec.plan = PubPlan {
        rate_per_sec: 10.0,
        duration: SimTime::from_secs(5),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: None,
    };
    spec
}

/// Result of the PROFILE experiment.
#[derive(Debug)]
pub struct ProfileResult {
    /// Off/on overhead summary, one row per configuration.
    pub summary: Table,
    /// Per-shard phase breakdown of the profiled cluster run.
    pub phase_table: Table,
    /// Stall attribution of the profiled cluster run.
    pub stall_table: Table,
    /// Merged work/scheduler counters of the profiled cluster run.
    pub work_table: Table,
    /// Whether the profiled sequential and cluster runs agreed on every
    /// observable *and* on the merged work counters (must be `true`).
    pub identical: bool,
    /// Machine-readable record for `BENCH_profile.json`.
    pub records: Vec<ProfileBenchRecord>,
}

/// Runs the PROFILE experiment: sequential-vs-cluster work-counter
/// parity plus the off/on overhead measurement at `shards` shards.
pub fn run(n: usize, shards: usize, seed: u64) -> ProfileResult {
    let spec = profile_spec(n, shards, seed);
    let seq = run_architecture(&spec, EngineKind::Sequential);
    let point = measure_overhead(&spec, 2);

    let seq_profile = seq.profiling.as_ref().expect("profiling on");
    let clu_profile = point.on.profiling.as_ref().expect("profiling on");
    let identical = outcomes_match(&seq, &point.on)
        && outcomes_match(&seq, &point.off)
        && seq_profile.merged_work() == clu_profile.merged_work();

    let mut summary = Table::new(
        format!("PROFILE: instrumentation overhead (n={n}, shards={shards})"),
        &[
            "config",
            "events",
            "windows",
            "wall_ms",
            "events/s",
            "overhead",
            "identical",
        ],
    );
    summary.row_owned(vec![
        "profile off".to_string(),
        point.off.events.to_string(),
        point.off.windows.to_string(),
        fmt_f64(point.wall_ms_off),
        fmt_f64(point.off.events as f64 / (point.wall_ms_off / 1e3).max(1e-9)),
        "-".to_string(),
        identical.to_string(),
    ]);
    summary.row_owned(vec![
        "profile on".to_string(),
        point.on.events.to_string(),
        point.on.windows.to_string(),
        fmt_f64(point.wall_ms_on),
        fmt_f64(point.on.events as f64 / (point.wall_ms_on / 1e3).max(1e-9)),
        fmt_f64(point.overhead_frac()),
        identical.to_string(),
    ]);

    let name = "fair-gossip";
    let phase = phase_table(name, clu_profile);
    let stall = stall_table(name, clu_profile).expect("cluster run has a schedule");
    let work = work_table(name, clu_profile);
    let records = vec![point.record("profile")];
    ProfileResult {
        summary,
        phase_table: phase,
        stall_table: stall,
        work_table: work,
        identical,
        records,
    }
}

/// Outcome of one `profile-smoke` overhead run.
#[derive(Debug)]
pub struct ProfileSmokePoint {
    /// The off/on measurement.
    pub point: OverheadPoint,
    /// The record appended to `BENCH_profile.json`.
    pub record: ProfileBenchRecord,
}

/// The large-population profiler smoke: the standard smoke workload
/// (round-robin placement, adaptive windows, telemetry off) run with
/// profiling off then on, twice each, keeping the best wall clocks.
///
/// The caller asserts the overhead bar — see
/// [`crate::run_by_id`]'s `profile-smoke` pseudo-id.
pub fn smoke(arch: Architecture, n: usize, shards: usize, seed: u64) -> ProfileSmokePoint {
    let spec = smoke_spec(arch, n, shards, Placement::RoundRobin, true, seed)
        .with_profile(ProfileSpec::default());
    let point = measure_overhead(&spec, 2);
    let record = point.record("profile-smoke");
    ProfileSmokePoint { point, record }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_profile::json;

    #[test]
    fn profile_experiment_gates_parity_and_builds_tables() {
        let r = run(48, 3, 42);
        assert!(r.identical, "profiled engines diverged");
        assert_eq!(r.summary.len(), 2);
        assert_eq!(r.phase_table.len(), 3 + 1, "3 shards + total row");
        assert_eq!(r.stall_table.len(), 3);
        assert_eq!(r.work_table.len(), 13);
        assert_eq!(r.records.len(), 1);
        let rec = &r.records[0];
        assert_eq!(rec.suite, "profile");
        assert!(rec.events > 0);
        assert!(rec.windows > 0);
        assert!(rec.wall_ms_on > 0.0 && rec.wall_ms_off > 0.0);
    }

    #[test]
    fn bench_record_renders_parseable_json() {
        let r = run(32, 2, 7);
        let text = r.records[0].to_json();
        let v = json::parse(&text).expect("record must parse as JSON");
        assert_eq!(v.get("suite").and_then(|s| s.as_str()), Some("profile"));
        assert!(v.get("overhead_frac").and_then(|o| o.as_f64()).is_some());
        assert_eq!(
            v.get("events").and_then(|e| e.as_f64()).unwrap() as u64,
            r.records[0].events
        );
    }

    #[test]
    fn measure_overhead_is_passive() {
        let spec = profile_spec(32, 2, 11);
        let p = measure_overhead(&spec, 1);
        assert!(outcomes_match(&p.off, &p.on), "profiling changed a result");
        assert!(p.off.profiling.is_none());
        assert!(p.on.profiling.is_some());
    }
}
