//! E-ABLATE — ablation of the fair protocol's own design choices (the
//! knobs DESIGN.md calls out beyond the paper's text):
//!
//! 1. **Lifetime-ratio correction gain** — the term that turns
//!    rate-proportional allocation into snapshot-ratio equality. Gain 0 is
//!    pure proportional control; larger gains tighten Figure 1 faster but
//!    react harder to estimator noise.
//! 2. **Civic minimum** (relay rate + allowance) — the bounded work
//!    donation of fully-throttled peers. Without it, events whose seeds
//!    land on zero-benefit peers can die; with an unbounded version,
//!    zero-benefit peers re-accumulate unfair work.
//!
//! The civic sweep runs a harsher scenario than the standard one: three
//! quarters of the population hold *no subscriptions at all*, so
//! fully-throttled peers actually exist and event launches are at risk.

use crate::harness::build_gossip_spec;
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_core::ledger::RatioSpec;
use fed_metrics::fairness::ratio_report;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::{NodeId, SimDuration, SimTime};
use fed_workload::interest::Appetite;
use fed_workload::scenario::ScenarioSpec;

/// Result of the ablation experiment.
#[derive(Debug)]
pub struct AblationResult {
    /// Correction-gain sweep.
    pub gain_table: Table,
    /// Civic-minimum sweep.
    pub civic_table: Table,
    /// (gain, jain) series.
    pub gain_points: Vec<(f64, f64)>,
    /// (relay rate, allowance, reliability, jain) series.
    pub civic_points: Vec<(f64, f64, f64, f64)>,
}

/// Runs the ablation at population size `n`.
pub fn run(n: usize, seed: u64) -> AblationResult {
    let spec = RatioSpec::topic_based();

    // --- 1. correction gain sweep on the standard workload ---
    let mut gain_table = Table::new(
        format!("E-ABLATE-a: lifetime-ratio correction gain (n={n})"),
        &["gain", "jain", "gini", "max/min", "reliability"],
    );
    let mut gain_points = Vec::new();
    for gain in [0.0, 0.01, 0.05, 0.2] {
        let scenario = ScenarioSpec::fair_gossip(n, seed);
        let mut cfg = GossipConfig::fair(8, 16, SimDuration::from_millis(100));
        cfg.ratio_correction_gain = gain;
        let mut run = build_gossip_spec(&scenario, cfg, |_| Behavior::Honest);
        run.run();
        let report = ratio_report(run.ledgers(), &spec);
        let rel = run.audit().reliability();
        gain_table.row_owned(vec![
            fmt_f64(gain),
            fmt_f64(report.jain),
            fmt_f64(report.gini),
            fmt_f64(report.max_min),
            fmt_f64(rel),
        ]);
        gain_points.push((gain, report.jain));
    }

    // --- 2. civic minimum sweep on the harsh workload: three quarters of
    // the population holds no subscriptions, so an event whose publisher
    // seeds land only on throttled peers is in real danger of dying. ---
    let interested = n / 4;
    let mut civic_table = Table::new(
        format!("E-ABLATE-b: civic minimum (n={n}, 3/4 zero-interest peers)"),
        &["relay rate", "allowance", "reliability", "jain"],
    );
    let mut civic_points = Vec::new();
    for (rate, allowance) in [(0.0, 0.0), (0.25, 16.0), (0.25, f64::MAX), (1.0, 16.0)] {
        let mut scenario = ScenarioSpec::fair_gossip(n, seed ^ 0xC1F1C);
        scenario.appetite = Appetite::Fixed(1);
        scenario.num_topics = 8;
        scenario.plan.rate_per_sec = 10.0;
        let mut cfg = GossipConfig::fair(8, 16, SimDuration::from_millis(100));
        cfg.min_relay_rate = rate;
        cfg.civic_allowance = allowance;
        let mut run = build_gossip_spec(&scenario, cfg, |_| Behavior::Honest);
        // Strip subscriptions from the last three quarters.
        for i in interested..n {
            run.sim.schedule_command(
                SimTime::from_micros(1),
                NodeId::new(i as u32),
                fed_core::gossip::GossipCmd::ClearSubscriptions,
            );
        }
        run.run();
        let report = ratio_report(run.ledgers(), &spec);
        // Ground truth must reflect the cleared subscriptions: only peers
        // below `interested` can deliver.
        let mut audit = fed_metrics::delivery::DeliveryAudit::new();
        for p in &run.schedule {
            let subs: Vec<usize> = run
                .profile
                .subscribers_of(p.event.topic())
                .into_iter()
                .filter(|&i| i < interested)
                .collect();
            audit.expect(p.event.id(), p.at, subs);
        }
        for (id, node) in run.sim.nodes() {
            for (eid, rec) in node.deliveries() {
                audit.record(*eid, id.index(), rec.at);
            }
        }
        let rel = audit.reliability();
        let allowance_label = if allowance == f64::MAX {
            "unbounded".to_string()
        } else {
            fmt_f64(allowance)
        };
        civic_table.row_owned(vec![
            fmt_f64(rate),
            allowance_label,
            fmt_f64(rel),
            fmt_f64(report.jain),
        ]);
        civic_points.push((rate, allowance, rel, report.jain));
    }

    AblationResult {
        gain_table,
        civic_table,
        gain_points,
        civic_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correction_gain_drives_snapshot_fairness() {
        let r = run(64, 29);
        let jain_at = |g: f64| {
            r.gain_points
                .iter()
                .find(|(gain, _)| *gain == g)
                .map(|(_, j)| *j)
                .expect("gain in sweep")
        };
        assert!(
            jain_at(0.05) > jain_at(0.0),
            "correction must beat pure proportional control\n{}",
            r.gain_table
        );
    }

    #[test]
    fn civic_minimum_improves_reliability_within_bounds() {
        let r = run(64, 29);
        let without = r.civic_points[0];
        let bounded = r.civic_points[1];
        let unbounded = r.civic_points[2];
        // Single-seed runs: allow a few events' worth of noise between
        // the no-civic and bounded-civic rows.
        assert!(
            bounded.2 >= without.2 - 0.05,
            "civic minimum must not materially hurt reliability\n{}",
            r.civic_table
        );
        assert!(
            bounded.2 > 0.95,
            "bounded civic minimum keeps the epidemic mostly alive: {}\n{}",
            bounded.2,
            r.civic_table
        );
        // The fundamental tension: only the unbounded donation reaches
        // full reliability in the 3/4-uninterested regime.
        assert!(
            unbounded.2 >= bounded.2,
            "unbounded civic work dominates reliability\n{}",
            r.civic_table
        );
    }
}
