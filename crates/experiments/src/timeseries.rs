//! E-TIMESERIES — streaming time-series observability across
//! architectures.
//!
//! Runs every architecture in [`Architecture::ALL`] through the same
//! bursty scenario — churn plus a flash-crowd publication burst — with
//! `fed-telemetry` attached and the SWIM failure detector armed, on
//! **both** engines. For each architecture the experiment:
//!
//! * asserts the **series parity gate**: the sequential engine's
//!   telemetry series, SWIM observation logs and handover instants must
//!   be byte-identical to the sharded engine's (the `identical` column);
//! * prints a per-architecture transient summary (worst-window fairness,
//!   peak latency tail, population dip) distilled from the full series;
//! * writes the complete per-window series of every architecture to
//!   [`BENCH_TIMESERIES_PATH`], the machine-readable artifact tracked
//!   across PRs.
//!
//! This is the observability layer the end-of-run ledger snapshots
//! cannot provide: aggregate fairness can look fine while the flash
//! crowd concentrates forwarding load on interior nodes for a few
//! hundred milliseconds — exactly what the per-window Jain/Gini series
//! exposes.

use crate::harness::{run_architecture, EngineKind};
use fed_membership::swim::SwimConfig;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::{SimDuration, SimTime};
use fed_telemetry::membership::MembershipSeries;
use fed_telemetry::{TelemetrySeries, TelemetrySpec, WindowRow};
use fed_workload::churn::ChurnPlan;
use fed_workload::pubs::{FlashCrowd, PubPlan};
use fed_workload::scenario::{Architecture, ScenarioSpec};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Default output path of the series artifact, relative to the
/// invocation directory.
pub const BENCH_TIMESERIES_PATH: &str = "BENCH_timeseries.json";

/// The bursty scenario the experiment samples: steady publishing for
/// three seconds, then a flash crowd (hot-topic Zipf shift at 4 s with a
/// 4x rate), under session churn, telemetry at 500 ms windows, and the
/// SWIM detector armed (it runs on the gossip-bearing architectures).
pub fn timeseries_spec(arch: Architecture, n: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::standard(arch, n, seed);
    spec.plan = PubPlan {
        rate_per_sec: 20.0,
        duration: SimTime::from_secs(6),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: Some(FlashCrowd {
            at: SimTime::from_secs(4),
            topic_zipf_s: 3.0,
            rate_factor: 4.0,
        }),
    };
    spec.churn = Some(ChurnPlan {
        mean_session_secs: 5.0,
        mean_downtime_secs: 2.0,
        churning_fraction: 0.15,
        duration: SimTime::from_secs(6),
        warmup: SimTime::from_secs(1),
    });
    spec.telemetry = Some(TelemetrySpec::default().with_window(SimDuration::from_millis(500)));
    spec.membership = Some(SwimConfig::standard());
    spec
}

/// One architecture's sampled series plus its parity verdict.
#[derive(Debug, Clone)]
pub struct ArchSeries {
    /// The architecture.
    pub arch: Architecture,
    /// Whether the sequential and sharded observables (telemetry series,
    /// SWIM observation logs, handover instants) are byte-identical
    /// (must be `true`).
    pub identical: bool,
    /// The (shared) series, from the sharded run.
    pub series: TelemetrySeries,
    /// The failure-detection series (same 500 ms windows), all-zero on
    /// architectures without the SWIM detector.
    pub membership: MembershipSeries,
    /// Earliest strategy handover, when the architecture switched.
    pub handover: Option<SimTime>,
}

impl ArchSeries {
    /// Worst (minimum) per-window Jain index over *loaded* windows
    /// (1.0 when the series never carried load).
    pub fn worst_jain(&self) -> f64 {
        let worst = self
            .active_rows()
            .map(|r| r.jain)
            .fold(f64::INFINITY, f64::min);
        if worst.is_finite() {
            worst
        } else {
            1.0
        }
    }

    /// Peak (maximum) per-window Gini over *loaded* windows.
    pub fn peak_gini(&self) -> f64 {
        self.active_rows().map(|r| r.gini).fold(0.0, f64::max)
    }

    /// Peak p99 scheduled delivery latency (ms) over the run.
    pub fn peak_p99_ms(&self) -> f64 {
        self.series
            .rows()
            .iter()
            .filter_map(|r| r.latency_p99_ms)
            .fold(0.0, f64::max)
    }

    /// Peak single-node forward load in any window.
    pub fn peak_node_load(&self) -> u64 {
        self.series
            .windows
            .iter()
            .map(|w| w.load_max)
            .max()
            .unwrap_or(0)
    }

    /// Minimum alive population over windows that sampled the population.
    pub fn min_alive(&self) -> u64 {
        self.series
            .windows
            .iter()
            .filter(|w| w.alive + w.crashed > 0)
            .map(|w| w.alive)
            .min()
            .unwrap_or(0)
    }

    /// Windows carrying real load: at least 10 % of the peak window's
    /// sends. A handful of drain-tail stragglers (5 sends over 250
    /// nodes) would otherwise post a near-zero Jain and make every
    /// protocol's worst-window summary read like a hotspot — the
    /// fairness summaries must describe the system under load, not the
    /// silence after it.
    fn active_rows(&self) -> impl Iterator<Item = WindowRow> + '_ {
        let peak = self
            .series
            .windows
            .iter()
            .map(|w| w.msgs_sent)
            .max()
            .unwrap_or(0);
        let floor = (peak / 10).max(1);
        self.series
            .rows()
            .into_iter()
            .filter(move |r| r.msgs_sent >= floor)
    }
}

/// Result of the E-TIMESERIES experiment.
#[derive(Debug)]
pub struct TimeseriesResult {
    /// Per-architecture transient summary.
    pub table: Table,
    /// Sampled series, in [`Architecture::ALL`] order.
    pub archs: Vec<ArchSeries>,
    /// Whether every architecture passed the series parity gate.
    pub identical: bool,
    /// The rendered `BENCH_timeseries.json` document.
    pub json: String,
}

/// Runs the experiment at population `n`, comparing the sequential
/// engine against the sharded engine at `shards` shards.
pub fn run(n: usize, shards: usize, seed: u64) -> TimeseriesResult {
    let mut table = Table::new(
        format!("E-TIMESERIES: per-window transients (n={n}, shards={shards}, 500ms windows)"),
        &[
            "arch",
            "windows",
            "jain_min",
            "gini_peak",
            "p99_ms_peak",
            "node_load_peak",
            "alive_min",
            "detections",
            "false_susp",
            "handover_ms",
            "identical",
        ],
    );
    let mut archs = Vec::new();
    let mut identical = true;
    for arch in Architecture::ALL {
        let spec = timeseries_spec(arch, n, seed);
        let sequential = run_architecture(&spec, EngineKind::Sequential);
        let cluster = run_architecture(&spec.clone().with_shards(shards), EngineKind::Cluster);
        let series_match = sequential.telemetry == cluster.telemetry
            && sequential.swim == cluster.swim
            && sequential.handovers == cluster.handovers;
        identical &= series_match;
        let membership = cluster.membership_series(SimDuration::from_millis(500));
        let entry = ArchSeries {
            arch,
            identical: series_match,
            series: cluster.telemetry.clone().expect("spec enables telemetry"),
            membership,
            handover: cluster.handover_time(),
        };
        table.row_owned(vec![
            arch.name().to_string(),
            entry.series.windows.len().to_string(),
            fmt_f64(entry.worst_jain()),
            fmt_f64(entry.peak_gini()),
            fmt_f64(entry.peak_p99_ms()),
            entry.peak_node_load().to_string(),
            entry.min_alive().to_string(),
            entry.membership.total_detections().to_string(),
            entry.membership.total_false_suspicions().to_string(),
            entry
                .handover
                .map_or_else(|| "-".into(), |t| t.as_millis().to_string()),
            series_match.to_string(),
        ]);
        archs.push(entry);
    }
    let json = render_json(n, shards, seed, &archs);
    TimeseriesResult {
        table,
        archs,
        identical,
        json,
    }
}

/// Formats one JSON number, mapping non-finite values to `null`.
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".into()
    }
}

fn jopt(x: Option<f64>) -> String {
    match x {
        Some(v) => jnum(v),
        None => "null".into(),
    }
}

/// Renders the full document: one object per architecture with its
/// complete per-window series, the failure-detection series
/// (detection latency, false suspicions, refutations) riding alongside.
fn render_json(n: usize, shards: usize, seed: u64, archs: &[ArchSeries]) -> String {
    let mut out = String::from("[\n");
    for (ai, a) in archs.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {{\"suite\":\"timeseries\",\"arch\":\"{}\",\"n\":{},\"shards\":{},\
             \"seed\":{},\"window_us\":{},\"identical\":{},\"handover_ms\":{},\
             \"detection_latency_mean_us\":{},\"series\":[",
            a.arch.name(),
            n,
            shards,
            seed,
            a.series.spec.window.as_micros(),
            a.identical,
            a.handover
                .map_or_else(|| "null".into(), |t| t.as_millis().to_string()),
            jopt(a.membership.detection_latency_mean_us()),
        );
        let rows = a.series.rows();
        for (i, r) in rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"w\":{},\"t_ms\":{},\"events\":{},\"sent\":{},\"recv\":{},\
                 \"lost\":{},\"bytes_sent\":{},\"alive\":{},\"crashed\":{},\
                 \"load_mean\":{},\"jain\":{},\"gini\":{},\"max_min\":{},\
                 \"lat_p50_ms\":{},\"lat_p95_ms\":{},\"lat_p99_ms\":{}}}{}",
                r.index,
                r.start.as_millis(),
                r.events,
                r.msgs_sent,
                r.msgs_received,
                r.msgs_lost,
                r.bytes_sent,
                r.alive,
                r.crashed,
                jnum(r.load_mean),
                jnum(r.jain),
                jnum(r.gini),
                jnum(r.max_min),
                jopt(r.latency_p50_ms),
                jopt(r.latency_p95_ms),
                jopt(r.latency_p99_ms),
                if i + 1 < rows.len() { "," } else { "" },
            );
        }
        out.push_str("  ],\"membership\":[\n");
        let mwindows = &a.membership.windows;
        for (i, w) in mwindows.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"w\":{},\"suspicions\":{},\"false_suspicions\":{},\
                 \"confirms\":{},\"detections\":{},\"detection_latency_us_sum\":{},\
                 \"refutes\":{},\"self_refutes\":{}}}{}",
                w.index,
                w.suspicions,
                w.false_suspicions,
                w.confirms,
                w.detections,
                w.detection_latency_us_sum,
                w.refutes,
                w.self_refutes,
                if i + 1 < mwindows.len() { "," } else { "" },
            );
        }
        let _ = writeln!(out, "  ]}}{}", if ai + 1 < archs.len() { "," } else { "" });
    }
    out.push_str("]\n");
    out
}

/// Writes the rendered document to `path`, replacing the file (the
/// artifact is regenerated whole every run).
pub fn write_timeseries_json(path: impl AsRef<Path>, json: &str) -> io::Result<()> {
    fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One fast architecture end to end: parity gate holds, the series
    /// shows the flash crowd, and the JSON is well-formed-ish.
    #[test]
    fn timeseries_gates_parity_and_captures_the_burst() {
        let spec = timeseries_spec(Architecture::FairGossip, 48, 7);
        let sequential = run_architecture(&spec, EngineKind::Sequential);
        let cluster = run_architecture(&spec.clone().with_shards(3), EngineKind::Cluster);
        assert_eq!(
            sequential.telemetry, cluster.telemetry,
            "series parity must hold at 3 shards"
        );
        let series = cluster.telemetry.expect("telemetry enabled");
        // Flash crowd at 4s with 4x rate: the busiest post-burst window
        // must clearly out-send the *settled* steady state (2-4s —
        // skipping the subscription-flood transient right after warmup).
        let sent_at = |ms: u64| series.windows[(ms / 500) as usize].msgs_sent;
        let steady_peak = (2_000..4_000).step_by(500).map(sent_at).max().unwrap();
        let burst_peak = (4_000..7_000).step_by(500).map(sent_at).max().unwrap();
        assert!(
            burst_peak > steady_peak * 3 / 2,
            "burst ({burst_peak}) must exceed the settled steady peak ({steady_peak}) by 50%"
        );
        // Churn shows up in the population series.
        assert!(
            series.windows.iter().any(|w| w.crashed > 0),
            "churn must dent the live population"
        );
    }

    #[test]
    fn json_document_renders_every_architecture() {
        // Tiny run: the document structure matters here, not the data.
        let r = run(24, 2, 11);
        assert!(r.identical, "parity gate failed");
        assert_eq!(r.archs.len(), Architecture::ALL.len());
        for arch in Architecture::ALL {
            assert!(
                r.json.contains(&format!("\"arch\":\"{}\"", arch.name())),
                "missing {arch} in JSON"
            );
        }
        assert_eq!(
            r.json.matches("\"suite\":\"timeseries\"").count(),
            Architecture::ALL.len()
        );
        assert_eq!(
            r.json.matches("\"membership\":[").count(),
            Architecture::ALL.len(),
            "every architecture carries the detection series"
        );
        assert!(r.json.contains("\"false_suspicions\":"));
        assert!(r.json.contains("\"detection_latency_us_sum\":"));
        assert!(!r.json.contains("inf"), "non-finite floats must be null");
        assert!(!r.json.contains("NaN"), "non-finite floats must be null");
    }

    /// The armed SWIM detector actually observes the churn: the gossip
    /// architectures log suspicions/confirms, and the detection series
    /// classifies at least one of them as a true detection.
    #[test]
    fn detector_sees_the_churn() {
        let spec = timeseries_spec(Architecture::FairGossip, 48, 7);
        let outcome = run_architecture(&spec, EngineKind::Sequential);
        assert!(
            outcome.total_swim_observations() > 0,
            "churn at 15% of 48 nodes must trigger detector traffic"
        );
        let series = outcome.membership_series(SimDuration::from_millis(500));
        assert!(
            series.total_detections() > 0,
            "some crash must be confirmed while the node is down"
        );
        assert!(
            series.detection_latency_mean_us().is_some(),
            "detections imply a measurable latency"
        );
    }
}
