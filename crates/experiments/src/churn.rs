//! E-CHURN — the paper's motivating claim (§1/§6): "an unfair distribution
//! of workload can lead to a high churn … where processes abruptly
//! disconnect whenever they perceive to perform too much work. Such
//! behavior can significantly impact the reliability and scalability of a
//! decentralized system."
//!
//! Every peer is an [`Behavior::Aggrieved`] user: if its
//! contribution/benefit ratio exceeds a threshold it quits. We poll
//! periodically, crash the quitters, and compare how many peers the
//! classic and the fair protocol lose — and what that does to delivery
//! reliability for the remaining population.

use crate::harness::{build_gossip_spec, GossipRun};
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::{SimDuration, SimTime};
use fed_workload::scenario::ScenarioSpec;

/// Result of the E-CHURN experiment.
#[derive(Debug)]
pub struct ChurnResult {
    /// Comparison table.
    pub table: Table,
    /// Peers lost under the classic protocol.
    pub classic_quitters: usize,
    /// Peers lost under the fair protocol.
    pub fair_quitters: usize,
    /// Reliability under the classic protocol (with its churn).
    pub classic_reliability: f64,
    /// Reliability under the fair protocol (with its churn).
    pub fair_reliability: f64,
}

fn drive_with_quitting(run: &mut GossipRun, threshold: f64) -> usize {
    let horizon = run.horizon;
    let poll = SimDuration::from_secs(2);
    let mut quitters = 0usize;
    let mut now = SimTime::ZERO;
    while now < horizon {
        now += poll;
        run.sim.run_until(now.min(horizon));
        let unhappy: Vec<_> = run
            .sim
            .nodes()
            .filter(|(id, node)| {
                run.sim.is_alive(*id)
                    && node.behavior().wants_to_leave(
                        node.ledger(),
                        &GossipConfig::classic(8, 16, SimDuration::from_millis(100)).spec,
                        node.rounds(),
                    )
            })
            .map(|(id, _)| id)
            .collect();
        let _ = threshold; // threshold lives inside the behaviour model
        for id in unhappy {
            run.sim.schedule_crash(now, id);
            quitters += 1;
        }
    }
    quitters
}

/// Runs E-CHURN at population size `n` with the given tolerance threshold.
pub fn run(n: usize, threshold: f64, seed: u64) -> ChurnResult {
    let scenario = ScenarioSpec::fair_gossip(n, seed);
    let behavior = move |_| Behavior::Aggrieved {
        ratio_threshold: threshold,
        patience_rounds: 50,
    };

    let mut results = Vec::new();
    for cfg in [
        GossipConfig::classic(8, 16, SimDuration::from_millis(100)),
        GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
    ] {
        let mut run = build_gossip_spec(&scenario, cfg, behavior);
        let quitters = drive_with_quitting(&mut run, threshold);
        let audit = run.audit();
        results.push((quitters, audit.reliability()));
    }

    let mut table = Table::new(
        format!("E-CHURN: unfairness-driven churn (n={n}, tolerance={threshold})"),
        &["protocol", "quitters", "quitter %", "reliability"],
    );
    for (name, (q, rel)) in ["classic-gossip", "fair-gossip"].iter().zip(&results) {
        table.row_owned(vec![
            name.to_string(),
            q.to_string(),
            fmt_f64(*q as f64 * 100.0 / n as f64),
            fmt_f64(*rel),
        ]);
    }
    ChurnResult {
        table,
        classic_quitters: results[0].0,
        fair_quitters: results[1].0,
        classic_reliability: results[0].1,
        fair_reliability: results[1].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_protocol_retains_more_peers() {
        let r = run(64, 15.0, 9);
        assert!(
            r.fair_quitters < r.classic_quitters,
            "fair {} must lose fewer peers than classic {}\n{}",
            r.fair_quitters,
            r.classic_quitters,
            r.table
        );
        assert!(
            r.classic_quitters > 0,
            "the classic protocol must aggrieve someone at tolerance 15"
        );
    }
}
