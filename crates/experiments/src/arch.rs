//! T-ARCH — the paper's §4 survey as a measured table: how fair are the
//! existing architectures on the *same* heterogeneous workload?
//!
//! Systems: central broker, Scribe/Pastry trees, DKS-style groups+index,
//! data-aware multicast, SplitStream forest, classic static gossip, fair
//! gossip. For each: fairness over contribution/benefit ratios, fairness
//! over raw contributions (load balance — the §3 distinction), delivery
//! reliability, total traffic, and the hottest node's share.
//!
//! Every system runs through [`run_architecture`] on the identical
//! [`ScenarioSpec`] workload, so the rows differ only in architecture.

use crate::harness::{run_architecture, ArchOutcome, EngineKind};
use fed_core::ledger::{FairnessLedger, RatioSpec};
use fed_metrics::fairness::{contribution_report, ratio_report};
use fed_metrics::table::{fmt_f64, Table};
use fed_workload::scenario::{Architecture, ScenarioSpec};

/// One system's measured row.
#[derive(Debug, Clone)]
pub struct ArchPoint {
    /// System name.
    pub system: String,
    /// Jain index over contribution/benefit ratios.
    pub ratio_jain: f64,
    /// Jain index over raw contributions (load balance).
    pub load_jain: f64,
    /// Delivery reliability.
    pub reliability: f64,
    /// Total messages sent by all nodes.
    pub total_msgs: u64,
    /// Largest single-node share of total messages.
    pub hottest_share: f64,
}

/// Result of the T-ARCH experiment.
#[derive(Debug)]
pub struct ArchResult {
    /// The comparison table.
    pub table: Table,
    /// Raw rows.
    pub points: Vec<ArchPoint>,
}

fn point(outcome: &ArchOutcome) -> ArchPoint {
    let spec = RatioSpec::topic_based();
    let ledgers: Vec<&FairnessLedger> = outcome.ledgers.iter().collect();
    let ratio = ratio_report(ledgers.iter().copied(), &spec);
    let load = contribution_report(ledgers.iter().copied(), &spec);
    let audit = outcome.audit();
    let total: u64 = outcome.stats.iter().map(|s| s.msgs_sent).sum();
    let hottest = outcome.stats.iter().map(|s| s.msgs_sent).max().unwrap_or(0);
    ArchPoint {
        system: outcome.arch.name().to_string(),
        ratio_jain: ratio.jain,
        load_jain: load.jain,
        reliability: audit.reliability(),
        total_msgs: total,
        hottest_share: if total == 0 {
            0.0
        } else {
            hottest as f64 / total as f64
        },
    }
}

/// Runs the full architecture comparison.
pub fn run(n: usize, seed: u64) -> ArchResult {
    let mut points = Vec::new();
    for arch in Architecture::ALL {
        let spec = ScenarioSpec::standard(arch, n, seed);
        let outcome = run_architecture(&spec, EngineKind::Sequential);
        points.push(point(&outcome));
    }

    let mut table = Table::new(
        format!("T-ARCH: fairness across architectures (n={n})"),
        &[
            "system",
            "ratio jain",
            "load jain",
            "reliability",
            "total msgs",
            "hottest node share",
        ],
    );
    for p in &points {
        table.row_owned(vec![
            p.system.clone(),
            fmt_f64(p.ratio_jain),
            fmt_f64(p.load_jain),
            fmt_f64(p.reliability),
            p.total_msgs.to_string(),
            fmt_f64(p.hottest_share),
        ]);
    }
    ArchResult { table, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section4_verdicts_hold() {
        let r = run(64, 5);
        let by_name = |name: &str| {
            r.points
                .iter()
                .find(|p| p.system == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .clone()
        };
        let broker = by_name("broker");
        let fair = by_name("fair-gossip");
        let stat = by_name("static-gossip");
        let scribe = by_name("scribe");
        let split = by_name("splitstream");

        // Every architecture produced a row.
        assert_eq!(r.points.len(), Architecture::ALL.len());
        // Broker: one node does nearly everything.
        assert!(broker.hottest_share > 0.5, "{}", r.table);
        // Fair gossip beats static gossip on ratio fairness.
        assert!(fair.ratio_jain > stat.ratio_jain, "{}", r.table);
        // Fair gossip is the fairest decentralized system in the table.
        assert!(fair.ratio_jain > scribe.ratio_jain, "{}", r.table);
        assert!(fair.ratio_jain > split.ratio_jain, "{}", r.table);
        // SplitStream balances load yet stays ratio-unfair (§3 distinction)
        assert!(split.load_jain > split.ratio_jain, "{}", r.table);
        // Everything except broker-after-crash delivers reliably here.
        for p in &r.points {
            assert!(p.reliability > 0.95, "{}: {}", p.system, p.reliability);
        }
    }
}
