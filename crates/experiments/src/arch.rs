//! T-ARCH — the paper's §4 survey as a measured table: how fair are the
//! existing architectures on the *same* heterogeneous workload?
//!
//! Systems: central broker, Scribe/Pastry trees, DKS-style groups+index,
//! data-aware multicast, SplitStream forest, classic static gossip, fair
//! gossip. For each: fairness over contribution/benefit ratios, fairness
//! over raw contributions (load balance — the §3 distinction), delivery
//! reliability, total traffic, and the hottest node's share.

use crate::harness::{build_gossip, GossipScenario};
use fed_baselines::broker::{BrokerCmd, BrokerNode};
use fed_baselines::dam::{DamCmd, DamConfig, DamNode, GroupTable};
use fed_baselines::dks::{DksCmd, DksConfig, DksNode};
use fed_baselines::scribe::{ScribeCmd, ScribeNode};
use fed_baselines::splitstream::{Forest, SplitStreamNode, StripeCmd};
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_core::ledger::{FairnessLedger, RatioSpec};
use fed_dht::DhtNetwork;
use fed_metrics::delivery::DeliveryAudit;
use fed_metrics::fairness::{contribution_report, ratio_report};
use fed_metrics::table::{fmt_f64, Table};
use fed_pubsub::{TopicId, TopicSpace};
use fed_sim::{NodeId, SimDuration, SimTime, Simulation};
use fed_util::rng::Xoshiro256StarStar;
use fed_workload::interest::InterestProfile;
use fed_workload::pubs::{generate_schedule, Publication};
use std::sync::Arc;

/// One system's measured row.
#[derive(Debug, Clone)]
pub struct ArchPoint {
    /// System name.
    pub system: String,
    /// Jain index over contribution/benefit ratios.
    pub ratio_jain: f64,
    /// Jain index over raw contributions (load balance).
    pub load_jain: f64,
    /// Delivery reliability.
    pub reliability: f64,
    /// Total messages sent by all nodes.
    pub total_msgs: u64,
    /// Largest single-node share of total messages.
    pub hottest_share: f64,
}

/// Result of the T-ARCH experiment.
#[derive(Debug)]
pub struct ArchResult {
    /// The comparison table.
    pub table: Table,
    /// Raw rows.
    pub points: Vec<ArchPoint>,
}

struct Workload {
    profile: InterestProfile,
    schedule: Vec<Publication>,
    horizon: SimTime,
}

fn workload(scenario: &GossipScenario) -> Workload {
    let mut rng = Xoshiro256StarStar::seed_from_u64(scenario.seed);
    let profile = InterestProfile::generate(
        &mut rng,
        scenario.n,
        scenario.num_topics,
        scenario.zipf_s,
        scenario.appetite,
    )
    .expect("validated scenario");
    let schedule = generate_schedule(&mut rng, scenario.n, scenario.num_topics, &scenario.plan)
        .expect("validated scenario");
    Workload {
        profile,
        schedule,
        horizon: scenario.horizon(),
    }
}

fn audit_against<'a, I>(w: &Workload, deliveries: I) -> DeliveryAudit
where
    I: IntoIterator<Item = (usize, &'a fed_baselines::common::DeliveryLog)>,
{
    let mut audit = DeliveryAudit::new();
    for p in &w.schedule {
        audit.expect(
            p.event.id(),
            p.at,
            w.profile.subscribers_of(p.event.topic()),
        );
    }
    for (node, log) in deliveries {
        for (eid, at) in log.iter() {
            audit.record(eid, node, at);
        }
    }
    audit
}

fn point<'a, L>(
    system: &str,
    ledgers: L,
    audit: &DeliveryAudit,
    stats: &[fed_sim::TransportStats],
) -> ArchPoint
where
    L: IntoIterator<Item = &'a FairnessLedger>,
{
    let spec = RatioSpec::topic_based();
    let ledgers: Vec<&FairnessLedger> = ledgers.into_iter().collect();
    let ratio = ratio_report(ledgers.iter().copied(), &spec);
    let load = contribution_report(ledgers.iter().copied(), &spec);
    let total: u64 = stats.iter().map(|s| s.msgs_sent).sum();
    let hottest = stats.iter().map(|s| s.msgs_sent).max().unwrap_or(0);
    ArchPoint {
        system: system.to_string(),
        ratio_jain: ratio.jain,
        load_jain: load.jain,
        reliability: audit.reliability(),
        total_msgs: total,
        hottest_share: if total == 0 {
            0.0
        } else {
            hottest as f64 / total as f64
        },
    }
}

fn groups_of(profile: &InterestProfile) -> GroupTable {
    let mut groups = GroupTable::new();
    for t in 0..profile.num_topics() {
        let topic = TopicId::new(t as u32);
        let members: Vec<NodeId> = profile
            .subscribers_of(topic)
            .into_iter()
            .map(|i| NodeId::new(i as u32))
            .collect();
        if !members.is_empty() {
            groups.insert(topic, members);
        }
    }
    groups
}

/// Runs the full architecture comparison.
pub fn run(n: usize, seed: u64) -> ArchResult {
    let scenario = GossipScenario::standard(n, seed);
    let w = workload(&scenario);
    let mut points = Vec::new();

    // --- classic & fair gossip reuse the shared harness ---
    for (name, cfg) in [
        (
            "static-gossip",
            GossipConfig::classic(8, 16, SimDuration::from_millis(100)),
        ),
        (
            "fair-gossip",
            GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
        ),
    ] {
        let mut run = build_gossip(&scenario, cfg, |_| Behavior::Honest);
        run.run();
        let audit = run.audit();
        let stats = run.sim.transport_stats_all().to_vec();
        points.push(point(name, run.ledgers(), &audit, &stats));
    }

    // --- broker ---
    {
        let mut sim = Simulation::new(n, scenario.net.clone(), seed, |id, _| {
            BrokerNode::new(id, NodeId::new(0))
        });
        for i in 0..n {
            for &t in w.profile.topics_of(i) {
                sim.schedule_command(
                    SimTime::ZERO,
                    NodeId::new(i as u32),
                    BrokerCmd::SubscribeTopic(t),
                );
            }
        }
        for p in &w.schedule {
            sim.schedule_command(
                p.at,
                NodeId::new(p.publisher as u32),
                BrokerCmd::Publish(p.event.clone()),
            );
        }
        sim.run_until(w.horizon);
        let audit = audit_against(
            &w,
            sim.nodes()
                .map(|(id, node)| (id.index(), node.deliveries())),
        );
        let ledgers: Vec<&FairnessLedger> = sim.nodes().map(|(_, p)| p.ledger()).collect();
        points.push(point("broker", ledgers, &audit, sim.transport_stats_all()));
    }

    // --- scribe ---
    {
        let dht = Arc::new(DhtNetwork::build(n));
        let mut sim = Simulation::new(n, scenario.net.clone(), seed, move |id, _| {
            ScribeNode::new(id, Arc::clone(&dht))
        });
        for i in 0..n {
            for &t in w.profile.topics_of(i) {
                sim.schedule_command(
                    SimTime::ZERO,
                    NodeId::new(i as u32),
                    ScribeCmd::SubscribeTopic(t),
                );
            }
        }
        for p in &w.schedule {
            sim.schedule_command(
                p.at,
                NodeId::new(p.publisher as u32),
                ScribeCmd::Publish(p.event.clone()),
            );
        }
        sim.run_until(w.horizon);
        let audit = audit_against(
            &w,
            sim.nodes()
                .map(|(id, node)| (id.index(), node.deliveries())),
        );
        let ledgers: Vec<&FairnessLedger> = sim.nodes().map(|(_, p)| p.ledger()).collect();
        points.push(point("scribe", ledgers, &audit, sim.transport_stats_all()));
    }

    // --- dks ---
    {
        let dht = Arc::new(DhtNetwork::build(n));
        let groups = Arc::new(groups_of(&w.profile));
        let cfg = DksConfig {
            group_fanout: 5,
            seeds: 3,
        };
        let mut sim = Simulation::new(n, scenario.net.clone(), seed, move |id, _| {
            DksNode::new(id, cfg, Arc::clone(&dht), Arc::clone(&groups))
        });
        for i in 0..n {
            for &t in w.profile.topics_of(i) {
                sim.schedule_command(
                    SimTime::ZERO,
                    NodeId::new(i as u32),
                    DksCmd::SubscribeTopic(t),
                );
            }
        }
        for p in &w.schedule {
            sim.schedule_command(
                p.at,
                NodeId::new(p.publisher as u32),
                DksCmd::Publish(p.event.clone()),
            );
        }
        sim.run_until(w.horizon);
        let audit = audit_against(
            &w,
            sim.nodes()
                .map(|(id, node)| (id.index(), node.deliveries())),
        );
        let ledgers: Vec<&FairnessLedger> = sim.nodes().map(|(_, p)| p.ledger()).collect();
        points.push(point("dks", ledgers, &audit, sim.transport_stats_all()));
    }

    // --- data-aware multicast ---
    {
        let groups = Arc::new(groups_of(&w.profile));
        let space = Arc::new(TopicSpace::flat(scenario.num_topics));
        let mut sim = Simulation::new(n, scenario.net.clone(), seed, move |id, _| {
            DamNode::new(
                id,
                DamConfig::default(),
                Arc::clone(&groups),
                Arc::clone(&space),
            )
        });
        for i in 0..n {
            for &t in w.profile.topics_of(i) {
                sim.schedule_command(
                    SimTime::ZERO,
                    NodeId::new(i as u32),
                    DamCmd::SubscribeTopic(t),
                );
            }
        }
        for p in &w.schedule {
            sim.schedule_command(
                p.at,
                NodeId::new(p.publisher as u32),
                DamCmd::Publish(p.event.clone()),
            );
        }
        sim.run_until(w.horizon);
        let audit = audit_against(
            &w,
            sim.nodes()
                .map(|(id, node)| (id.index(), node.deliveries())),
        );
        let ledgers: Vec<&FairnessLedger> = sim.nodes().map(|(_, p)| p.ledger()).collect();
        points.push(point("dam", ledgers, &audit, sim.transport_stats_all()));
    }

    // --- splitstream ---
    {
        let forest = Arc::new(Forest::build(n, 8, 8));
        let mut sim = Simulation::new(n, scenario.net.clone(), seed, move |id, _| {
            SplitStreamNode::new(id, Arc::clone(&forest))
        });
        for i in 0..n {
            for &t in w.profile.topics_of(i) {
                sim.schedule_command(
                    SimTime::ZERO,
                    NodeId::new(i as u32),
                    StripeCmd::SubscribeTopic(t),
                );
            }
        }
        for p in &w.schedule {
            sim.schedule_command(
                p.at,
                NodeId::new(p.publisher as u32),
                StripeCmd::Publish(p.event.clone()),
            );
        }
        sim.run_until(w.horizon);
        let audit = audit_against(
            &w,
            sim.nodes()
                .map(|(id, node)| (id.index(), node.deliveries())),
        );
        let ledgers: Vec<&FairnessLedger> = sim.nodes().map(|(_, p)| p.ledger()).collect();
        points.push(point(
            "splitstream",
            ledgers,
            &audit,
            sim.transport_stats_all(),
        ));
    }

    let mut table = Table::new(
        format!("T-ARCH: fairness across architectures (n={n})"),
        &[
            "system",
            "ratio jain",
            "load jain",
            "reliability",
            "total msgs",
            "hottest node share",
        ],
    );
    for p in &points {
        table.row_owned(vec![
            p.system.clone(),
            fmt_f64(p.ratio_jain),
            fmt_f64(p.load_jain),
            fmt_f64(p.reliability),
            p.total_msgs.to_string(),
            fmt_f64(p.hottest_share),
        ]);
    }
    ArchResult { table, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_section4_verdicts_hold() {
        let r = run(64, 5);
        let by_name = |name: &str| {
            r.points
                .iter()
                .find(|p| p.system == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .clone()
        };
        let broker = by_name("broker");
        let fair = by_name("fair-gossip");
        let stat = by_name("static-gossip");
        let scribe = by_name("scribe");
        let split = by_name("splitstream");

        // Broker: one node does nearly everything.
        assert!(broker.hottest_share > 0.5, "{}", r.table);
        // Fair gossip beats static gossip on ratio fairness.
        assert!(fair.ratio_jain > stat.ratio_jain, "{}", r.table);
        // Fair gossip is the fairest decentralized system in the table.
        assert!(fair.ratio_jain > scribe.ratio_jain, "{}", r.table);
        assert!(fair.ratio_jain > split.ratio_jain, "{}", r.table);
        // SplitStream balances load yet stays ratio-unfair (§3 distinction)
        assert!(split.load_jain > split.ratio_jain, "{}", r.table);
        // Everything except broker-after-crash delivers reliably here.
        for p in &r.points {
            assert!(p.reliability > 0.95, "{}: {}", p.system, p.reliability);
        }
    }
}
