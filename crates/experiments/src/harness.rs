//! Shared experiment harness: scenario → simulation → audit.
//!
//! Scenario descriptions live in [`fed_workload::scenario::ScenarioSpec`];
//! this module wires a materialized spec into either engine — the
//! sequential [`Simulation`] ([`build_gossip`]) or the sharded
//! [`ShardedSimulation`] ([`build_gossip_cluster`]) — and audits the
//! outcome. Both builders schedule the identical workload in the identical
//! order, so their results are bit-for-bit comparable.

use fed_cluster::ShardedSimulation;
use fed_core::behavior::Behavior;
use fed_core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed_core::ledger::FairnessLedger;
use fed_membership::FullMembership;
use fed_metrics::delivery::DeliveryAudit;
use fed_sim::network::NetworkModel;
use fed_sim::{NodeId, SimTime, Simulation};
use fed_workload::churn::ChurnAction;
use fed_workload::interest::{Appetite, InterestProfile};
use fed_workload::pubs::{PubPlan, Publication};
use fed_workload::scenario::ScenarioSpec;

/// The node type every gossip experiment runs.
pub type Node = GossipNode<FullMembership>;

/// A complete gossip scenario description.
#[derive(Debug, Clone)]
pub struct GossipScenario {
    /// Population size.
    pub n: usize,
    /// Topic universe size.
    pub num_topics: usize,
    /// Topic popularity skew for subscriptions.
    pub zipf_s: f64,
    /// Per-node subscription appetite.
    pub appetite: Appetite,
    /// Publication plan.
    pub plan: PubPlan,
    /// Master seed.
    pub seed: u64,
    /// Network model.
    pub net: NetworkModel,
}

impl GossipScenario {
    /// A sensible default: heterogeneous interest over a Zipf topic
    /// universe with a steady publication stream.
    pub fn standard(n: usize, seed: u64) -> Self {
        GossipScenario::from_spec(&ScenarioSpec::fair_gossip(n, seed))
    }

    /// Builds a scenario from a [`ScenarioSpec`] (dropping its churn plan
    /// and shard count, which the gossip builders take separately).
    pub fn from_spec(spec: &ScenarioSpec) -> Self {
        GossipScenario {
            n: spec.n,
            num_topics: spec.num_topics,
            zipf_s: spec.zipf_s,
            appetite: spec.appetite,
            plan: spec.plan,
            seed: spec.seed,
            net: spec.net.clone(),
        }
    }

    /// The equivalent [`ScenarioSpec`] at a given shard count.
    pub fn to_spec(&self, shards: usize) -> ScenarioSpec {
        ScenarioSpec {
            n: self.n,
            shards,
            num_topics: self.num_topics,
            zipf_s: self.zipf_s,
            appetite: self.appetite,
            plan: self.plan,
            churn: None,
            net: self.net.clone(),
            seed: self.seed,
        }
    }

    /// End of the publication phase plus a drain margin.
    pub fn horizon(&self) -> SimTime {
        // TTL drain: 8 rounds of 100ms plus latency slack.
        SimTime::from_micros(
            self.plan.warmup.as_micros() + self.plan.duration.as_micros() + 4_000_000,
        )
    }
}

/// A prepared run: simulation with workload wired in, plus ground truth.
pub struct GossipRun {
    /// The simulation (not yet executed).
    pub sim: Simulation<Node>,
    /// Who subscribes to what.
    pub profile: InterestProfile,
    /// Scheduled publications.
    pub schedule: Vec<Publication>,
    /// Scenario horizon.
    pub horizon: SimTime,
}

impl GossipRun {
    /// Runs to the scenario horizon.
    pub fn run(&mut self) {
        let horizon = self.horizon;
        self.sim.run_until(horizon);
    }

    /// Builds the delivery audit from ground truth and observed state.
    pub fn audit(&self) -> DeliveryAudit {
        let mut audit = DeliveryAudit::new();
        for p in &self.schedule {
            audit.expect(
                p.event.id(),
                p.at,
                self.profile.subscribers_of(p.event.topic()),
            );
        }
        for (id, node) in self.sim.nodes() {
            for (eid, rec) in node.deliveries() {
                audit.record(*eid, id.index(), rec.at);
            }
        }
        audit
    }

    /// Ledgers of all nodes in id order.
    pub fn ledgers(&self) -> Vec<&FairnessLedger> {
        self.sim.nodes().map(|(_, n)| n.ledger()).collect()
    }
}

/// Schedules the materialized workload onto any engine, in the canonical
/// order: subscriptions, publications, then churn.
///
/// Both engines must see the same `schedule_*` call order — the external
/// event sequence number participates in the deterministic event order.
fn schedule_workload<S>(sim: &mut S, materialized: &fed_workload::scenario::MaterializedScenario)
where
    S: GossipEngine,
{
    for i in 0..materialized.profile.len() {
        for &topic in materialized.profile.topics_of(i) {
            sim.command(
                SimTime::ZERO,
                NodeId::new(i as u32),
                GossipCmd::SubscribeTopic(topic),
            );
        }
    }
    for p in &materialized.schedule {
        sim.command(
            p.at,
            NodeId::new(p.publisher as u32),
            GossipCmd::Publish(p.event.clone()),
        );
    }
    for c in &materialized.churn {
        match c.action {
            ChurnAction::Crash => sim.crash(c.at, NodeId::new(c.node as u32)),
            ChurnAction::Join => sim.join(c.at, NodeId::new(c.node as u32)),
        }
    }
}

/// Minimal scheduling facade over the two engines.
trait GossipEngine {
    fn command(&mut self, at: SimTime, node: NodeId, cmd: GossipCmd);
    fn crash(&mut self, at: SimTime, node: NodeId);
    fn join(&mut self, at: SimTime, node: NodeId);
}

impl GossipEngine for Simulation<Node> {
    fn command(&mut self, at: SimTime, node: NodeId, cmd: GossipCmd) {
        self.schedule_command(at, node, cmd);
    }
    fn crash(&mut self, at: SimTime, node: NodeId) {
        self.schedule_crash(at, node);
    }
    fn join(&mut self, at: SimTime, node: NodeId) {
        self.schedule_join(at, node);
    }
}

impl GossipEngine for ShardedSimulation<Node> {
    fn command(&mut self, at: SimTime, node: NodeId, cmd: GossipCmd) {
        self.schedule_command(at, node, cmd);
    }
    fn crash(&mut self, at: SimTime, node: NodeId) {
        self.schedule_crash(at, node);
    }
    fn join(&mut self, at: SimTime, node: NodeId) {
        self.schedule_join(at, node);
    }
}

/// Builds a gossip run; `behavior` assigns a behaviour model per node.
pub fn build_gossip<B>(scenario: &GossipScenario, config: GossipConfig, behavior: B) -> GossipRun
where
    B: Fn(NodeId) -> Behavior + 'static,
{
    build_gossip_spec(&scenario.to_spec(1), config, behavior)
}

/// Builds a sequential gossip run straight from a [`ScenarioSpec`],
/// honouring its churn plan — the sequential twin of
/// [`build_gossip_cluster`] (`spec.shards` is ignored here).
pub fn build_gossip_spec<B>(spec: &ScenarioSpec, config: GossipConfig, behavior: B) -> GossipRun
where
    B: Fn(NodeId) -> Behavior + 'static,
{
    let materialized = spec
        .materialize()
        .expect("scenario parameters are validated by construction");
    let n = spec.n;
    let mut sim = Simulation::new(n, spec.net.clone(), spec.seed, move |id, _| {
        GossipNode::with_behavior(id, config.clone(), FullMembership::new(id, n), behavior(id))
    });
    schedule_workload(&mut sim, &materialized);
    GossipRun {
        sim,
        profile: materialized.profile,
        schedule: materialized.schedule,
        horizon: materialized.horizon,
    }
}

/// A prepared sharded run: cluster with workload wired in, plus ground
/// truth. The sharded twin of [`GossipRun`].
pub struct ClusterGossipRun {
    /// The sharded simulation (not yet executed).
    pub sim: ShardedSimulation<Node>,
    /// Who subscribes to what.
    pub profile: InterestProfile,
    /// Scheduled publications.
    pub schedule: Vec<Publication>,
    /// Scenario horizon.
    pub horizon: SimTime,
}

impl ClusterGossipRun {
    /// Runs to the scenario horizon.
    pub fn run(&mut self) {
        let horizon = self.horizon;
        self.sim.run_until(horizon);
    }

    /// Builds the delivery audit from ground truth and observed state.
    pub fn audit(&self) -> DeliveryAudit {
        let mut audit = DeliveryAudit::new();
        for p in &self.schedule {
            audit.expect(
                p.event.id(),
                p.at,
                self.profile.subscribers_of(p.event.topic()),
            );
        }
        for (id, node) in self.sim.nodes() {
            for (eid, rec) in node.deliveries() {
                audit.record(*eid, id.index(), rec.at);
            }
        }
        audit
    }

    /// Ledgers of all nodes in id order.
    pub fn ledgers(&self) -> Vec<&FairnessLedger> {
        self.sim.nodes().map(|(_, n)| n.ledger()).collect()
    }
}

/// Builds a sharded gossip run from a [`ScenarioSpec`] (shard count,
/// churn plan and all).
///
/// For the same spec (and scheduling order), the results are bit-for-bit
/// identical to [`build_gossip_spec`] regardless of `spec.shards` — asserted
/// by the `cross_engine` integration test.
pub fn build_gossip_cluster<B>(
    spec: &ScenarioSpec,
    config: GossipConfig,
    behavior: B,
) -> ClusterGossipRun
where
    B: Fn(NodeId) -> Behavior + Send + Sync + 'static,
{
    let materialized = spec
        .materialize()
        .expect("scenario parameters are validated by construction");
    let n = spec.n;
    let mut sim =
        ShardedSimulation::new(n, spec.net.clone(), spec.seed, spec.shards, move |id, _| {
            GossipNode::with_behavior(id, config.clone(), FullMembership::new(id, n), behavior(id))
        });
    schedule_workload(&mut sim, &materialized);
    ClusterGossipRun {
        sim,
        profile: materialized.profile,
        schedule: materialized.schedule,
        horizon: materialized.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_core::ledger::RatioSpec;
    use fed_sim::SimDuration;

    #[test]
    fn standard_scenario_runs_and_audits() {
        let scenario = GossipScenario::standard(32, 11);
        let cfg = GossipConfig::classic(5, 16, SimDuration::from_millis(100));
        let mut run = build_gossip(&scenario, cfg, |_| Behavior::Honest);
        run.run();
        let audit = run.audit();
        assert!(audit.num_events() > 0);
        assert!(audit.reliability() > 0.99, "r={}", audit.reliability());
        assert_eq!(audit.spurious(), 0);
        let ledgers = run.ledgers();
        assert_eq!(ledgers.len(), 32);
        let spec = RatioSpec::topic_based();
        assert!(ledgers.iter().any(|l| l.contribution(&spec) > 0.0));
    }

    #[test]
    fn deterministic_across_builds() {
        let scenario = GossipScenario::standard(16, 5);
        let cfg = GossipConfig::classic(4, 16, SimDuration::from_millis(100));
        let r1 = {
            let mut run = build_gossip(&scenario, cfg.clone(), |_| Behavior::Honest);
            run.run();
            run.audit().reliability()
        };
        let r2 = {
            let mut run = build_gossip(&scenario, cfg, |_| Behavior::Honest);
            run.run();
            run.audit().reliability()
        };
        assert_eq!(r1, r2);
    }
}
